//! Zone-graph reachability with an embedded PTE observer — parallel,
//! sharded, and deterministic.
//!
//! The engine explores the product of a [`TaNetwork`] symbolically:
//! a state is a location vector plus a zone (DBM) over every clock, and
//! the passed/waiting-list algorithm with zone inclusion and
//! extrapolation (maximal-constant `Extra_M` or the coarser LU-bound
//! `Extra_LU`, selectable via [`Limits::extrapolation`]) guarantees
//! termination. Every drop/deliver assignment of every wireless
//! emission and every real-valued timing is covered — the dense-time
//! completion of `pte-verify`'s bounded `2^k` exhaustive exploration.
//!
//! ## Parallel sharding
//!
//! The passed list is sharded by a hash of the discrete part of the
//! state (location vector + observer pair states) into [`SHARD_COUNT`]
//! shards, each behind its own `parking_lot::Mutex`. Because a zone can
//! only subsume another zone with the *same* discrete part, subsumption
//! is a shard-local operation and shards never need to coordinate.
//!
//! Exploration proceeds in BFS layers with two phases per round, run by
//! a pool of `crossbeam` scoped workers spawned once per check
//! ([`Limits::max_workers`]) and coordinated with epoch counters and
//! spin/yield barriers (thread spawning costs ≈1 ms on some kernels —
//! far more than a round):
//!
//! 1. **Expand** — workers claim frontier states from a shared cursor
//!    (an atomic index over the round's frontier vector), fire every
//!    enabled edge, resolve emission cascades, apply delay closure +
//!    extrapolation, and run all PTE observer checks. Cooked successor
//!    candidates are pushed into the pending list of their target shard;
//!    violations are collected worker-locally.
//! 2. **Admit** — workers claim whole shards from a second cursor. Each
//!    shard sorts its pending candidates into a *content-defined* order
//!    (discrete key, then zone matrix, then parent id, then action
//!    text), discards those subsumed by an already-passed zone, and
//!    appends the survivors to the shard's node arena and the next
//!    frontier.
//!
//! ## Determinism
//!
//! The verdict (`Safe` / `Unsafe` / `OutOfBudget`) and the reported
//! counter-example are identical for every worker count:
//!
//! * the frontier of round `r + 1` is a pure function of the frontier of
//!   round `r` — phase 1 only reads shared state, and phase 2 admits
//!   each shard's candidates in the content-defined order above, so
//!   races can only reorder *work*, never results;
//! * violations never abort the round; they are collected, and once the
//!   round completes the engine reports the **lexicographically least
//!   violating trace** (by step list, then violation kind, then zone),
//!   which is a content-defined choice independent of which worker found
//!   it first. Layered BFS additionally guarantees the reported trace
//!   belongs to the *earliest* round containing any violation;
//! * budget checks run at round boundaries only, so `OutOfBudget`
//!   verdicts trip at the same round for every worker count (the
//!   optional wall-clock limit is the one deliberately nondeterministic
//!   exception).
//!
//! PTE checking is built in as a deterministic observer rather than a
//! monitor automaton: per entity a clock `r_i` tracks time since the
//! current risky dwelling began (Rule 1), and per adjacent pair a state
//! machine (`Idle / OuterOnly / Embedded / InnerExited`) plus a clock
//! `s_k` (time since the inner entity left risky) check proper temporal
//! embedding — coverage, the `T^min_risky` enter lead, and the
//! `T^min_safe` exit lag — exactly mirroring `pte_core::monitor`.
//!
//! ## Hot-path engineering
//!
//! Three layers keep the per-state cost low (PR 3):
//!
//! * **Incremental canonicalization** — guards, invariants and urgent
//!   splits tighten zones through [`Atom::apply_and_close`]
//!   ([`Dbm::close1`], O(n²)) instead of deferring to a full O(n³)
//!   Floyd–Warshall per successor; the only remaining full closures run
//!   at lowering time and inside extrapolation.
//! * **Interned, allocation-free successor plumbing** — action labels
//!   are fixed-size `Act` codes (rendered to the PR 2 strings only
//!   when a counter-example is reported), event roots are interned into
//!   `u16` ids with per-`(automaton, location)` dispatch tables
//!   replacing edge scans, discrete keys are interned per shard into
//!   `u32` ids ([`crate::intern::Interner`]), and successor zones are
//!   drawn from a per-worker [`DbmPool`] free-list.
//! * **Compressed passed list** — settled zones are stored in minimal
//!   constraint form ([`Dbm::reduce`], typically O(n) constraints
//!   instead of the full `(n+1)²` matrix) with subsumption checked
//!   directly against the compact form
//!   ([`crate::dbm::MinimalDbm::includes`]); the measured footprint is
//!   reported in [`SearchStats::peak_passed_bytes`]. Candidates are
//!   additionally probed against the passed list *before*
//!   extrapolation: a subsumed candidate's concrete behaviours are all
//!   covered by an explored (and violation-free) state, so it is
//!   dropped without paying for extrapolation or admission.
//!
//! Determinism is unchanged: canonical forms are unique and every
//! admission/drop decision is content-defined, so verdicts, stored
//! zones, and counter-examples are bit-for-bit identical at every
//! worker count. The *explored set* can differ slightly from the PR 2
//! engine, though — the pre-extrapolation probe drops candidates whose
//! (non-monotone) `Extra⁺_LU` widening the old engine would have
//! admitted — so settled-state counts are comparable only within a
//! version, never across the optimization boundary.

use crate::dbm::{Dbm, DbmPool, MinimalDbm};
use crate::intern::Interner;
use crate::ta::{Atom, LuBounds, Rel, Sync, TaNetwork};
use parking_lot::{Mutex, RwLock};
use pte_core::rules::PteSpec;
use pte_hybrid::Root;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Integer-tick form of the PTE specification the observer enforces.
#[derive(Clone, Debug)]
pub struct ObserverSpec {
    /// Entity names, outermost first (must name automata in the network).
    pub entities: Vec<String>,
    /// Rule-1 bound per entity, in ticks.
    pub rule1_ticks: Vec<i64>,
    /// Safeguard bounds per adjacent pair (`pairs[k]` relates outer
    /// entity `k` and inner entity `k + 1`).
    pub pairs: Vec<PairBounds>,
}

/// Safeguard intervals of one adjacent pair, in ticks.
#[derive(Clone, Copy, Debug)]
pub struct PairBounds {
    /// `T^min_risky`: minimum enter lead of the outer entity.
    pub t_min_risky: i64,
    /// `T^min_safe`: minimum exit lag of the outer entity.
    pub t_min_safe: i64,
}

impl ObserverSpec {
    /// Converts a [`PteSpec`] into tick units, borrowing (and cloning)
    /// the entity names. Prefer the `From<PteSpec>` impl when the spec
    /// is owned — it moves the names instead.
    pub fn from_spec(spec: &PteSpec) -> ObserverSpec {
        ObserverSpec::convert(spec.entities.clone(), spec)
    }

    fn convert(entities: Vec<String>, spec: &PteSpec) -> ObserverSpec {
        ObserverSpec {
            entities,
            rule1_ticks: spec
                .rule1_bounds
                .iter()
                .map(|t| crate::to_ticks(t.as_secs_f64()))
                .collect(),
            pairs: spec
                .pairs
                .iter()
                .map(|p| PairBounds {
                    t_min_risky: crate::to_ticks(p.t_min_risky.as_secs_f64()),
                    t_min_safe: crate::to_ticks(p.t_min_safe.as_secs_f64()),
                })
                .collect(),
        }
    }
}

impl From<PteSpec> for ObserverSpec {
    /// Tick conversion that takes ownership, moving the entity names
    /// instead of cloning them.
    fn from(mut spec: PteSpec) -> ObserverSpec {
        let entities = std::mem::take(&mut spec.entities);
        ObserverSpec::convert(entities, &spec)
    }
}

/// Which PTE rule a symbolic counter-example violates.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ViolationKind {
    /// Rule 1: entity `entity` can dwell risky beyond its bound.
    Rule1 {
        /// Index into [`ObserverSpec::entities`].
        entity: usize,
    },
    /// Rule 2/3 coverage: the inner entity of `pair` is risky while its
    /// outer entity is not.
    Coverage {
        /// Index into [`ObserverSpec::pairs`].
        pair: usize,
    },
    /// The inner entity can enter risky less than `T^min_risky` after
    /// the outer entity did.
    EnterMargin {
        /// Index into [`ObserverSpec::pairs`].
        pair: usize,
    },
    /// The outer entity can leave risky while the inner entity is still
    /// risky.
    ExitUncovered {
        /// Index into [`ObserverSpec::pairs`].
        pair: usize,
    },
    /// The outer entity can leave risky less than `T^min_safe` after the
    /// inner entity did.
    ExitLag {
        /// Index into [`ObserverSpec::pairs`].
        pair: usize,
    },
}

impl ViolationKind {
    /// Content-defined total order used to tie-break counter-examples
    /// with identical step lists.
    fn rank(&self) -> (u8, usize) {
        match self {
            ViolationKind::Rule1 { entity } => (0, *entity),
            ViolationKind::Coverage { pair } => (1, *pair),
            ViolationKind::EnterMargin { pair } => (2, *pair),
            ViolationKind::ExitUncovered { pair } => (3, *pair),
            ViolationKind::ExitLag { pair } => (4, *pair),
        }
    }
}

impl fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ViolationKind::Rule1 { entity } => {
                write!(f, "rule 1 dwelling bound exceedable (entity #{entity})")
            }
            ViolationKind::Coverage { pair } => {
                write!(f, "inner risky while outer safe (pair #{pair})")
            }
            ViolationKind::EnterMargin { pair } => {
                write!(f, "enter lead below T^min_risky (pair #{pair})")
            }
            ViolationKind::ExitUncovered { pair } => {
                write!(f, "outer exits risky before inner (pair #{pair})")
            }
            ViolationKind::ExitLag { pair } => {
                write!(f, "exit lag below T^min_safe (pair #{pair})")
            }
        }
    }
}

/// A symbolic counter-example: an interleaving of discrete actions
/// (with explicit drop/deliver fates) whose zone contains at least one
/// violating real-valued timing.
#[derive(Clone, Debug)]
pub struct SymbolicCounterExample {
    /// The violated rule.
    pub kind: ViolationKind,
    /// Discrete actions from the initial state to the violation, one
    /// line per settled step.
    pub steps: Vec<String>,
    /// Rendered zone constraints at the violation point (ticks).
    pub zone: String,
}

impl fmt::Display for SymbolicCounterExample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "symbolic PTE violation: {}", self.kind)?;
        for (i, s) in self.steps.iter().enumerate() {
            writeln!(f, "  {:>3}. {s}", i + 1)?;
        }
        write!(f, "  zone: {}", self.zone)
    }
}

/// Search statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct SearchStats {
    /// Settled symbolic states stored.
    pub states: usize,
    /// Discrete transitions fired (including cascade branches).
    pub transitions: usize,
    /// Successor states subsumed by an already-passed zone.
    pub subsumed: usize,
    /// Unexplored frontier states at the moment the search ended
    /// (always 0 for a completed search).
    pub frontier: usize,
    /// Peak heap bytes of passed-list zone storage in the minimal
    /// constraint form actually used ([`Dbm::reduce`]). The passed list
    /// only grows, so the value at the end of the search *is* the peak.
    pub peak_passed_bytes: usize,
    /// Heap bytes the same passed zones would occupy as full
    /// `(n+1)²` bound matrices — the PR 2 storage format. The ratio
    /// `peak_passed_bytes_full / peak_passed_bytes` is the measured
    /// compression factor (asserted ≥ 2× in `bench/benches/zones.rs`).
    pub peak_passed_bytes_full: usize,
}

/// Which exploration limit ended an inconclusive search.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TrippedLimit {
    /// [`Limits::max_states`] was exceeded (carries the limit value).
    MaxStates(usize),
    /// [`Limits::max_wall`] was exceeded (carries the budget).
    WallClock(Duration),
}

impl fmt::Display for TrippedLimit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrippedLimit::MaxStates(n) => write!(f, "state budget (max_states = {n})"),
            TrippedLimit::WallClock(d) => {
                write!(f, "wall-clock budget ({:.3} s)", d.as_secs_f64())
            }
        }
    }
}

/// Outcome of a symbolic reachability check.
#[derive(Clone, Debug)]
pub enum SymbolicVerdict {
    /// No PTE violation is reachable for any loss fate or timing.
    Safe(SearchStats),
    /// A violation is reachable; the witness explains how.
    Unsafe(Box<SymbolicCounterExample>),
    /// An exploration limit was exhausted before the search finished.
    OutOfBudget {
        /// Search statistics at the point of truncation, including the
        /// size of the unexplored frontier.
        stats: SearchStats,
        /// The limit that ended the search.
        tripped: TrippedLimit,
    },
}

impl SymbolicVerdict {
    /// `true` if the verdict proves safety.
    pub fn is_safe(&self) -> bool {
        matches!(self, SymbolicVerdict::Safe(_))
    }

    /// `true` if a violation was found.
    pub fn is_unsafe(&self) -> bool {
        matches!(self, SymbolicVerdict::Unsafe(_))
    }

    /// Search statistics, when the verdict carries them (`Safe` and
    /// `OutOfBudget`; a falsification stops at its witness).
    pub fn stats(&self) -> Option<&SearchStats> {
        match self {
            SymbolicVerdict::Safe(s) => Some(s),
            SymbolicVerdict::OutOfBudget { stats, .. } => Some(stats),
            SymbolicVerdict::Unsafe(_) => None,
        }
    }
}

impl fmt::Display for SymbolicVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SymbolicVerdict::Safe(s) => write!(
                f,
                "PTE-unreachable: safe over all timings and loss fates \
                 ({} states, {} transitions)",
                s.states, s.transitions
            ),
            SymbolicVerdict::Unsafe(ce) => write!(f, "{ce}"),
            SymbolicVerdict::OutOfBudget { stats, tripped } => write!(
                f,
                "inconclusive: {tripped} exhausted with {} settled states \
                 and {} frontier states unexplored",
                stats.states, stats.frontier
            ),
        }
    }
}

/// Extrapolation operator applied to every settled zone.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Extrapolation {
    /// Classical maximal-constant `Extra_M` ([`Dbm::extrapolate`]).
    ExtraM,
    /// LU-bound `Extra⁺_LU` ([`Dbm::extrapolate_lu_plus`]) — strictly
    /// coarser than `Extra_M`, so the search settles no more (usually
    /// strictly fewer) states. The default.
    #[default]
    ExtraLu,
}

/// Exploration limits and engine knobs.
#[derive(Clone, Copy, Debug)]
pub struct Limits {
    /// Maximum number of settled symbolic states.
    pub max_states: usize,
    /// Worker threads for the parallel exploration; `1` explores on the
    /// calling thread, `0` means one worker per available CPU. The
    /// verdict is identical for every value.
    pub max_workers: usize,
    /// Optional wall-clock budget, checked at round boundaries. `None`
    /// (the default) never trips, keeping verdicts fully deterministic.
    pub max_wall: Option<Duration>,
    /// Extrapolation operator (see [`Extrapolation`]).
    pub extrapolation: Extrapolation,
}

impl Default for Limits {
    fn default() -> Limits {
        Limits {
            max_states: 200_000,
            max_workers: 1,
            max_wall: None,
            extrapolation: Extrapolation::default(),
        }
    }
}

impl Limits {
    /// Worker count after resolving `0` to the available parallelism.
    pub fn effective_workers(&self) -> usize {
        if self.max_workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.max_workers
        }
    }
}

/// Per-pair observer state.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
enum PairState {
    /// Both entities safe.
    Idle,
    /// Outer risky, inner has not entered this round.
    OuterOnly,
    /// Both risky (proper embedding in progress).
    Embedded,
    /// Inner exited, outer still risky (lag phase).
    InnerExited,
}

type Key = (Vec<u32>, Vec<PairState>);

/// Number of passed-list shards. A constant (rather than a function of
/// the worker count) so the shard assignment — and hence node numbering
/// — is identical across worker counts.
pub const SHARD_COUNT: usize = 64;

/// FNV-1a over the discrete part of a state: deterministic across runs,
/// platforms, and (unlike `std`'s `RandomState`) processes.
fn shard_of(key: &Key) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &l in &key.0 {
        h = (h ^ u64::from(l)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    for p in &key.1 {
        h = (h ^ (*p as u64)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % SHARD_COUNT as u64) as usize
}

/// Global node address: shard index + index into the shard's arena.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
struct NodeId {
    shard: u32,
    idx: u32,
}

/// One step of a discrete action, as a fixed-size code. The hot path
/// moves and compares these 8-byte values; the human-readable strings
/// of PR 2 are produced only when a counter-example is rendered
/// (`Engine::render_act`). Automata are referenced by index, event
/// roots by interned id (`Engine::roots`). The derived `Ord` gives the
/// content-defined tie-break order previously provided by action text.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
enum Act {
    /// The seed state.
    Initial,
    /// Edge `eid` of automaton `aut` fired.
    Edge { aut: u16, eid: u16 },
    /// Event `root` delivered to `aut`.
    Deliver { root: u16, aut: u16 },
    /// Event `root` dropped by the wireless hop / ignored by `aut`.
    Lost { root: u16, aut: u16 },
    /// Event `root` ignored by `aut` on the sub-zone where its single
    /// guarded edge is disabled.
    GuardOff { root: u16, aut: u16 },
    /// Event `root` possibly ignored by `aut` (over-approximated fate
    /// when several guarded reliable edges compete).
    MaybeIgnored { root: u16, aut: u16 },
    /// `aut`'s location invariant expired, forcing an urgent escape.
    InvariantExpired { aut: u16 },
    /// Entity `entity` can dwell risky beyond its Rule-1 bound.
    DwellExceeded { entity: u16 },
}

/// A settled node in a shard's arena. The discrete key lives in the
/// shard's interner; nodes carry the zone in **minimal constraint
/// form** (subsumption checks run directly against it) plus the
/// fixed-size data trace reconstruction needs.
struct Node {
    zone: MinimalDbm,
    parent: Option<NodeId>,
    acts: Box<[Act]>,
}

/// One shard of the passed list: discrete keys interned to dense ids,
/// per-key subsumption buckets over a node arena, the staging area
/// phase 1 fills and phase 2 drains, and the shard's share of the
/// passed-list memory accounting.
#[derive(Default)]
struct Shard {
    /// Key → dense id; each key is stored exactly once.
    keys: Interner<Key>,
    /// `buckets[key_id]` = node indices settled under that key.
    buckets: Vec<Vec<u32>>,
    nodes: Vec<Node>,
    pending: Vec<Candidate>,
    /// Heap bytes of stored zones in minimal constraint form.
    min_bytes: usize,
    /// Heap bytes the same zones would occupy as full matrices.
    full_bytes: usize,
}

/// A fully cooked successor: delay-closed, activity-reduced,
/// extrapolated, and observer-checked — everything except subsumption,
/// which is phase 2's shard-local job. Carries the key *content* (not
/// an id) because admission order — and hence interning order — must be
/// content-defined.
struct Candidate {
    key: Key,
    zone: Dbm,
    parent: Option<NodeId>,
    acts: Vec<Act>,
}

impl Candidate {
    /// Content-defined admission order: discrete key, zone matrix,
    /// parent id, action codes. Sorting pending candidates by this key
    /// makes phase 2 independent of phase-1 arrival order.
    fn order_key(&self) -> (&Key, &Dbm, Option<NodeId>, &[Act]) {
        (&self.key, &self.zone, self.parent, &self.acts)
    }
}

/// A frontier entry: a settled node plus the clones phase 1 needs to
/// expand it without touching its home shard.
struct FrontierEntry {
    id: NodeId,
    locs: Vec<u32>,
    pairs: Vec<PairState>,
    zone: Dbm,
}

/// In-flight resolution work: a state mid-cascade (pending emissions not
/// yet assigned a fate) with the actions taken so far this step.
struct Work {
    locs: Vec<u32>,
    pairs: Vec<PairState>,
    zone: Dbm,
    /// In-flight emissions: `(sender automaton, interned root id)` —
    /// the sender is excluded from delivery (the executor never
    /// self-delivers).
    queue: VecDeque<(u32, u16)>,
    acts: Vec<Act>,
}

impl Work {
    /// Clones this work item, drawing the zone copy from `pool`.
    fn clone_via(&self, pool: &mut DbmPool) -> Work {
        Work {
            locs: self.locs.clone(),
            pairs: self.pairs.clone(),
            zone: pool.clone_dbm(&self.zone),
            queue: self.queue.clone(),
            acts: self.acts.clone(),
        }
    }
}

struct Violation {
    kind: ViolationKind,
    acts: Vec<Act>,
    zone: Dbm,
}

/// Worker-local tallies merged into [`SearchStats`] at round barriers.
#[derive(Default)]
struct LocalStats {
    transitions: usize,
    /// Successors dropped by the pre-extrapolation subsumption probe.
    subsumed: usize,
}

/// Maximum zero-time cascade depth (urgent chains + deliveries) before
/// the engine settles a state as-is; prevents pathological recursion on
/// malformed inputs.
const CASCADE_DEPTH: usize = 128;

/// One receiving edge in a location's dispatch table.
#[derive(Clone, Copy)]
struct RecvEdge {
    /// Interned root id this edge listens for.
    root: u16,
    /// Edge index within the owning automaton.
    eid: u32,
    /// `true` for lossy wireless receives.
    lossy: bool,
}

struct Engine<'s> {
    /// The lowered network, **borrowed** — the engine's observer clocks
    /// live in the DBM dimensions above [`TaNetwork::clock_count`] and
    /// in [`Engine::observer_clock_names`], so the network itself is
    /// never cloned or mutated.
    net: &'s TaNetwork,
    spec: &'s ObserverSpec,
    /// entity index -> automaton index.
    entity_aut: Vec<usize>,
    /// automaton index -> entity index.
    aut_entity: Vec<Option<usize>>,
    /// entity index -> DBM index of its risky-dwell clock `r_i`.
    r_clock: Vec<usize>,
    /// pair index -> DBM index of its inner-exit clock `s_k`.
    s_clock: Vec<usize>,
    /// Total clock count (network + observer clocks).
    nclocks: usize,
    /// Render names of the observer clocks (appended after
    /// `net.clocks` when a zone is displayed).
    observer_clock_names: Vec<String>,
    /// `Extra_M` ceiling vector (network + observer constants).
    kmax: Vec<i64>,
    /// `Extra_LU` bound vectors (network + observer constants).
    lu: LuBounds,
    extrapolation: Extrapolation,
    /// Interned event roots (`Act`/queue ids index into this).
    roots: Vec<Root>,
    /// `spont[ai][loc]` — spontaneous/external edges leaving `loc`.
    spont: Vec<Vec<Vec<u32>>>,
    /// `urgent[ai][loc]` — urgent escape edges leaving `loc`.
    urgent: Vec<Vec<Vec<u32>>>,
    /// `recv[ai][loc]` — receiving edges leaving `loc`, by root id.
    recv: Vec<Vec<Vec<RecvEdge>>>,
    /// `emit_ids[ai][eid]` — interned roots the edge emits.
    emit_ids: Vec<Vec<Vec<u16>>>,
    shards: Vec<Mutex<Shard>>,
}

/// Runs the symbolic PTE check of `spec` over `net`.
///
/// Borrows both inputs — the network is *not* cloned (PR 2 cloned the
/// full automata; the observer clocks now live beside it instead of
/// inside it). Returns an error if a spec entity names no automaton in
/// the network.
pub fn check(
    net: &TaNetwork,
    spec: &ObserverSpec,
    limits: &Limits,
) -> Result<SymbolicVerdict, String> {
    let mut entity_aut = Vec::with_capacity(spec.entities.len());
    let mut aut_entity = vec![None; net.automata.len()];
    for (ei, name) in spec.entities.iter().enumerate() {
        let ai = net
            .automaton_by_name(name)
            .ok_or_else(|| format!("spec entity `{name}` not found in network"))?;
        entity_aut.push(ai);
        aut_entity[ai] = Some(ei);
    }
    // Observer clocks occupy the DBM dimensions above the network's own
    // clocks: `r` clocks first, then the per-pair `s` clocks.
    let base = net.clock_count();
    let mut observer_clock_names = Vec::with_capacity(spec.entities.len() + spec.pairs.len());
    let r_clock: Vec<usize> = spec
        .entities
        .iter()
        .enumerate()
        .map(|(ei, name)| {
            observer_clock_names.push(format!("r[{name}]"));
            base + 1 + ei
        })
        .collect();
    let s_clock: Vec<usize> = (0..spec.pairs.len())
        .map(|k| {
            observer_clock_names.push(format!("s[pair{k}]"));
            base + 1 + spec.entities.len() + k
        })
        .collect();
    let nclocks = base + spec.entities.len() + spec.pairs.len();

    // Maximal constants: network constants plus the observer's bounds.
    // The observer compares `r_i` downward against `T^min_risky` (enter
    // lead) and upward against the Rule-1 bound, and `s_k` downward
    // against `T^min_safe`, so the LU split mirrors those directions.
    let mut kmax = net.max_constants();
    kmax.resize(nclocks + 1, 0);
    let mut lu = net.lu_bounds();
    lu.lower.resize(nclocks + 1, 0);
    lu.upper.resize(nclocks + 1, 0);
    for (ei, &c) in r_clock.iter().enumerate() {
        let mut k = spec.rule1_ticks[ei];
        lu.fold_lower(c, spec.rule1_ticks[ei]);
        if ei < spec.pairs.len() {
            k = k.max(spec.pairs[ei].t_min_risky);
            lu.fold_upper(c, spec.pairs[ei].t_min_risky);
        }
        kmax[c] = k;
    }
    for (pk, &c) in s_clock.iter().enumerate() {
        kmax[c] = spec.pairs[pk].t_min_safe;
        lu.fold_upper(c, spec.pairs[pk].t_min_safe);
    }

    // `Act` codes and interned root ids index automata/edges/roots with
    // u16, and the minimal constraint form ([`Dbm::reduce`]) indexes
    // clocks with u8; reject (rather than silently truncate) networks
    // beyond those bounds, far past anything the lowering produces.
    if net.automata.len() > u16::MAX as usize
        || net
            .automata
            .iter()
            .any(|a| a.edges.len() > u16::MAX as usize)
    {
        return Err("network too large: more than 65535 automata or edges per automaton".into());
    }
    if nclocks + 1 > u8::MAX as usize {
        return Err(format!(
            "network too large: {nclocks} clocks (incl. observer clocks) exceed the \
             254-clock limit of the compressed passed list"
        ));
    }

    // Intern every event root in deterministic first-seen order over
    // the network. Roots accumulate *across* automata, so their count
    // is bounded separately from the per-automaton edge guard above —
    // and gracefully, like the other size limits.
    let mut roots: Vec<Root> = Vec::new();
    let mut root_ids: HashMap<Root, u16> = HashMap::new();
    for aut in &net.automata {
        for e in &aut.edges {
            for r in e.sync.root().into_iter().chain(e.emits.iter()) {
                if root_ids.contains_key(r) {
                    continue;
                }
                if roots.len() > u16::MAX as usize {
                    return Err(
                        "network too large: more than 65536 distinct event roots".to_string()
                    );
                }
                root_ids.insert(r.clone(), roots.len() as u16);
                roots.push(r.clone());
            }
        }
    }

    // Per-(automaton, location) dispatch tables replacing per-expansion
    // edge scans.
    let mut spont = Vec::with_capacity(net.automata.len());
    let mut urgent = Vec::with_capacity(net.automata.len());
    let mut recv = Vec::with_capacity(net.automata.len());
    let mut emit_ids = Vec::with_capacity(net.automata.len());
    for aut in &net.automata {
        let nloc = aut.locations.len();
        let mut sp = vec![Vec::new(); nloc];
        let mut ur = vec![Vec::new(); nloc];
        let mut rc: Vec<Vec<RecvEdge>> = vec![Vec::new(); nloc];
        let mut em = Vec::with_capacity(aut.edges.len());
        for (eid, e) in aut.edges.iter().enumerate() {
            match &e.sync {
                Sync::None | Sync::External(_) => sp[e.src].push(eid as u32),
                Sync::Reliable(r) => rc[e.src].push(RecvEdge {
                    root: root_ids[r],
                    eid: eid as u32,
                    lossy: false,
                }),
                Sync::Lossy(r) => rc[e.src].push(RecvEdge {
                    root: root_ids[r],
                    eid: eid as u32,
                    lossy: true,
                }),
            }
            if e.urgent {
                ur[e.src].push(eid as u32);
            }
            em.push(e.emits.iter().map(|r| root_ids[r]).collect::<Vec<u16>>());
        }
        spont.push(sp);
        urgent.push(ur);
        recv.push(rc);
        emit_ids.push(em);
    }

    let engine = Engine {
        net,
        spec,
        entity_aut,
        aut_entity,
        r_clock,
        s_clock,
        nclocks,
        observer_clock_names,
        kmax,
        lu,
        extrapolation: limits.extrapolation,
        roots,
        spont,
        urgent,
        recv,
        emit_ids,
        shards: (0..SHARD_COUNT)
            .map(|_| Mutex::new(Shard::default()))
            .collect(),
    };
    Ok(engine.run(limits))
}

/// Phase selector for the persistent worker pool. Thread spawning is
/// expensive enough (≈1 ms per scope on some kernels) to swamp per-round
/// parallelism, so the pool is spawned once per [`check`] and rounds are
/// coordinated with an epoch counter: the coordinator stages a phase,
/// bumps `epoch`, participates in the work itself, and spin/yield-waits
/// for every helper to raise `done`.
const TASK_EXIT: usize = 0;
const TASK_EXPAND: usize = 1;
const TASK_ADMIT: usize = 2;

/// Phase-control block guarded by [`RoundSync::phase`].
struct PhaseCtl {
    /// Bumped by the coordinator to start the next phase.
    epoch: usize,
    /// Which phase the current epoch runs ([`TASK_EXPAND`], …).
    task: usize,
    /// Helpers that finished the current phase.
    done: usize,
}

/// Shared round state between the coordinator and the helper pool.
/// Phase hand-off uses `std::sync::Condvar` so idle helpers sleep
/// instead of burning a core (matters when `max_workers` exceeds the
/// machine's parallelism).
struct RoundSync {
    phase: std::sync::Mutex<PhaseCtl>,
    /// Signalled by the coordinator when a new phase starts.
    start: std::sync::Condvar,
    /// Signalled by helpers when they finish a phase.
    finish: std::sync::Condvar,
    /// Work-claim cursor of the current phase (frontier index or shard
    /// index).
    cursor: AtomicUsize,
    /// The frontier being expanded (published before the phase starts).
    frontier: RwLock<Vec<FrontierEntry>>,
    /// Violations found by helpers this round.
    violations: Mutex<Vec<(Option<NodeId>, Violation)>>,
    /// Per-shard admissions produced by helpers this round.
    admitted: Mutex<Vec<(usize, Vec<FrontierEntry>)>>,
    /// Helper-side transition / subsumption tallies.
    transitions: AtomicUsize,
    subsumed: AtomicUsize,
    /// Set by a helper whose phase work panicked; the coordinator
    /// aborts the check instead of trusting a partial round.
    helper_panicked: std::sync::atomic::AtomicBool,
}

impl RoundSync {
    fn new() -> RoundSync {
        RoundSync {
            phase: std::sync::Mutex::new(PhaseCtl {
                epoch: 0,
                task: TASK_EXIT,
                done: 0,
            }),
            start: std::sync::Condvar::new(),
            finish: std::sync::Condvar::new(),
            cursor: AtomicUsize::new(0),
            frontier: RwLock::new(Vec::new()),
            violations: Mutex::new(Vec::new()),
            admitted: Mutex::new(Vec::new()),
            transitions: AtomicUsize::new(0),
            subsumed: AtomicUsize::new(0),
            helper_panicked: std::sync::atomic::AtomicBool::new(false),
        }
    }

    fn ctl(&self) -> std::sync::MutexGuard<'_, PhaseCtl> {
        self.phase.lock().expect("phase lock poisoned")
    }
}

impl Engine<'_> {
    fn run(&self, limits: &Limits) -> SymbolicVerdict {
        let workers = limits.effective_workers().max(1);
        let sync = RoundSync::new();
        if workers == 1 {
            return self.drive(&sync, limits, 0);
        }
        crossbeam::thread::scope(|scope| {
            for _ in 0..workers - 1 {
                scope.spawn(|_| self.helper_loop(&sync));
            }
            // Catch a coordinator panic so the pool is always dismissed:
            // the scope joins helpers before propagating, and helpers
            // blocked on the start condvar would otherwise hang forever,
            // turning the crash into a silent CI timeout.
            let verdict = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                self.drive(&sync, limits, workers - 1)
            }));
            self.start_phase(&sync, TASK_EXIT);
            match verdict {
                Ok(v) => v,
                Err(panic) => std::panic::resume_unwind(panic),
            }
        })
        .expect("worker pool scope")
    }

    /// Sums the per-shard passed-list byte accounting into `stats`.
    fn fold_passed_bytes(&self, stats: &mut SearchStats) {
        let (mut min_bytes, mut full_bytes) = (0usize, 0usize);
        for shard in &self.shards {
            let s = shard.lock();
            min_bytes += s.min_bytes;
            full_bytes += s.full_bytes;
        }
        stats.peak_passed_bytes = min_bytes;
        stats.peak_passed_bytes_full = full_bytes;
    }

    /// The coordinator: seeds the search, then alternates expand/admit
    /// phases (participating in each) until a verdict is reached.
    fn drive(&self, sync: &RoundSync, limits: &Limits, helpers: usize) -> SymbolicVerdict {
        let started = Instant::now();
        let mut stats = SearchStats::default();
        let mut pool = DbmPool::new();

        // Seed round: resolve + cook the initial state on this thread.
        let init = Work {
            locs: self.net.automata.iter().map(|a| a.initial as u32).collect(),
            pairs: vec![PairState::Idle; self.spec.pairs.len()],
            zone: Dbm::zero(self.nclocks),
            queue: VecDeque::new(),
            acts: vec![Act::Initial],
        };
        let mut local = LocalStats::default();
        let mut settled = Vec::new();
        let mut violations: Vec<(Option<NodeId>, Violation)> = Vec::new();
        match self.resolve(init, 0, &mut settled, &mut local, &mut pool) {
            Ok(()) => {}
            Err(v) => violations.push((None, v)),
        }
        for w in settled {
            match self.cook(w, None, &mut local, &mut pool) {
                Ok(Some(c)) => self.shards[shard_of(&c.key)].lock().pending.push(c),
                Ok(None) => {}
                Err(v) => violations.push((None, v)),
            }
        }
        stats.transitions += local.transitions;
        stats.subsumed += local.subsumed;
        if !violations.is_empty() {
            return self.least_counter_example(violations);
        }
        let mut frontier = self.admit_phase(sync, helpers, &mut stats, &mut pool);

        loop {
            if frontier.is_empty() {
                stats.frontier = 0;
                self.fold_passed_bytes(&mut stats);
                return SymbolicVerdict::Safe(stats);
            }
            if stats.states > limits.max_states {
                stats.frontier = frontier.len();
                self.fold_passed_bytes(&mut stats);
                return SymbolicVerdict::OutOfBudget {
                    stats,
                    tripped: TrippedLimit::MaxStates(limits.max_states),
                };
            }
            if let Some(budget) = limits.max_wall {
                if started.elapsed() > budget {
                    stats.frontier = frontier.len();
                    self.fold_passed_bytes(&mut stats);
                    return SymbolicVerdict::OutOfBudget {
                        stats,
                        tripped: TrippedLimit::WallClock(budget),
                    };
                }
            }
            let violations = self.expand_phase(sync, frontier, helpers, &mut stats, &mut pool);
            if !violations.is_empty() {
                return self.least_counter_example(violations);
            }
            frontier = self.admit_phase(sync, helpers, &mut stats, &mut pool);
        }
    }

    /// Helper thread body: wait for the next epoch, run its phase, raise
    /// `done`; exit on [`TASK_EXIT`]. Each helper owns a [`DbmPool`]
    /// that persists across phases, so successor zones recycle worker-
    /// locally without synchronization.
    fn helper_loop(&self, sync: &RoundSync) {
        // Baseline is the pool-creation epoch (0), NOT the current value:
        // a helper that spawns after the coordinator's first bump must
        // still join that phase, or the coordinator waits forever.
        let mut seen = 0usize;
        let mut pool = DbmPool::new();
        loop {
            let task = {
                let mut ctl = sync.ctl();
                while ctl.epoch == seen {
                    ctl = sync.start.wait(ctl).expect("phase lock poisoned");
                }
                seen = ctl.epoch;
                ctl.task
            };
            // A panicking phase must still raise `done`, or the
            // coordinator waits for this helper forever and a crash
            // becomes a hang. Catch the unwind, flag it, and let the
            // coordinator abort the whole check.
            let pool = &mut pool;
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match task {
                TASK_EXPAND => {
                    let (local, violations) = {
                        let frontier = sync.frontier.read();
                        self.expand_work(&frontier, &sync.cursor, pool)
                    };
                    sync.transitions
                        .fetch_add(local.transitions, Ordering::Relaxed);
                    sync.subsumed.fetch_add(local.subsumed, Ordering::Relaxed);
                    if !violations.is_empty() {
                        sync.violations.lock().extend(violations);
                    }
                    true
                }
                TASK_ADMIT => {
                    let (admitted, subsumed) = self.admit_work(&sync.cursor, pool);
                    sync.subsumed.fetch_add(subsumed, Ordering::Relaxed);
                    if !admitted.is_empty() {
                        sync.admitted.lock().extend(admitted);
                    }
                    true
                }
                _ => false,
            }));
            let keep_going = match outcome {
                Ok(keep_going) => keep_going,
                Err(_) => {
                    sync.helper_panicked.store(true, Ordering::Release);
                    true
                }
            };
            if !keep_going {
                break;
            }
            let mut ctl = sync.ctl();
            ctl.done += 1;
            sync.finish.notify_one();
        }
    }

    /// Publishes a phase to the pool and waits for every helper to
    /// finish it (the coordinator's own share is run by the caller
    /// between `start` and `wait`).
    fn start_phase(&self, sync: &RoundSync, task: usize) {
        sync.cursor.store(0, Ordering::Relaxed);
        let mut ctl = sync.ctl();
        ctl.epoch += 1;
        ctl.task = task;
        ctl.done = 0;
        drop(ctl);
        sync.start.notify_all();
    }

    fn wait_helpers(&self, sync: &RoundSync, helpers: usize) {
        let mut ctl = sync.ctl();
        while ctl.done < helpers {
            ctl = sync.finish.wait(ctl).expect("phase lock poisoned");
        }
        drop(ctl);
        if sync.helper_panicked.load(Ordering::Acquire) {
            // Dismiss the pool first so the scope join below us cannot
            // deadlock on helpers waiting for a phase that never comes,
            // then surface the crash instead of trusting a partial round.
            self.start_phase(sync, TASK_EXIT);
            panic!("symbolic exploration worker panicked; aborting the check");
        }
    }

    /// Phase 1: expands every frontier entry, staging cooked successors
    /// into their target shards and returning the round's violations.
    fn expand_phase(
        &self,
        sync: &RoundSync,
        frontier: Vec<FrontierEntry>,
        helpers: usize,
        stats: &mut SearchStats,
        pool: &mut DbmPool,
    ) -> Vec<(Option<NodeId>, Violation)> {
        // The previous round's frontier has been fully expanded; recycle
        // its zones before publishing the new one.
        let expanded = std::mem::replace(&mut *sync.frontier.write(), frontier);
        for e in expanded {
            pool.recycle(e.zone);
        }
        self.start_phase(sync, TASK_EXPAND);
        let (local, mut violations) = {
            let frontier = sync.frontier.read();
            self.expand_work(&frontier, &sync.cursor, pool)
        };
        self.wait_helpers(sync, helpers);
        stats.transitions += local.transitions + sync.transitions.swap(0, Ordering::Relaxed);
        stats.subsumed += local.subsumed + sync.subsumed.swap(0, Ordering::Relaxed);
        violations.append(&mut sync.violations.lock());
        violations
    }

    /// One worker's share of an expand phase: claim frontier entries
    /// from the shared cursor, expand them, flush staged candidates to
    /// their shards (one lock per shard per phase).
    fn expand_work(
        &self,
        frontier: &[FrontierEntry],
        cursor: &AtomicUsize,
        pool: &mut DbmPool,
    ) -> (LocalStats, Vec<(Option<NodeId>, Violation)>) {
        let mut local = LocalStats::default();
        let mut violations = Vec::new();
        let mut staged: Vec<Vec<Candidate>> = (0..SHARD_COUNT).map(|_| Vec::new()).collect();
        loop {
            let i = cursor.fetch_add(1, Ordering::Relaxed);
            let Some(entry) = frontier.get(i) else { break };
            self.expand(entry, &mut staged, &mut violations, &mut local, pool);
        }
        for (s, mut batch) in staged.into_iter().enumerate() {
            if !batch.is_empty() {
                self.shards[s].lock().pending.append(&mut batch);
            }
        }
        (local, violations)
    }

    /// Phase 2: drains every shard's pending list in content-defined
    /// order, admitting unsubsumed candidates; returns the next
    /// frontier (concatenated in shard order — deterministic).
    fn admit_phase(
        &self,
        sync: &RoundSync,
        helpers: usize,
        stats: &mut SearchStats,
        pool: &mut DbmPool,
    ) -> Vec<FrontierEntry> {
        self.start_phase(sync, TASK_ADMIT);
        let (mut per_shard, subsumed) = self.admit_work(&sync.cursor, pool);
        self.wait_helpers(sync, helpers);
        stats.subsumed += subsumed + sync.subsumed.swap(0, Ordering::Relaxed);
        per_shard.append(&mut sync.admitted.lock());
        per_shard.sort_by_key(|(s, _)| *s);
        let frontier: Vec<FrontierEntry> =
            per_shard.into_iter().flat_map(|(_, fresh)| fresh).collect();
        stats.states += frontier.len();
        frontier
    }

    /// One worker's share of an admit phase: claim whole shards from the
    /// shared cursor and admit their pending candidates deterministically.
    ///
    /// Admission is where keys are interned (content order ⇒ id
    /// assignment is identical for every worker count) and where zones
    /// are compressed: the node arena stores the minimal constraint
    /// form, against which future subsumption checks run directly.
    fn admit_work(
        &self,
        cursor: &AtomicUsize,
        pool: &mut DbmPool,
    ) -> (Vec<(usize, Vec<FrontierEntry>)>, usize) {
        let mut admitted: Vec<(usize, Vec<FrontierEntry>)> = Vec::new();
        let mut subsumed = 0usize;
        loop {
            let s = cursor.fetch_add(1, Ordering::Relaxed);
            if s >= SHARD_COUNT {
                break;
            }
            let mut shard = self.shards[s].lock();
            if shard.pending.is_empty() {
                continue;
            }
            let mut pending = std::mem::take(&mut shard.pending);
            pending.sort_by(|a, b| a.order_key().cmp(&b.order_key()));
            let mut fresh = Vec::new();
            let Shard {
                keys,
                buckets,
                nodes,
                min_bytes,
                full_bytes,
                ..
            } = &mut *shard;
            for c in pending {
                debug_assert!(
                    c.zone.closed_through_zero(),
                    "candidates must arrive canonical"
                );
                let (kid, new_key) = keys.intern(&c.key);
                if new_key {
                    buckets.push(Vec::new());
                }
                let bucket = &mut buckets[kid as usize];
                if bucket
                    .iter()
                    .any(|&ni| nodes[ni as usize].zone.includes(&c.zone))
                {
                    subsumed += 1;
                    pool.recycle(c.zone);
                    continue;
                }
                let reduced = c.zone.reduce();
                *min_bytes += reduced.heap_bytes();
                *full_bytes += reduced.full_matrix_bytes();
                let idx = nodes.len() as u32;
                nodes.push(Node {
                    zone: reduced,
                    parent: c.parent,
                    acts: c.acts.into_boxed_slice(),
                });
                bucket.push(idx);
                fresh.push(FrontierEntry {
                    id: NodeId {
                        shard: s as u32,
                        idx,
                    },
                    locs: c.key.0,
                    pairs: c.key.1,
                    zone: c.zone,
                });
            }
            admitted.push((s, fresh));
        }
        (admitted, subsumed)
    }

    /// Expands one settled state: fires every spontaneous/external edge,
    /// resolves the emission cascade, cooks the settled successors into
    /// shard-staged candidates, and records violations. A violation in
    /// one edge branch never hides violations or successors of sibling
    /// branches (determinism requires the full per-node violation set).
    fn expand(
        &self,
        entry: &FrontierEntry,
        staged: &mut [Vec<Candidate>],
        violations: &mut Vec<(Option<NodeId>, Violation)>,
        local: &mut LocalStats,
        pool: &mut DbmPool,
    ) {
        for ai in 0..self.net.automata.len() {
            let loc = entry.locs[ai] as usize;
            for &eid in &self.spont[ai][loc] {
                let eid = eid as usize;
                // Guards are pre-tested atom-by-atom on the parent zone,
                // skipping the Work clone entirely when any single atom
                // is unsatisfiable (necessary condition; the joint
                // conjunction is still checked by apply_edge).
                let guard = &self.net.automata[ai].edges[eid].guard;
                if guard.iter().any(|a| !a.satisfiable_in(&entry.zone)) {
                    continue;
                }
                let mut w = Work {
                    locs: entry.locs.clone(),
                    pairs: entry.pairs.clone(),
                    zone: pool.clone_dbm(&entry.zone),
                    queue: VecDeque::new(),
                    acts: Vec::new(),
                };
                match self.apply_edge(&mut w, ai, eid, local) {
                    Ok(true) => {}
                    Ok(false) => {
                        pool.recycle(w.zone);
                        continue;
                    }
                    Err(v) => {
                        violations.push((Some(entry.id), v));
                        pool.recycle(w.zone);
                        continue;
                    }
                }
                let mut settled = Vec::new();
                if let Err(v) = self.resolve(w, 0, &mut settled, local, pool) {
                    violations.push((Some(entry.id), v));
                    continue;
                }
                for s in settled {
                    match self.cook(s, Some(entry.id), local, pool) {
                        Ok(Some(c)) => staged[shard_of(&c.key)].push(c),
                        Ok(None) => {}
                        Err(v) => violations.push((Some(entry.id), v)),
                    }
                }
            }
        }
    }

    /// Fires edge `eid` of automaton `ai` on `w` in place: guard
    /// restriction (incremental closure — the zone stays canonical
    /// throughout, no Floyd–Warshall), PTE observer transition checks,
    /// resets, location move, emission enqueue. `Ok(false)` when the
    /// guard is unsatisfiable (the caller recycles `w.zone`).
    fn apply_edge(
        &self,
        w: &mut Work,
        ai: usize,
        eid: usize,
        local: &mut LocalStats,
    ) -> Result<bool, Violation> {
        let edge = &self.net.automata[ai].edges[eid];
        for atom in &edge.guard {
            if !atom.apply_and_close(&mut w.zone) {
                return Ok(false);
            }
        }
        local.transitions += 1;

        let src_risky = self.net.automata[ai].locations[edge.src].risky;
        let dst_risky = self.net.automata[ai].locations[edge.dst].risky;
        w.acts.push(Act::Edge {
            aut: ai as u16,
            eid: eid as u16,
        });

        // PTE observer: transitions across the risky boundary.
        if let Some(ei) = self.aut_entity[ai] {
            if !src_risky && dst_risky {
                self.observe_enter(ei, w)?;
            } else if src_risky && !dst_risky {
                self.observe_exit(ei, w)?;
            }
        }

        let edge = &self.net.automata[ai].edges[eid];
        for (clock, v) in &edge.resets {
            w.zone.reset(*clock, *v);
        }
        w.locs[ai] = edge.dst as u32;
        for &rid in &self.emit_ids[ai][eid] {
            w.queue.push_back((ai as u32, rid));
        }
        Ok(true)
    }

    /// Entity `ei` enters risky: coverage + enter-lead checks, pair state
    /// updates, `r` clock reset.
    fn observe_enter(&self, ei: usize, w: &mut Work) -> Result<(), Violation> {
        // Pairs where `ei` is the inner entity.
        if ei >= 1 && ei - 1 < self.spec.pairs.len() {
            let pk = ei - 1;
            let outer_loc = w.locs[self.entity_aut[pk]] as usize;
            let outer_risky = self.net.automata[self.entity_aut[pk]].locations[outer_loc].risky;
            if !outer_risky {
                return Err(Violation {
                    kind: ViolationKind::Coverage { pair: pk },
                    acts: w.acts.clone(),
                    zone: w.zone.clone(),
                });
            }
            let lead_short = Atom {
                clock: self.r_clock[pk],
                rel: Rel::Lt,
                ticks: self.spec.pairs[pk].t_min_risky,
            };
            if lead_short.satisfiable_in(&w.zone) {
                let mut witness = w.zone.clone();
                lead_short.apply_and_close(&mut witness);
                return Err(Violation {
                    kind: ViolationKind::EnterMargin { pair: pk },
                    acts: w.acts.clone(),
                    zone: witness,
                });
            }
            w.pairs[pk] = PairState::Embedded;
        }
        // Pairs where `ei` is the outer entity.
        if ei < self.spec.pairs.len() && w.pairs[ei] == PairState::Idle {
            w.pairs[ei] = PairState::OuterOnly;
        }
        w.zone.reset(self.r_clock[ei], 0);
        Ok(())
    }

    /// Entity `ei` leaves risky: exit-lag checks, pair state updates,
    /// `s` clock reset.
    fn observe_exit(&self, ei: usize, w: &mut Work) -> Result<(), Violation> {
        // Pairs where `ei` is the inner entity: start the lag phase.
        if ei >= 1 && ei - 1 < self.spec.pairs.len() {
            let pk = ei - 1;
            if w.pairs[pk] == PairState::Embedded {
                w.pairs[pk] = PairState::InnerExited;
                w.zone.reset(self.s_clock[pk], 0);
            }
        }
        // Pairs where `ei` is the outer entity.
        if ei < self.spec.pairs.len() {
            match w.pairs[ei] {
                PairState::Embedded => {
                    return Err(Violation {
                        kind: ViolationKind::ExitUncovered { pair: ei },
                        acts: w.acts.clone(),
                        zone: w.zone.clone(),
                    });
                }
                PairState::InnerExited => {
                    let lag_short = Atom {
                        clock: self.s_clock[ei],
                        rel: Rel::Lt,
                        ticks: self.spec.pairs[ei].t_min_safe,
                    };
                    if lag_short.satisfiable_in(&w.zone) {
                        let mut witness = w.zone.clone();
                        lag_short.apply_and_close(&mut witness);
                        return Err(Violation {
                            kind: ViolationKind::ExitLag { pair: ei },
                            acts: w.acts.clone(),
                            zone: witness,
                        });
                    }
                    w.pairs[ei] = PairState::Idle;
                }
                PairState::OuterOnly | PairState::Idle => {
                    w.pairs[ei] = PairState::Idle;
                }
            }
        }
        Ok(())
    }

    /// Assigns a delivery fate to receiver `idx` of an in-flight event
    /// and recurses over the remaining receivers (in automaton order,
    /// matching the executor's broadcast order), producing the full
    /// cartesian product of per-receiver fates:
    ///
    /// * every enabled receiving edge is a *delivered* branch;
    /// * a **lossy** receiver can always *drop* instead;
    /// * a **reliable** receiver only ignores the event where no edge of
    ///   its is enabled — exact via guard-atom negation for a single
    ///   guarded edge, conservatively over-approximated (full-zone
    ///   ignore, which can only add behaviours, never hide one) when
    ///   several guarded edges compete.
    #[allow(clippy::too_many_arguments)]
    fn deliver_fates(
        &self,
        w: Work,
        root: u16,
        receivers: &[(usize, Vec<(usize, bool)>)],
        idx: usize,
        depth: usize,
        out: &mut Vec<Work>,
        local: &mut LocalStats,
        pool: &mut DbmPool,
    ) -> Result<(), Violation> {
        if idx == receivers.len() {
            return self.resolve(w, depth + 1, out, local, pool);
        }
        let (ai, edges) = &receivers[idx];
        let mut any_delivered = false;
        for (eid, _) in edges {
            let mut branch = w.clone_via(pool);
            branch.acts.push(Act::Deliver {
                root,
                aut: *ai as u16,
            });
            if self.apply_edge(&mut branch, *ai, *eid, local)? {
                any_delivered = true;
                self.deliver_fates(branch, root, receivers, idx + 1, depth, out, local, pool)?;
            } else {
                pool.recycle(branch.zone);
            }
        }
        // Any lossy receiving edge means the wireless hop itself can drop
        // the message (also the conservative fate when an automaton mixes
        // lossy and reliable edges on one root, which the pattern never
        // does); a purely reliable receiver only misses the event where
        // none of its edges is enabled.
        let any_lossy = edges.iter().any(|(_, lossy)| *lossy);
        if any_lossy || !any_delivered {
            // Drop (lossy) or discard (reliable but nowhere enabled).
            let mut branch = w.clone_via(pool);
            branch.acts.push(Act::Lost {
                root,
                aut: *ai as u16,
            });
            self.deliver_fates(branch, root, receivers, idx + 1, depth, out, local, pool)?;
        } else {
            // Reliable and at least one edge delivered somewhere in the
            // zone: the event is still ignored on the sub-zone where no
            // edge is enabled.
            let guarded: Vec<usize> = edges
                .iter()
                .filter(|(eid, _)| !self.net.automata[*ai].edges[*eid].guard.is_empty())
                .map(|(eid, _)| *eid)
                .collect();
            let unguarded_exists = edges.len() > guarded.len();
            if !unguarded_exists && guarded.len() == 1 {
                // Exact complement: one guarded edge, branch per negated
                // guard atom.
                for atom in &self.net.automata[*ai].edges[guarded[0]].guard {
                    let mut branch = w.clone_via(pool);
                    if !atom.negated().apply_and_close(&mut branch.zone) {
                        pool.recycle(branch.zone);
                        continue;
                    }
                    branch.acts.push(Act::GuardOff {
                        root,
                        aut: *ai as u16,
                    });
                    self.deliver_fates(branch, root, receivers, idx + 1, depth, out, local, pool)?;
                }
            } else if !unguarded_exists {
                // Several guarded reliable edges: over-approximate with a
                // full-zone ignore branch (sound for Safe verdicts).
                let mut branch = w.clone_via(pool);
                branch.acts.push(Act::MaybeIgnored {
                    root,
                    aut: *ai as u16,
                });
                self.deliver_fates(branch, root, receivers, idx + 1, depth, out, local, pool)?;
            }
            // An unguarded reliable edge is always enabled: no ignore
            // fate exists.
        }
        pool.recycle(w.zone);
        Ok(())
    }

    /// Resolves pending emissions (branching on delivery fates) and
    /// invariant-expired sub-zones (firing urgent escapes), collecting
    /// fully settled states.
    fn resolve(
        &self,
        mut w: Work,
        depth: usize,
        out: &mut Vec<Work>,
        local: &mut LocalStats,
        pool: &mut DbmPool,
    ) -> Result<(), Violation> {
        if depth > CASCADE_DEPTH {
            out.push(w);
            return Ok(());
        }
        if let Some((sender, root)) = w.queue.pop_front() {
            // Candidate receivers, grouped per automaton: the executor
            // broadcasts an emission to every listener except the sender
            // (`route_emission` skips `receiver == sender`), and each
            // listener's wireless delivery has its own drop fate. The
            // per-location dispatch table replaces the full edge scan.
            let mut receivers: Vec<(usize, Vec<(usize, bool)>)> = Vec::new(); // (aut, [(edge, lossy)])
            for ai in 0..self.net.automata.len() {
                if ai == sender as usize {
                    continue;
                }
                let loc = w.locs[ai] as usize;
                let edges: Vec<(usize, bool)> = self.recv[ai][loc]
                    .iter()
                    .filter(|re| re.root == root)
                    .map(|re| (re.eid as usize, re.lossy))
                    .collect();
                if !edges.is_empty() {
                    receivers.push((ai, edges));
                }
            }
            return self.deliver_fates(w, root, &receivers, 0, depth, out, local, pool);
        }

        // No pending events: split on invariant satisfaction.
        let mut zin = pool.clone_dbm(&w.zone);
        let mut zin_alive = true;
        let mut atoms: Vec<(usize, Atom)> = Vec::new();
        for (ai, aut) in self.net.automata.iter().enumerate() {
            for atom in &aut.locations[w.locs[ai] as usize].invariant {
                // Incremental conjunction; once empty, only collect the
                // remaining atoms (the urgent split below needs them all).
                zin_alive = zin_alive && atom.apply_and_close(&mut zin);
                atoms.push((ai, *atom));
            }
        }
        if zin_alive {
            out.push(Work {
                locs: w.locs.clone(),
                pairs: w.pairs.clone(),
                zone: zin,
                queue: VecDeque::new(),
                acts: w.acts.clone(),
            });
        } else {
            pool.recycle(zin);
        }
        // Sub-zones beyond some invariant must take an urgent escape now.
        for (ai, atom) in &atoms {
            let mut zout = pool.clone_dbm(&w.zone);
            if !atom.negated().apply_and_close(&mut zout) {
                pool.recycle(zout);
                continue;
            }
            let loc = w.locs[*ai] as usize;
            for &eid in &self.urgent[*ai][loc] {
                let mut branch = Work {
                    locs: w.locs.clone(),
                    pairs: w.pairs.clone(),
                    zone: pool.clone_dbm(&zout),
                    queue: w.queue.clone(),
                    acts: w.acts.clone(),
                };
                branch.acts.push(Act::InvariantExpired { aut: *ai as u16 });
                if self.apply_edge(&mut branch, *ai, eid as usize, local)? {
                    self.resolve(branch, depth + 1, out, local, pool)?;
                } else {
                    pool.recycle(branch.zone);
                }
            }
            pool.recycle(zout);
        }
        pool.recycle(w.zone);
        Ok(())
    }

    /// Cooks a settled work item into an admission candidate: delay
    /// closure, observer-clock activity reduction, extrapolation, and
    /// the state-level PTE checks. Subsumption is deferred to phase 2.
    /// Every step preserves canonical form incrementally; the only full
    /// closure left is the one extrapolation performs internally when
    /// it widens anything.
    fn cook(
        &self,
        mut w: Work,
        parent: Option<NodeId>,
        local: &mut LocalStats,
        pool: &mut DbmPool,
    ) -> Result<Option<Candidate>, Violation> {
        // Delay: up-close within the conjunction of location invariants,
        // unless some occupied location freezes time.
        let frozen = w
            .locs
            .iter()
            .enumerate()
            .any(|(ai, &l)| self.net.automata[ai].locations[l as usize].frozen);
        if !frozen {
            w.zone.up();
            for (ai, aut) in self.net.automata.iter().enumerate() {
                for atom in &aut.locations[w.locs[ai] as usize].invariant {
                    if !atom.apply_and_close(&mut w.zone) {
                        // Cannot happen for a zone that satisfied the
                        // invariants, but guard against malformed inputs.
                        pool.recycle(w.zone);
                        return Ok(None);
                    }
                }
            }
        }
        // Observer-clock activity reduction: `r_i` is only ever read
        // while entity `i` is risky (it is reset on entry), and `s_k`
        // only in the pair's `InnerExited` lag phase (reset on entry) —
        // elsewhere they are dead, and freeing them collapses zones that
        // differ only in dead-clock history.
        for (ei, &ai) in self.entity_aut.iter().enumerate() {
            if !self.net.automata[ai].locations[w.locs[ai] as usize].risky {
                w.zone.free(self.r_clock[ei]);
            }
        }
        for pk in 0..self.spec.pairs.len() {
            if w.pairs[pk] != PairState::InnerExited {
                w.zone.free(self.s_clock[pk]);
            }
        }

        // Early subsumption probe — *before* extrapolation: if an
        // already-passed zone (from a previous round; phase 1 never
        // mutates node arenas, so this read is deterministic) includes
        // the un-extrapolated candidate, every concrete behaviour from
        // here is covered by an explored state and the candidate can be
        // dropped without paying for extrapolation, reduction, or
        // admission. Sound for violation reporting too: passed zones
        // are violation-free by construction (a cooked zone with a
        // satisfiable violation is reported, never admitted), and the
        // LU bounds cover every observer constant, so a violation
        // satisfiable in the dropped candidate's widening would be
        // satisfiable in the subsuming passed zone as well.
        let key: Key = (w.locs, w.pairs);
        {
            let shard = self.shards[shard_of(&key)].lock();
            if let Some(kid) = shard.keys.get(&key) {
                if shard.buckets[kid as usize]
                    .iter()
                    .any(|&ni| shard.nodes[ni as usize].zone.includes(&w.zone))
                {
                    local.subsumed += 1;
                    pool.recycle(w.zone);
                    return Ok(None);
                }
            }
        }

        match self.extrapolation {
            Extrapolation::ExtraM => w.zone.extrapolate(&self.kmax),
            Extrapolation::ExtraLu => w.zone.extrapolate_lu_plus(&self.lu.lower, &self.lu.upper),
        }

        // State-level PTE checks on the delay-closed zone.
        for (ei, &ai) in self.entity_aut.iter().enumerate() {
            let risky = self.net.automata[ai].locations[key.0[ai] as usize].risky;
            if !risky {
                continue;
            }
            let over = Atom {
                clock: self.r_clock[ei],
                rel: Rel::Gt,
                ticks: self.spec.rule1_ticks[ei],
            };
            if over.satisfiable_in(&w.zone) {
                let mut witness = w.zone.clone();
                over.apply_and_close(&mut witness);
                let mut acts = w.acts.clone();
                acts.push(Act::DwellExceeded { entity: ei as u16 });
                return Err(Violation {
                    kind: ViolationKind::Rule1 { entity: ei },
                    acts,
                    zone: witness,
                });
            }
        }
        for pk in 0..self.spec.pairs.len() {
            let outer = self.entity_aut[pk];
            let inner = self.entity_aut[pk + 1];
            let outer_risky = self.net.automata[outer].locations[key.0[outer] as usize].risky;
            let inner_risky = self.net.automata[inner].locations[key.0[inner] as usize].risky;
            if inner_risky && !outer_risky {
                return Err(Violation {
                    kind: ViolationKind::Coverage { pair: pk },
                    acts: w.acts.clone(),
                    zone: w.zone.clone(),
                });
            }
        }

        Ok(Some(Candidate {
            key,
            zone: w.zone,
            parent,
            acts: w.acts,
        }))
    }

    /// Renders every violation of the round and returns the
    /// lexicographically least counter-example (by step list, then
    /// violation kind, then zone text) — a content-defined choice, so
    /// the witness is identical for every worker count.
    fn least_counter_example(
        &self,
        violations: Vec<(Option<NodeId>, Violation)>,
    ) -> SymbolicVerdict {
        let least = violations
            .into_iter()
            .map(|(parent, v)| self.render_ce(parent, v))
            .min_by(|a, b| {
                (&a.steps, a.kind.rank(), &a.zone).cmp(&(&b.steps, b.kind.rank(), &b.zone))
            })
            .expect("at least one violation");
        SymbolicVerdict::Unsafe(Box::new(least))
    }

    /// Renders one action code to its human-readable string (the exact
    /// PR 2 wording — only the moment of formatting moved, from the hot
    /// path to counter-example reporting).
    fn render_act(&self, a: Act) -> String {
        match a {
            Act::Initial => "initial state".to_string(),
            Act::Edge { aut, eid } => {
                let a = &self.net.automata[aut as usize];
                let edge = &a.edges[eid as usize];
                format!(
                    "{}: {} -> {}{}",
                    a.name,
                    a.locations[edge.src].name,
                    a.locations[edge.dst].name,
                    match &edge.sync {
                        Sync::External(r) => format!(" (on {})", r.as_str()),
                        Sync::Reliable(r) | Sync::Lossy(r) => format!(" (recv {})", r.as_str()),
                        Sync::None => String::new(),
                    }
                )
            }
            Act::Deliver { root, aut } => format!(
                "deliver {} to {}",
                self.roots[root as usize].as_str(),
                self.net.automata[aut as usize].name
            ),
            Act::Lost { root, aut } => format!(
                "{} lost/ignored by {}",
                self.roots[root as usize].as_str(),
                self.net.automata[aut as usize].name
            ),
            Act::GuardOff { root, aut } => format!(
                "{} ignored by {} (guard off)",
                self.roots[root as usize].as_str(),
                self.net.automata[aut as usize].name
            ),
            Act::MaybeIgnored { root, aut } => format!(
                "{} possibly ignored by {}",
                self.roots[root as usize].as_str(),
                self.net.automata[aut as usize].name
            ),
            Act::InvariantExpired { aut } => {
                format!("{} invariant expired", self.net.automata[aut as usize].name)
            }
            Act::DwellExceeded { entity } => format!(
                "dwell risky beyond the Rule-1 bound ({} ticks)",
                self.spec.rule1_ticks[entity as usize]
            ),
        }
    }

    /// Renders one step (a settle's action codes) as PR 2's `"; "`-joined
    /// line.
    fn render_step(&self, acts: &[Act]) -> String {
        acts.iter()
            .map(|&a| self.render_act(a))
            .collect::<Vec<_>>()
            .join("; ")
    }

    fn render_ce(&self, parent: Option<NodeId>, v: Violation) -> SymbolicCounterExample {
        let mut steps = Vec::new();
        let mut cursor = parent;
        while let Some(id) = cursor {
            let shard = self.shards[id.shard as usize].lock();
            let node = &shard.nodes[id.idx as usize];
            steps.push(self.render_step(&node.acts));
            cursor = node.parent;
        }
        steps.reverse();
        steps.push(self.render_step(&v.acts));
        let mut names = self.net.clocks.clone();
        names.extend(self.observer_clock_names.iter().cloned());
        SymbolicCounterExample {
            kind: v.kind,
            steps,
            zone: v.zone.render(&names),
        }
    }
}
