//! Zone-graph reachability of a [`TaNetwork`] composed with a safety
//! [`Monitor`] — parallel, sharded, and deterministic.
//!
//! The engine explores the product of a [`TaNetwork`] and a monitor
//! symbolically: a state is a location vector plus the monitor's
//! observer state plus a zone (DBM) over every clock (network clocks
//! and observer clocks), and the passed/waiting-list algorithm with
//! zone inclusion and extrapolation (maximal-constant `Extra_M` or the
//! coarser LU-bound `Extra_LU`, selectable via
//! [`Limits::extrapolation`]) guarantees termination. Every
//! drop/deliver assignment of every wireless emission and every
//! real-valued timing is covered — the dense-time completion of
//! `pte-verify`'s bounded `2^k` exhaustive exploration.
//!
//! ## Parallel sharding
//!
//! The passed list is sharded by a hash of the discrete part of the
//! state (location vector + observer state) into [`SHARD_COUNT`]
//! shards, each behind its own `parking_lot::Mutex`. Because a zone can
//! only subsume another zone with the *same* discrete part, subsumption
//! is a shard-local operation and shards never need to coordinate.
//!
//! Exploration proceeds in BFS layers with two phases per round, run by
//! a pool of `crossbeam` scoped workers spawned once per check
//! ([`Limits::max_workers`]) and coordinated with epoch counters and
//! spin/yield barriers (thread spawning costs ≈1 ms on some kernels —
//! far more than a round):
//!
//! 1. **Expand** — workers claim frontier states from a shared cursor
//!    (an atomic index over the round's frontier vector), fire every
//!    enabled edge, resolve emission cascades, apply delay closure +
//!    extrapolation, and run all monitor checks. Cooked successor
//!    candidates are pushed into the pending list of their target shard;
//!    violations are collected worker-locally.
//! 2. **Admit** — workers claim whole shards from a second cursor. Each
//!    shard sorts its pending candidates into a *content-defined* order
//!    (discrete key, then zone matrix, then parent id, then action
//!    text), discards those subsumed by an already-passed zone, and
//!    appends the survivors to the shard's node arena and the next
//!    frontier.
//!
//! ## Determinism
//!
//! The verdict (`Safe` / `Unsafe` / `OutOfBudget`) and the reported
//! counter-example are identical for every worker count:
//!
//! * the frontier of round `r + 1` is a pure function of the frontier of
//!   round `r` — phase 1 only reads shared state, and phase 2 admits
//!   each shard's candidates in the content-defined order above, so
//!   races can only reorder *work*, never results;
//! * violations never abort the round; they are collected, and once the
//!   round completes the engine reports the **lexicographically least
//!   violating trace** (by step list, then violation kind, then zone),
//!   which is a content-defined choice independent of which worker found
//!   it first. Layered BFS additionally guarantees the reported trace
//!   belongs to the *earliest* round containing any violation;
//! * budget checks run at round boundaries only, so `OutOfBudget`
//!   verdicts trip at the same round for every worker count (the
//!   optional wall-clock limit is the one deliberately nondeterministic
//!   exception).
//!
//! The property being checked is **not** part of this engine: it is a
//! [`Monitor`] (see [`crate::monitor`]) composed with the network —
//! observer clocks live in the DBM dimensions above the network's
//! clocks, observer locations are part of the passed-list key, and the
//! monitor's constants are folded into the extrapolation bound sets
//! (which is what keeps the pre-extrapolation subsumption probe below
//! sound for *any* monitor, not just the PTE observer the engine once
//! hard-coded). [`check`] is the PTE entry point (it composes a
//! [`PteMonitor`]); [`check_monitored`] takes any monitor.
//!
//! ## Hot-path engineering
//!
//! Three layers keep the per-state cost low (PR 3):
//!
//! * **Incremental canonicalization** — guards, invariants and urgent
//!   splits tighten zones through [`Atom::apply_and_close`]
//!   ([`Dbm::close1`], O(n²)) instead of deferring to a full O(n³)
//!   Floyd–Warshall per successor; the only remaining full closures run
//!   at lowering time and inside extrapolation.
//! * **Interned, allocation-free successor plumbing** — action labels
//!   are fixed-size `Act` codes (rendered to the PR 2 strings only
//!   when a counter-example is reported), event roots are interned into
//!   `u16` ids with per-`(automaton, location)` dispatch tables
//!   replacing edge scans, discrete keys are interned per shard into
//!   `u32` ids ([`crate::intern::Interner`]), and successor zones are
//!   drawn from a per-worker [`DbmPool`] free-list.
//! * **Compressed passed list** — settled zones are stored in minimal
//!   constraint form ([`Dbm::reduce`], typically O(n) constraints
//!   instead of the full `(n+1)²` matrix) with subsumption checked
//!   directly against the compact form
//!   ([`crate::dbm::MinimalDbm::includes`]); the measured footprint is
//!   reported in [`SearchStats::peak_passed_bytes`]. Candidates are
//!   additionally probed against the passed list *before*
//!   extrapolation: a subsumed candidate's concrete behaviours are all
//!   covered by an explored (and violation-free) state, so it is
//!   dropped without paying for extrapolation or admission.
//!
//! Determinism is unchanged: canonical forms are unique and every
//! admission/drop decision is content-defined, so verdicts, stored
//! zones, and counter-examples are bit-for-bit identical at every
//! worker count. The *explored set* can differ slightly from the PR 2
//! engine, though — the pre-extrapolation probe drops candidates whose
//! (non-monotone) `Extra⁺_LU` widening the old engine would have
//! admitted — so settled-state counts are comparable only within a
//! version, never across the optimization boundary.

use crate::analysis::{analyze, ActivityMasks};
use crate::artifact::{
    atom_ticks, masks_digest, net_structure_digest, ArtifactSink, PassedArtifact, PassedEntry,
};
use crate::dbm::{Dbm, DbmPool, MinimalDbm};
use crate::intern::Interner;
use crate::monitor::{
    Monitor, MonitorState, MonitorViolation, ObserverSpec, PteMonitor, TransitionCtx,
};
use crate::symmetry::Symmetry;
use crate::ta::{Atom, LuBounds, Sync, TaNetwork};
use parking_lot::{Mutex, RwLock};
use pte_hybrid::Root;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Cooperative cancellation handle: a cheaply clonable flag the engine
/// polls at every BFS round boundary (and the exhaustive explorer polls
/// between runs). Firing it turns the search into an
/// [`SymbolicVerdict::OutOfBudget`] with [`TrippedLimit::Cancelled`]
/// within one layer — a cancelled search never reports `Safe` or
/// `Unsafe`, so cancellation can only lose work, never soundness.
///
/// Clones share the flag: cancel any clone and every holder observes it.
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-fired token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Fires the token. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// `true` once [`CancelToken::cancel`] has been called on any clone.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

/// One progress snapshot, emitted through [`Limits::progress`] at every
/// BFS round boundary (and by the exhaustive explorer between batches
/// of runs). Observational only: the callback cannot influence the
/// verdict except by firing a [`CancelToken`].
#[derive(Clone, Copy, Debug)]
pub struct Progress {
    /// BFS round (zone engine) or reporting tick (exhaustive explorer).
    pub round: usize,
    /// Settled symbolic states so far (zone engine) or completed runs
    /// (exhaustive explorer).
    pub settled: usize,
    /// Frontier states awaiting expansion (zone engine) or runs still
    /// to execute (exhaustive explorer).
    pub frontier: usize,
    /// Wall-clock time since the search started.
    pub elapsed: Duration,
}

/// Shared, thread-safe progress callback (the engine invokes it from
/// the coordinator thread only; the exhaustive explorer from one
/// designated worker).
pub type ProgressFn = Arc<dyn Fn(&Progress) + Send + std::marker::Sync>;

/// A symbolic counter-example: an interleaving of discrete actions
/// (with explicit drop/deliver fates) whose zone contains at least one
/// violating real-valued timing.
#[derive(Clone, Debug)]
pub struct SymbolicCounterExample {
    /// Rendered description of the violated property (monitor-defined).
    pub violation: String,
    /// Content-defined violation rank ([`MonitorViolation::rank`]) used
    /// for deterministic tie-breaking.
    pub rank: (u8, u32),
    /// Discrete actions from the initial state to the violation, one
    /// line per settled step.
    pub steps: Vec<String>,
    /// Rendered zone constraints at the violation point (ticks).
    pub zone: String,
}

impl fmt::Display for SymbolicCounterExample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "symbolic safety violation: {}", self.violation)?;
        for (i, s) in self.steps.iter().enumerate() {
            writeln!(f, "  {:>3}. {s}", i + 1)?;
        }
        write!(f, "  zone: {}", self.zone)
    }
}

/// Search statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct SearchStats {
    /// Settled symbolic states stored.
    pub states: usize,
    /// Discrete transitions fired (including cascade branches).
    pub transitions: usize,
    /// Successor states subsumed by an already-passed zone.
    pub subsumed: usize,
    /// Unexplored frontier states at the moment the search ended
    /// (always 0 for a completed search).
    pub frontier: usize,
    /// Peak heap bytes of passed-list zone storage in the minimal
    /// constraint form actually used ([`Dbm::reduce`]). The passed list
    /// only grows, so the value at the end of the search *is* the peak.
    pub peak_passed_bytes: usize,
    /// Heap bytes the same passed zones would occupy as full
    /// `(n+1)²` bound matrices — the PR 2 storage format. The ratio
    /// `peak_passed_bytes_full / peak_passed_bytes` is the measured
    /// compression factor (asserted ≥ 2× in `bench/benches/zones.rs`).
    pub peak_passed_bytes_full: usize,
    /// DBM clock dimensions the search actually explored (network plus
    /// observer clocks, *after* the static clock reduction when
    /// [`Limits::reduce_clocks`] is on).
    pub dbm_clocks: usize,
    /// DBM clock dimensions the unreduced network would have used.
    /// Equal to [`SearchStats::dbm_clocks`] when reduction is off or
    /// found nothing to drop.
    pub dbm_clocks_unreduced: usize,
    /// Successor states the symmetry quotient folded onto a *different*
    /// orbit representative before interning ([`Limits::symmetry`]).
    /// `0` when the quotient is inactive (asymmetric network,
    /// non-invariant monitor, or the knob off); when it is active,
    /// [`SearchStats::states`] counts orbit representatives, one per
    /// explored orbit.
    pub orbits: usize,
    /// Successful steals by the work-stealing scheduler
    /// ([`Scheduler::WorkStealing`]); `0` under the round-barrier
    /// scheduler.
    pub steals: usize,
    /// Passed-list entries admitted from a prior run's artifact
    /// ([`Limits::warm_start`]). Non-zero only when the warm-start
    /// gates all passed and the search was answered by proof transfer;
    /// `0` for every cold search.
    pub warm_seeded: usize,
}

/// Which exploration limit ended an inconclusive search.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TrippedLimit {
    /// [`Limits::max_states`] was exceeded (carries the limit value).
    MaxStates(usize),
    /// [`Limits::max_wall`] was exceeded (carries the budget).
    WallClock(Duration),
    /// [`Limits::cancel`] was fired mid-search (cooperative
    /// cancellation, e.g. by a portfolio race that already has a
    /// conclusive verdict from another backend).
    Cancelled,
}

impl fmt::Display for TrippedLimit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrippedLimit::MaxStates(n) => write!(f, "state budget (max_states = {n})"),
            TrippedLimit::WallClock(d) => {
                write!(f, "wall-clock budget ({:.3} s)", d.as_secs_f64())
            }
            TrippedLimit::Cancelled => write!(f, "cancellation token"),
        }
    }
}

/// Outcome of a symbolic reachability check.
#[derive(Clone, Debug)]
pub enum SymbolicVerdict {
    /// No PTE violation is reachable for any loss fate or timing.
    Safe(SearchStats),
    /// A violation is reachable; the witness explains how.
    Unsafe(Box<SymbolicCounterExample>),
    /// An exploration limit was exhausted before the search finished.
    OutOfBudget {
        /// Search statistics at the point of truncation, including the
        /// size of the unexplored frontier.
        stats: SearchStats,
        /// The limit that ended the search.
        tripped: TrippedLimit,
    },
}

impl SymbolicVerdict {
    /// `true` if the verdict proves safety.
    pub fn is_safe(&self) -> bool {
        matches!(self, SymbolicVerdict::Safe(_))
    }

    /// `true` if a violation was found.
    pub fn is_unsafe(&self) -> bool {
        matches!(self, SymbolicVerdict::Unsafe(_))
    }

    /// Search statistics, when the verdict carries them (`Safe` and
    /// `OutOfBudget`; a falsification stops at its witness).
    pub fn stats(&self) -> Option<&SearchStats> {
        match self {
            SymbolicVerdict::Safe(s) => Some(s),
            SymbolicVerdict::OutOfBudget { stats, .. } => Some(stats),
            SymbolicVerdict::Unsafe(_) => None,
        }
    }
}

impl fmt::Display for SymbolicVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SymbolicVerdict::Safe(s) => write!(
                f,
                "violation-unreachable: safe over all timings and loss fates \
                 ({} states, {} transitions)",
                s.states, s.transitions
            ),
            SymbolicVerdict::Unsafe(ce) => write!(f, "{ce}"),
            SymbolicVerdict::OutOfBudget { stats, tripped } => write!(
                f,
                "inconclusive: {tripped} exhausted with {} settled states \
                 and {} frontier states unexplored",
                stats.states, stats.frontier
            ),
        }
    }
}

/// Extrapolation operator applied to every settled zone.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Extrapolation {
    /// Classical maximal-constant `Extra_M` ([`Dbm::extrapolate`]).
    ExtraM,
    /// LU-bound `Extra⁺_LU` ([`Dbm::extrapolate_lu_plus`]) — strictly
    /// coarser than `Extra_M`, so the search settles no more (usually
    /// strictly fewer) states. The default.
    #[default]
    ExtraLu,
}

/// Frontier scheduling strategy of the parallel exploration.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Scheduler {
    /// Layered BFS with two condvar-coordinated phases per round — the
    /// default. Verdict, counter-example, **and every statistic**
    /// (settled states, passed-list bytes) are bit-identical at every
    /// worker count, which is what the daemon's report cache and the
    /// campaign's byte-identical shells pin down.
    #[default]
    RoundBarrier,
    /// Decentralized work-stealing frontier: per-worker Chase–Lev-style
    /// deques (owner pops newest, thieves steal oldest), termination
    /// via a shared in-flight counter — no per-round barrier, so deep
    /// or irregular state spaces keep every core busy. Determinism is
    /// **per-result, not per-run**: the verdict classification is
    /// deterministic, and any `Unsafe` is post-hoc minimized by a
    /// deterministic re-search, so the reported counter-example text
    /// is bit-identical across 1/2/4/8 workers and to the
    /// round-barrier scheduler — but Safe-side statistics (states,
    /// subsumption counts, bytes) are scheduling-dependent, budget
    /// limits trip at slightly different points run-to-run, and
    /// [`Progress::round`] counts reporting ticks rather than BFS
    /// layers.
    WorkStealing,
}

/// Exploration limits and engine knobs.
#[derive(Clone)]
pub struct Limits {
    /// Maximum number of settled symbolic states.
    pub max_states: usize,
    /// Worker threads for the parallel exploration; `1` (the library
    /// default) explores on the calling thread — fully reproducible
    /// single-core cost — while `0` means one worker per available CPU
    /// (what `pte_verify::api` resolves `Auto`/`Portfolio` requests to,
    /// so the front door is fast out of the box). The verdict is
    /// identical for every value.
    pub max_workers: usize,
    /// Optional wall-clock budget, checked at round boundaries. `None`
    /// (the default) never trips, keeping verdicts fully deterministic.
    pub max_wall: Option<Duration>,
    /// Extrapolation operator (see [`Extrapolation`]).
    pub extrapolation: Extrapolation,
    /// Optional cooperative cancellation token, polled at every BFS
    /// round boundary: once fired, the search returns
    /// [`SymbolicVerdict::OutOfBudget`] with [`TrippedLimit::Cancelled`]
    /// within one layer.
    pub cancel: Option<CancelToken>,
    /// Optional progress callback, invoked at every BFS round boundary
    /// with settled/frontier counts and elapsed wall time.
    pub progress: Option<ProgressFn>,
    /// Run the [static model analysis](crate::analysis) before the
    /// search ([`check`] only): drop/merge provably redundant network
    /// clocks (shrinking every DBM) and free per-location dead clocks
    /// during exploration, exactly as the monitor already does for its
    /// observer clocks. On by default; the verdict and the
    /// counter-example text are identical either way — a violation
    /// found in the reduced space is re-derived on the unreduced
    /// network, so witnesses never mention a remapped clock.
    pub reduce_clocks: bool,
    /// Quotient the passed list by device-permutation symmetry
    /// ([`crate::symmetry`]): canonicalize every discrete key (and the
    /// matching clock permutation of the zone) before interning, so
    /// one representative per orbit is stored. On by default and
    /// **self-gating**: it only engages when the network is
    /// structurally symmetric, the monitor reports itself invariant
    /// under each group ([`Monitor::permutation_invariant`]), the
    /// activity masks are orbit-invariant, and the extrapolation
    /// bounds are uniform across each group — asymmetric networks
    /// (every `LeaseConfig::chain(n)`) auto-disable it. Verdicts are
    /// unchanged; a violation found in the quotient is re-derived by a
    /// deterministic unquotiented search so the counter-example text
    /// is bit-identical to a `symmetry: false` run.
    pub symmetry: bool,
    /// Frontier scheduling strategy (see [`Scheduler`]). The default
    /// round barrier keeps every statistic bit-stable across worker
    /// counts; work-stealing trades that for throughput on deep state
    /// spaces while keeping verdicts and counter-example text
    /// deterministic.
    pub scheduler: Scheduler,
    /// Optional prior-run artifact to warm-start from. The engine
    /// re-validates it against the new model (see
    /// [`crate::artifact`]'s module docs for the gates: identical
    /// lowered network including every timing constant, weaker-or-equal
    /// monitor, same clock count / extrapolation / activity masks, and
    /// every entry re-checked against the new monitor); on any failure
    /// it silently falls back to a cold search, so a warm start can
    /// never flip a verdict.
    pub warm_start: Option<Arc<PassedArtifact>>,
    /// Optional sink the engine fills with this search's own passed
    /// list when the verdict is `Safe` and the monitor supports
    /// artifacts ([`crate::Monitor::warm_profile`]). A warm-started
    /// search passes its *input* artifact through unchanged, so chained
    /// warm starts always compare against the original proof.
    pub capture: Option<ArtifactSink>,
}

impl Default for Limits {
    fn default() -> Limits {
        Limits {
            max_states: 200_000,
            max_workers: 1,
            max_wall: None,
            extrapolation: Extrapolation::default(),
            cancel: None,
            progress: None,
            reduce_clocks: true,
            symmetry: true,
            scheduler: Scheduler::default(),
            warm_start: None,
            capture: None,
        }
    }
}

impl fmt::Debug for Limits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Limits")
            .field("max_states", &self.max_states)
            .field("max_workers", &self.max_workers)
            .field("max_wall", &self.max_wall)
            .field("extrapolation", &self.extrapolation)
            .field("cancel", &self.cancel)
            .field("progress", &self.progress.as_ref().map(|_| "<callback>"))
            .field("reduce_clocks", &self.reduce_clocks)
            .field("symmetry", &self.symmetry)
            .field("scheduler", &self.scheduler)
            .field(
                "warm_start",
                &self
                    .warm_start
                    .as_ref()
                    .map(|a| format!("<{} entries>", a.entries.len())),
            )
            .field("capture", &self.capture.as_ref().map(|_| "<sink>"))
            .finish()
    }
}

impl Limits {
    /// Worker count after resolving `0` to the available parallelism.
    pub fn effective_workers(&self) -> usize {
        if self.max_workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.max_workers
        }
    }
}

/// Discrete part of a product state: the network's location vector plus
/// the monitor's observer state.
type Key = (Vec<u32>, MonitorState);

/// Number of passed-list shards. A constant (rather than a function of
/// the worker count) so the shard assignment — and hence node numbering
/// — is identical across worker counts.
pub const SHARD_COUNT: usize = 64;

/// FNV-1a over the discrete part of a state: deterministic across runs,
/// platforms, and (unlike `std`'s `RandomState`) processes.
fn shard_of(key: &Key) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &l in &key.0 {
        h = (h ^ u64::from(l)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    for &p in &key.1 {
        h = (h ^ u64::from(p)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % SHARD_COUNT as u64) as usize
}

/// Global node address: shard index + index into the shard's arena.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
struct NodeId {
    shard: u32,
    idx: u32,
}

/// One step of a discrete action, as a fixed-size code. The hot path
/// moves and compares these 8-byte values; the human-readable strings
/// of PR 2 are produced only when a counter-example is rendered
/// (`Engine::render_act`). Automata are referenced by index, event
/// roots by interned id (`Engine::roots`). The derived `Ord` gives the
/// content-defined tie-break order previously provided by action text.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
enum Act {
    /// The seed state.
    Initial,
    /// Edge `eid` of automaton `aut` fired.
    Edge { aut: u16, eid: u16 },
    /// Event `root` delivered to `aut`.
    Deliver { root: u16, aut: u16 },
    /// Event `root` dropped by the wireless hop / ignored by `aut`.
    Lost { root: u16, aut: u16 },
    /// Event `root` ignored by `aut` on the sub-zone where its single
    /// guarded edge is disabled.
    GuardOff { root: u16, aut: u16 },
    /// Event `root` possibly ignored by `aut` (over-approximated fate
    /// when several guarded reliable edges compete).
    MaybeIgnored { root: u16, aut: u16 },
    /// `aut`'s location invariant expired, forcing an urgent escape.
    InvariantExpired { aut: u16 },
}

/// A settled node in a shard's arena. The discrete key lives in the
/// shard's interner; nodes carry the zone in **minimal constraint
/// form** (subsumption checks run directly against it) plus the
/// fixed-size data trace reconstruction needs.
struct Node {
    zone: MinimalDbm,
    parent: Option<NodeId>,
    acts: Box<[Act]>,
}

/// One shard of the passed list: discrete keys interned to dense ids,
/// per-key subsumption buckets over a node arena, the staging area
/// phase 1 fills and phase 2 drains, and the shard's share of the
/// passed-list memory accounting.
#[derive(Default)]
struct Shard {
    /// Key → dense id; each key is stored exactly once.
    keys: Interner<Key>,
    /// `buckets[key_id]` = node indices settled under that key.
    buckets: Vec<Vec<u32>>,
    nodes: Vec<Node>,
    pending: Vec<Candidate>,
    /// Heap bytes of stored zones in minimal constraint form.
    min_bytes: usize,
    /// Heap bytes the same zones would occupy as full matrices.
    full_bytes: usize,
}

/// A fully cooked successor: delay-closed, activity-reduced,
/// extrapolated, and observer-checked — everything except subsumption,
/// which is phase 2's shard-local job. Carries the key *content* (not
/// an id) because admission order — and hence interning order — must be
/// content-defined.
struct Candidate {
    key: Key,
    zone: Dbm,
    parent: Option<NodeId>,
    acts: Vec<Act>,
}

impl Candidate {
    /// Content-defined admission order: discrete key, zone matrix,
    /// parent id, action codes. Sorting pending candidates by this key
    /// makes phase 2 independent of phase-1 arrival order.
    fn order_key(&self) -> (&Key, &Dbm, Option<NodeId>, &[Act]) {
        (&self.key, &self.zone, self.parent, &self.acts)
    }
}

/// A frontier entry: a settled node plus the clones phase 1 needs to
/// expand it without touching its home shard.
struct FrontierEntry {
    id: NodeId,
    locs: Vec<u32>,
    mon: MonitorState,
    zone: Dbm,
}

/// In-flight resolution work: a state mid-cascade (pending emissions not
/// yet assigned a fate) with the actions taken so far this step.
struct Work {
    locs: Vec<u32>,
    mon: MonitorState,
    zone: Dbm,
    /// In-flight emissions: `(sender automaton, interned root id)` —
    /// the sender is excluded from delivery (the executor never
    /// self-delivers).
    queue: VecDeque<(u32, u16)>,
    acts: Vec<Act>,
}

impl Work {
    /// Clones this work item, drawing the zone copy from `pool`.
    fn clone_via(&self, pool: &mut DbmPool) -> Work {
        Work {
            locs: self.locs.clone(),
            mon: self.mon.clone(),
            zone: pool.clone_dbm(&self.zone),
            queue: self.queue.clone(),
            acts: self.acts.clone(),
        }
    }
}

/// A monitor violation with the engine-side context a counter-example
/// needs: the action trace of the violating step and the violating
/// (sub-)zone.
struct Violation {
    mv: MonitorViolation,
    acts: Vec<Act>,
    zone: Dbm,
}

/// Worker-local tallies merged into [`SearchStats`] at round barriers.
#[derive(Default)]
struct LocalStats {
    transitions: usize,
    /// Successors dropped by the pre-extrapolation subsumption probe.
    subsumed: usize,
    /// Successors the symmetry quotient folded onto a different orbit
    /// representative.
    folded: usize,
}

/// Maximum zero-time cascade depth (urgent chains + deliveries) before
/// the engine settles a state as-is; prevents pathological recursion on
/// malformed inputs.
const CASCADE_DEPTH: usize = 128;

/// One receiving edge in a location's dispatch table.
#[derive(Clone, Copy)]
struct RecvEdge {
    /// Interned root id this edge listens for.
    root: u16,
    /// Edge index within the owning automaton.
    eid: u32,
    /// `true` for lossy wireless receives.
    lossy: bool,
}

struct Engine<'s> {
    /// The lowered network, **borrowed** — the monitor's observer
    /// clocks live in the DBM dimensions above
    /// [`TaNetwork::clock_count`], so the network itself is never
    /// cloned or mutated.
    net: &'s TaNetwork,
    /// The composed safety monitor (see [`crate::monitor`]).
    monitor: &'s dyn Monitor,
    /// Total clock count (network + observer clocks).
    nclocks: usize,
    /// `Extra_M` ceiling vector (network + monitor constants).
    kmax: Vec<i64>,
    /// `Extra_LU` bound vectors (network + monitor constants).
    lu: LuBounds,
    extrapolation: Extrapolation,
    /// Interned event roots (`Act`/queue ids index into this).
    roots: Vec<Root>,
    /// `spont[ai][loc]` — spontaneous/external edges leaving `loc`.
    spont: Vec<Vec<Vec<u32>>>,
    /// `urgent[ai][loc]` — urgent escape edges leaving `loc`.
    urgent: Vec<Vec<Vec<u32>>>,
    /// `recv[ai][loc]` — receiving edges leaving `loc`, by root id.
    recv: Vec<Vec<Vec<RecvEdge>>>,
    /// `emit_ids[ai][eid]` — interned roots the edge emits.
    emit_ids: Vec<Vec<Vec<u16>>>,
    /// Per-location dead-clock masks over the *network's* clock space
    /// (already in `net`'s indices when `net` is a reduced network).
    /// `None` when reduction is off or the masks are trivial.
    masks: Option<&'s ActivityMasks>,
    /// Device-permutation symmetry groups to quotient by, already
    /// filtered down to those the monitor, the masks, and the
    /// extrapolation bounds are invariant under. `None` disables
    /// canonicalization entirely.
    symmetry: Option<Symmetry>,
    shards: Vec<Mutex<Shard>>,
}

/// Runs the symbolic PTE check of `spec` over `net` — the PTE-specific
/// entry point, composing a [`PteMonitor`] with the network and
/// delegating to [`check_monitored`].
///
/// Borrows both inputs — the network is *not* cloned (PR 2 cloned the
/// full automata; the observer clocks now live beside it instead of
/// inside it). Returns an error if a spec entity names no automaton in
/// the network.
pub fn check(
    net: &TaNetwork,
    spec: &ObserverSpec,
    limits: &Limits,
) -> Result<SymbolicVerdict, String> {
    if !limits.reduce_clocks {
        let monitor = PteMonitor::new(net, spec)?;
        return check_monitored(net, &monitor, limits);
    }

    // Static analysis first: drop/merge provably redundant network
    // clocks (smaller DBMs on every operation) and collect per-location
    // dead-clock masks for the search to free, the same collapse the
    // monitor already applies to its own observer clocks.
    let analysis = analyze(net);
    let reduced;
    let rnet: &TaNetwork = if analysis.reduction.is_identity() {
        net
    } else {
        reduced = analysis.reduction.apply(net);
        &reduced
    };
    let monitor = PteMonitor::new(rnet, spec)?;
    let masks = (analysis.activity.clocks != 0 && !analysis.activity.is_trivial())
        .then_some(&analysis.activity);

    // `check` re-derives any violation itself (below), so the inner
    // call skips its own deterministic re-search — one rerun, not two.
    match check_monitored_with(rnet, &monitor, limits, masks, false)? {
        // Rerun-on-violation: the reduced search is the fast path for
        // proofs; a falsification is re-derived on the unreduced
        // network — with the quotient and the work-stealing scheduler
        // off — so the counter-example text (clock names, zone
        // constraints, step list) is byte-identical to a run with
        // every acceleration off: the engine's determinism guarantee
        // extended across all three knobs. Freeing dead clocks,
        // folding orbits, and reordering exploration never remove a
        // reachable violation, so the rerun finds a violation too; if
        // it instead trips a budget first, that inconclusive verdict
        // is returned as-is — conservative, never wrong.
        SymbolicVerdict::Unsafe(_) => {
            let mut legacy = limits.clone();
            legacy.reduce_clocks = false;
            legacy.symmetry = false;
            legacy.scheduler = Scheduler::RoundBarrier;
            // The rerun exists only to render the counter-example on
            // the unreduced network: it must neither consume the warm
            // artifact (captured on the *reduced* network) nor emit one.
            legacy.warm_start = None;
            legacy.capture = None;
            check(net, spec, &legacy)
        }
        SymbolicVerdict::Safe(mut stats) => {
            stats.dbm_clocks_unreduced = net.clock_count() + monitor.clock_names().len();
            Ok(SymbolicVerdict::Safe(stats))
        }
        SymbolicVerdict::OutOfBudget { mut stats, tripped } => {
            stats.dbm_clocks_unreduced = net.clock_count() + monitor.clock_names().len();
            Ok(SymbolicVerdict::OutOfBudget { stats, tripped })
        }
    }
}

/// Runs the symbolic safety check of any [`Monitor`] composed with
/// `net`.
///
/// The monitor's observer clocks occupy the DBM dimensions above the
/// network's own clocks, its observer state becomes part of every
/// passed-list key, and its constants are folded into the
/// extrapolation bound sets — so both extrapolation and the
/// pre-extrapolation subsumption probe stay sound for whatever
/// property the monitor encodes. Returns an error when the composed
/// system exceeds the engine's size limits.
pub fn check_monitored(
    net: &TaNetwork,
    monitor: &dyn Monitor,
    limits: &Limits,
) -> Result<SymbolicVerdict, String> {
    check_monitored_with(net, monitor, limits, None, true)
}

/// [`check_monitored`] plus optional per-location dead-clock masks over
/// `net`'s clock space (what [`check`] computes from the static
/// analysis — callers handing masks for a *different* network would
/// free live clocks and lose soundness, hence not public).
///
/// `det_rerun` controls the determinism-by-post-minimization contract:
/// when an *accelerated* run (symmetry quotient active, or the
/// work-stealing scheduler) finds a violation, the check is re-run
/// with both accelerations off so the reported counter-example is the
/// deterministic lexicographically-least one — bit-identical at every
/// worker count and with `symmetry: false`. [`check`] passes `false`
/// because it re-derives violations itself (on the unreduced network).
fn check_monitored_with(
    net: &TaNetwork,
    monitor: &dyn Monitor,
    limits: &Limits,
    masks: Option<&ActivityMasks>,
    det_rerun: bool,
) -> Result<SymbolicVerdict, String> {
    let base = net.clock_count();
    let nclocks = base + monitor.clock_names().len();

    // Maximal constants: network constants plus whatever the monitor's
    // guards compare its clocks against.
    let mut kmax = net.max_constants();
    kmax.resize(nclocks + 1, 0);
    let mut lu = net.lu_bounds();
    lu.lower.resize(nclocks + 1, 0);
    lu.upper.resize(nclocks + 1, 0);
    monitor.fold_bounds(&mut kmax, &mut lu);

    // `Act` codes and interned root ids index automata/edges/roots with
    // u16, and the minimal constraint form ([`Dbm::reduce`]) indexes
    // clocks with u8; reject (rather than silently truncate) networks
    // beyond those bounds, far past anything the lowering produces.
    if net.automata.len() > u16::MAX as usize
        || net
            .automata
            .iter()
            .any(|a| a.edges.len() > u16::MAX as usize)
    {
        return Err("network too large: more than 65535 automata or edges per automaton".into());
    }
    if nclocks + 1 > u8::MAX as usize {
        return Err(format!(
            "network too large: {nclocks} clocks (incl. observer clocks) exceed the \
             254-clock limit of the compressed passed list"
        ));
    }

    // Warm start: when a prior run's artifact survives every validity
    // gate against *this* model, its passed list is a complete proof
    // and the search is answered by transfer — no exploration at all.
    // Any gate failure falls through to the cold search below.
    if let Some(art) = &limits.warm_start {
        if let Some(stats) = try_warm_start(art, net, monitor, masks, limits, nclocks) {
            if let Some(sink) = &limits.capture {
                // Pass the original artifact through unchanged:
                // chained warm starts then always admit against the
                // original proof (the weakening order is transitive).
                *sink.lock() = Some((**art).clone());
            }
            return Ok(SymbolicVerdict::Safe(stats));
        }
    }

    // Intern every event root in deterministic first-seen order over
    // the network. Roots accumulate *across* automata, so their count
    // is bounded separately from the per-automaton edge guard above —
    // and gracefully, like the other size limits.
    let mut roots: Vec<Root> = Vec::new();
    let mut root_ids: HashMap<Root, u16> = HashMap::new();
    for aut in &net.automata {
        for e in &aut.edges {
            for r in e.sync.root().into_iter().chain(e.emits.iter()) {
                if root_ids.contains_key(r) {
                    continue;
                }
                if roots.len() > u16::MAX as usize {
                    return Err(
                        "network too large: more than 65536 distinct event roots".to_string()
                    );
                }
                root_ids.insert(r.clone(), roots.len() as u16);
                roots.push(r.clone());
            }
        }
    }

    // Per-(automaton, location) dispatch tables replacing per-expansion
    // edge scans.
    let mut spont = Vec::with_capacity(net.automata.len());
    let mut urgent = Vec::with_capacity(net.automata.len());
    let mut recv = Vec::with_capacity(net.automata.len());
    let mut emit_ids = Vec::with_capacity(net.automata.len());
    for aut in &net.automata {
        let nloc = aut.locations.len();
        let mut sp = vec![Vec::new(); nloc];
        let mut ur = vec![Vec::new(); nloc];
        let mut rc: Vec<Vec<RecvEdge>> = vec![Vec::new(); nloc];
        let mut em = Vec::with_capacity(aut.edges.len());
        for (eid, e) in aut.edges.iter().enumerate() {
            match &e.sync {
                Sync::None | Sync::External(_) => sp[e.src].push(eid as u32),
                Sync::Reliable(r) => rc[e.src].push(RecvEdge {
                    root: root_ids[r],
                    eid: eid as u32,
                    lossy: false,
                }),
                Sync::Lossy(r) => rc[e.src].push(RecvEdge {
                    root: root_ids[r],
                    eid: eid as u32,
                    lossy: true,
                }),
            }
            if e.urgent {
                ur[e.src].push(eid as u32);
            }
            em.push(e.emits.iter().map(|r| root_ids[r]).collect::<Vec<u16>>());
        }
        spont.push(sp);
        urgent.push(ur);
        recv.push(rc);
        emit_ids.push(em);
    }

    // Symmetry quotient, self-gating: keep only groups the monitor,
    // the activity masks, and the (monitor-extended) extrapolation
    // bounds are invariant under. Asymmetric networks — every lease
    // chain — yield no groups and the quotient costs nothing.
    let symmetry = if limits.symmetry {
        let mut sym = net.symmetry();
        sym.groups.retain(|g| {
            monitor.permutation_invariant(&g.members)
                && masks.is_none_or(|m| g.masks_invariant(m))
                && g.bounds_uniform(&kmax, &lu.lower, &lu.upper)
        });
        (!sym.is_trivial()).then_some(sym)
    } else {
        None
    };
    let accelerated = symmetry.is_some() || limits.scheduler == Scheduler::WorkStealing;

    let engine = Engine {
        net,
        monitor,
        nclocks,
        kmax,
        lu,
        extrapolation: limits.extrapolation,
        roots,
        spont,
        urgent,
        recv,
        emit_ids,
        masks,
        symmetry,
        shards: (0..SHARD_COUNT)
            .map(|_| Mutex::new(Shard::default()))
            .collect(),
    };
    let verdict = engine.run(limits);
    if let (Some(sink), SymbolicVerdict::Safe(_)) = (&limits.capture, &verdict) {
        if let Some(profile) = monitor.warm_profile() {
            *sink.lock() = Some(capture_artifact(&engine, limits, masks, profile));
        }
    }
    drop(engine);
    if det_rerun && accelerated && verdict.is_unsafe() {
        // Determinism by post-hoc minimization: re-derive the
        // counter-example with the quotient and work-stealing off.
        // The accelerated search explores the same reachable set up
        // to symmetry, so the deterministic rerun finds a violation
        // too; if it trips a budget first, that inconclusive verdict
        // is returned — conservative, never wrong.
        let mut det = limits.clone();
        det.symmetry = false;
        det.scheduler = Scheduler::RoundBarrier;
        det.warm_start = None;
        det.capture = None;
        return check_monitored_with(net, monitor, &det, masks, false);
    }
    Ok(verdict)
}

/// Validates `art` against the model about to be searched and, when
/// every gate passes, returns the transferred-proof `Safe` statistics.
/// `None` means "cold-start instead" — the only failure mode.
///
/// Soundness of the transfer: the structural digest plus elementwise
/// tick equality pin the lowered network exactly, so the zone graph and
/// the monitor's state evolution are those of the proved run; the
/// monitor profile admission ([`crate::WarmProfile::admits`]) means
/// every new violation predicate is a subset of an old one; hence the
/// old "no violation reachable" verdict covers the new model verbatim.
/// The per-entry re-validation below (shape checks, non-empty restore,
/// re-running the *new* monitor's settled check on every stored zone)
/// is defense in depth against a corrupt or mismatched artifact that
/// happens to pass the digests.
fn try_warm_start(
    art: &PassedArtifact,
    net: &TaNetwork,
    monitor: &dyn Monitor,
    masks: Option<&ActivityMasks>,
    limits: &Limits,
    nclocks: usize,
) -> Option<SearchStats> {
    let profile = monitor.warm_profile()?;
    if art.nclocks != nclocks
        || art.extrapolation != limits.extrapolation
        || art.net_digest != net_structure_digest(net)
        || art.masks_digest != masks_digest(masks)
        || art.atom_ticks != atom_ticks(net)
        || !art.profile.admits(&profile)
        || art.entries.is_empty()
    {
        return None;
    }
    let mon_len = monitor.initial_state().len();
    let mut scratch = Dbm::universe(nclocks);
    for e in &art.entries {
        if e.locs.len() != net.automata.len()
            || e.mon.len() != mon_len
            || usize::from(e.zone.dim()) != nclocks + 1
        {
            return None;
        }
        if e.locs
            .iter()
            .zip(&net.automata)
            .any(|(&l, aut)| l as usize >= aut.locations.len())
        {
            return None;
        }
        e.zone.restore_into(&mut scratch);
        if scratch.is_empty() || monitor.check_settled(&e.locs, &e.mon, &scratch).is_err() {
            return None;
        }
    }
    Some(SearchStats {
        states: art.entries.len(),
        warm_seeded: art.entries.len(),
        dbm_clocks: nclocks,
        dbm_clocks_unreduced: nclocks,
        ..SearchStats::default()
    })
}

/// Serializes the engine's passed list into a [`PassedArtifact`]:
/// shards in index order, keys in intern-id (first-intern) order, one
/// entry per settled node — deterministic under the round-barrier
/// scheduler, and a valid (if scheduling-dependent) proof under
/// work-stealing.
fn capture_artifact(
    engine: &Engine<'_>,
    limits: &Limits,
    masks: Option<&ActivityMasks>,
    profile: crate::artifact::WarmProfile,
) -> PassedArtifact {
    let mut entries = Vec::new();
    for shard in &engine.shards {
        let s = shard.lock();
        let mut keys: Vec<(&Key, u32)> = s.keys.iter().collect();
        keys.sort_by_key(|&(_, id)| id);
        for (key, kid) in keys {
            for &nidx in &s.buckets[kid as usize] {
                entries.push(PassedEntry {
                    locs: key.0.clone(),
                    mon: key.1.clone(),
                    zone: s.nodes[nidx as usize].zone.clone(),
                });
            }
        }
    }
    PassedArtifact {
        nclocks: engine.nclocks,
        extrapolation: limits.extrapolation,
        reduce_clocks: limits.reduce_clocks,
        symmetry: engine.symmetry.is_some(),
        work_stealing: limits.scheduler == Scheduler::WorkStealing,
        net_digest: net_structure_digest(engine.net),
        atom_ticks: atom_ticks(engine.net),
        masks_digest: masks_digest(masks),
        profile,
        entries,
    }
}

/// Phase selector for the persistent worker pool. Thread spawning is
/// expensive enough (≈1 ms per scope on some kernels) to swamp per-round
/// parallelism, so the pool is spawned once per [`check`] and rounds are
/// coordinated with an epoch counter: the coordinator stages a phase,
/// bumps `epoch`, participates in the work itself, and spin/yield-waits
/// for every helper to raise `done`.
const TASK_EXIT: usize = 0;
const TASK_EXPAND: usize = 1;
const TASK_ADMIT: usize = 2;

/// Phase-control block guarded by [`RoundSync::phase`].
struct PhaseCtl {
    /// Bumped by the coordinator to start the next phase.
    epoch: usize,
    /// Which phase the current epoch runs ([`TASK_EXPAND`], …).
    task: usize,
    /// Helpers that finished the current phase.
    done: usize,
}

/// Shared round state between the coordinator and the helper pool.
/// Phase hand-off uses `std::sync::Condvar` so idle helpers sleep
/// instead of burning a core (matters when `max_workers` exceeds the
/// machine's parallelism).
struct RoundSync {
    phase: std::sync::Mutex<PhaseCtl>,
    /// Signalled by the coordinator when a new phase starts.
    start: std::sync::Condvar,
    /// Signalled by helpers when they finish a phase.
    finish: std::sync::Condvar,
    /// Work-claim cursor of the current phase (frontier index or shard
    /// index).
    cursor: AtomicUsize,
    /// The frontier being expanded (published before the phase starts).
    frontier: RwLock<Vec<FrontierEntry>>,
    /// Violations found by helpers this round.
    violations: Mutex<Vec<(Option<NodeId>, Violation)>>,
    /// Per-shard admissions produced by helpers this round.
    admitted: Mutex<Vec<(usize, Vec<FrontierEntry>)>>,
    /// Helper-side transition / subsumption / orbit-fold tallies.
    transitions: AtomicUsize,
    subsumed: AtomicUsize,
    folded: AtomicUsize,
    /// Set by a helper whose phase work panicked; the coordinator
    /// aborts the check instead of trusting a partial round.
    helper_panicked: std::sync::atomic::AtomicBool,
}

impl RoundSync {
    fn new() -> RoundSync {
        RoundSync {
            phase: std::sync::Mutex::new(PhaseCtl {
                epoch: 0,
                task: TASK_EXIT,
                done: 0,
            }),
            start: std::sync::Condvar::new(),
            finish: std::sync::Condvar::new(),
            cursor: AtomicUsize::new(0),
            frontier: RwLock::new(Vec::new()),
            violations: Mutex::new(Vec::new()),
            admitted: Mutex::new(Vec::new()),
            transitions: AtomicUsize::new(0),
            subsumed: AtomicUsize::new(0),
            folded: AtomicUsize::new(0),
            helper_panicked: std::sync::atomic::AtomicBool::new(false),
        }
    }

    fn ctl(&self) -> std::sync::MutexGuard<'_, PhaseCtl> {
        self.phase.lock().expect("phase lock poisoned")
    }
}

/// Stop causes of the work-stealing scheduler ([`WsShared::stop`]).
/// The first worker to observe a cause CASes it in; everyone else
/// drains out at the next loop head.
const WS_RUNNING: usize = 0;
const WS_VIOLATION: usize = 1;
const WS_CANCELLED: usize = 2;
const WS_MAX_STATES: usize = 3;
const WS_WALL: usize = 4;
const WS_PANIC: usize = 5;

/// Shared state of the work-stealing scheduler
/// ([`Scheduler::WorkStealing`]): per-worker deques over the same
/// sharded passed list the round-barrier scheduler uses, plus the
/// in-flight counter that detects distributed termination.
struct WsShared {
    /// One deque per worker, Chase–Lev discipline: the owner pushes and
    /// pops the front (newest — locally depth-first, cache-warm),
    /// thieves steal from the back (oldest — closest to the root, so a
    /// steal transfers the largest expected subtree per lock
    /// acquisition).
    deques: Vec<Mutex<VecDeque<FrontierEntry>>>,
    /// Frontier entries admitted but not yet *fully expanded*. A
    /// worker increments it for every child **before** decrementing it
    /// for the parent, so the counter can only reach 0 when no work
    /// exists anywhere — all deques empty + `inflight == 0` is the
    /// termination condition, with no barrier and no idle-round
    /// spinning.
    inflight: AtomicUsize,
    /// Settled states (passed-list admissions) so far.
    states: AtomicUsize,
    /// One of the `WS_*` causes above.
    stop: AtomicUsize,
    transitions: AtomicUsize,
    subsumed: AtomicUsize,
    folded: AtomicUsize,
    steals: AtomicUsize,
    /// Violations found before the stop flag halted expansion.
    violations: Mutex<Vec<(Option<NodeId>, Violation)>>,
}

impl WsShared {
    fn new(workers: usize) -> WsShared {
        WsShared {
            deques: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            inflight: AtomicUsize::new(0),
            states: AtomicUsize::new(0),
            stop: AtomicUsize::new(WS_RUNNING),
            transitions: AtomicUsize::new(0),
            subsumed: AtomicUsize::new(0),
            folded: AtomicUsize::new(0),
            steals: AtomicUsize::new(0),
            violations: Mutex::new(Vec::new()),
        }
    }

    /// Races `cause` into the stop flag; the first cause wins and
    /// everyone drains out. Idempotent, never blocks.
    fn halt(&self, cause: usize) {
        let _ = self
            .stop
            .compare_exchange(WS_RUNNING, cause, Ordering::AcqRel, Ordering::Acquire);
    }

    fn stopped(&self) -> bool {
        self.stop.load(Ordering::Acquire) != WS_RUNNING
    }
}

impl Engine<'_> {
    fn run(&self, limits: &Limits) -> SymbolicVerdict {
        match limits.scheduler {
            Scheduler::RoundBarrier => self.run_barrier(limits),
            Scheduler::WorkStealing => self.run_ws(limits),
        }
    }

    fn run_barrier(&self, limits: &Limits) -> SymbolicVerdict {
        let workers = limits.effective_workers().max(1);
        let sync = RoundSync::new();
        if workers == 1 {
            return self.drive(&sync, limits, 0);
        }
        crossbeam::thread::scope(|scope| {
            for _ in 0..workers - 1 {
                scope.spawn(|_| self.helper_loop(&sync));
            }
            // Catch a coordinator panic so the pool is always dismissed:
            // the scope joins helpers before propagating, and helpers
            // blocked on the start condvar would otherwise hang forever,
            // turning the crash into a silent CI timeout.
            let verdict = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                self.drive(&sync, limits, workers - 1)
            }));
            self.start_phase(&sync, TASK_EXIT);
            match verdict {
                Ok(v) => v,
                Err(panic) => std::panic::resume_unwind(panic),
            }
        })
        .expect("worker pool scope")
    }

    /// Sums the per-shard passed-list byte accounting into `stats`.
    fn fold_passed_bytes(&self, stats: &mut SearchStats) {
        let (mut min_bytes, mut full_bytes) = (0usize, 0usize);
        for shard in &self.shards {
            let s = shard.lock();
            min_bytes += s.min_bytes;
            full_bytes += s.full_bytes;
        }
        stats.peak_passed_bytes = min_bytes;
        stats.peak_passed_bytes_full = full_bytes;
    }

    /// The coordinator: seeds the search, then alternates expand/admit
    /// phases (participating in each) until a verdict is reached.
    fn drive(&self, sync: &RoundSync, limits: &Limits, helpers: usize) -> SymbolicVerdict {
        let started = Instant::now();
        let mut stats = SearchStats {
            // `check` overwrites the unreduced count when it ran the
            // reduction; on the direct path both are the real dimension.
            dbm_clocks: self.nclocks,
            dbm_clocks_unreduced: self.nclocks,
            ..SearchStats::default()
        };
        let mut pool = DbmPool::new();

        // Seed round: resolve + cook the initial state on this thread.
        let init = Work {
            locs: self.net.automata.iter().map(|a| a.initial as u32).collect(),
            mon: self.monitor.initial_state(),
            zone: Dbm::zero(self.nclocks),
            queue: VecDeque::new(),
            acts: vec![Act::Initial],
        };
        let mut local = LocalStats::default();
        let mut settled = Vec::new();
        let mut violations: Vec<(Option<NodeId>, Violation)> = Vec::new();
        match self.resolve(init, 0, &mut settled, &mut local, &mut pool) {
            Ok(()) => {}
            Err(v) => violations.push((None, *v)),
        }
        for w in settled {
            match self.cook(w, None, &mut local, &mut pool) {
                Ok(Some(c)) => self.shards[shard_of(&c.key)].lock().pending.push(c),
                Ok(None) => {}
                Err(v) => violations.push((None, *v)),
            }
        }
        stats.transitions += local.transitions;
        stats.subsumed += local.subsumed;
        stats.orbits += local.folded;
        if !violations.is_empty() {
            return self.least_counter_example(violations);
        }
        let mut frontier = self.admit_phase(sync, helpers, &mut stats, &mut pool);

        let mut round = 0usize;
        loop {
            // Round boundary: publish a progress snapshot, then honour a
            // fired cancellation token *before* any verdict — a search
            // cancelled mid-flight must never settle into `Safe`, even
            // when the frontier happens to drain on the same boundary.
            if let Some(report) = &limits.progress {
                report(&Progress {
                    round,
                    settled: stats.states,
                    frontier: frontier.len(),
                    elapsed: started.elapsed(),
                });
            }
            round += 1;
            if limits
                .cancel
                .as_ref()
                .is_some_and(CancelToken::is_cancelled)
            {
                stats.frontier = frontier.len();
                self.fold_passed_bytes(&mut stats);
                return SymbolicVerdict::OutOfBudget {
                    stats,
                    tripped: TrippedLimit::Cancelled,
                };
            }
            if frontier.is_empty() {
                stats.frontier = 0;
                self.fold_passed_bytes(&mut stats);
                return SymbolicVerdict::Safe(stats);
            }
            if stats.states > limits.max_states {
                stats.frontier = frontier.len();
                self.fold_passed_bytes(&mut stats);
                return SymbolicVerdict::OutOfBudget {
                    stats,
                    tripped: TrippedLimit::MaxStates(limits.max_states),
                };
            }
            if let Some(budget) = limits.max_wall {
                if started.elapsed() > budget {
                    stats.frontier = frontier.len();
                    self.fold_passed_bytes(&mut stats);
                    return SymbolicVerdict::OutOfBudget {
                        stats,
                        tripped: TrippedLimit::WallClock(budget),
                    };
                }
            }
            let violations = self.expand_phase(sync, frontier, helpers, &mut stats, &mut pool);
            if !violations.is_empty() {
                return self.least_counter_example(violations);
            }
            frontier = self.admit_phase(sync, helpers, &mut stats, &mut pool);
        }
    }

    /// Helper thread body: wait for the next epoch, run its phase, raise
    /// `done`; exit on [`TASK_EXIT`]. Each helper owns a [`DbmPool`]
    /// that persists across phases, so successor zones recycle worker-
    /// locally without synchronization.
    fn helper_loop(&self, sync: &RoundSync) {
        // Baseline is the pool-creation epoch (0), NOT the current value:
        // a helper that spawns after the coordinator's first bump must
        // still join that phase, or the coordinator waits forever.
        let mut seen = 0usize;
        let mut pool = DbmPool::new();
        loop {
            let task = {
                let mut ctl = sync.ctl();
                while ctl.epoch == seen {
                    ctl = sync.start.wait(ctl).expect("phase lock poisoned");
                }
                seen = ctl.epoch;
                ctl.task
            };
            // A panicking phase must still raise `done`, or the
            // coordinator waits for this helper forever and a crash
            // becomes a hang. Catch the unwind, flag it, and let the
            // coordinator abort the whole check.
            let pool = &mut pool;
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match task {
                TASK_EXPAND => {
                    let (local, violations) = {
                        let frontier = sync.frontier.read();
                        self.expand_work(&frontier, &sync.cursor, pool)
                    };
                    sync.transitions
                        .fetch_add(local.transitions, Ordering::Relaxed);
                    sync.subsumed.fetch_add(local.subsumed, Ordering::Relaxed);
                    sync.folded.fetch_add(local.folded, Ordering::Relaxed);
                    if !violations.is_empty() {
                        sync.violations.lock().extend(violations);
                    }
                    true
                }
                TASK_ADMIT => {
                    let (admitted, subsumed) = self.admit_work(&sync.cursor, pool);
                    sync.subsumed.fetch_add(subsumed, Ordering::Relaxed);
                    if !admitted.is_empty() {
                        sync.admitted.lock().extend(admitted);
                    }
                    true
                }
                _ => false,
            }));
            let keep_going = match outcome {
                Ok(keep_going) => keep_going,
                Err(_) => {
                    sync.helper_panicked.store(true, Ordering::Release);
                    true
                }
            };
            if !keep_going {
                break;
            }
            let mut ctl = sync.ctl();
            ctl.done += 1;
            sync.finish.notify_one();
        }
    }

    /// Publishes a phase to the pool and waits for every helper to
    /// finish it (the coordinator's own share is run by the caller
    /// between `start` and `wait`).
    fn start_phase(&self, sync: &RoundSync, task: usize) {
        sync.cursor.store(0, Ordering::Relaxed);
        let mut ctl = sync.ctl();
        ctl.epoch += 1;
        ctl.task = task;
        ctl.done = 0;
        drop(ctl);
        sync.start.notify_all();
    }

    fn wait_helpers(&self, sync: &RoundSync, helpers: usize) {
        let mut ctl = sync.ctl();
        while ctl.done < helpers {
            ctl = sync.finish.wait(ctl).expect("phase lock poisoned");
        }
        drop(ctl);
        if sync.helper_panicked.load(Ordering::Acquire) {
            // Dismiss the pool first so the scope join below us cannot
            // deadlock on helpers waiting for a phase that never comes,
            // then surface the crash instead of trusting a partial round.
            self.start_phase(sync, TASK_EXIT);
            panic!("symbolic exploration worker panicked; aborting the check");
        }
    }

    /// Phase 1: expands every frontier entry, staging cooked successors
    /// into their target shards and returning the round's violations.
    fn expand_phase(
        &self,
        sync: &RoundSync,
        frontier: Vec<FrontierEntry>,
        helpers: usize,
        stats: &mut SearchStats,
        pool: &mut DbmPool,
    ) -> Vec<(Option<NodeId>, Violation)> {
        // The previous round's frontier has been fully expanded; recycle
        // its zones before publishing the new one.
        let expanded = std::mem::replace(&mut *sync.frontier.write(), frontier);
        for e in expanded {
            pool.recycle(e.zone);
        }
        self.start_phase(sync, TASK_EXPAND);
        let (local, mut violations) = {
            let frontier = sync.frontier.read();
            self.expand_work(&frontier, &sync.cursor, pool)
        };
        self.wait_helpers(sync, helpers);
        stats.transitions += local.transitions + sync.transitions.swap(0, Ordering::Relaxed);
        stats.subsumed += local.subsumed + sync.subsumed.swap(0, Ordering::Relaxed);
        stats.orbits += local.folded + sync.folded.swap(0, Ordering::Relaxed);
        violations.append(&mut sync.violations.lock());
        violations
    }

    /// One worker's share of an expand phase: claim frontier entries
    /// from the shared cursor, expand them, flush staged candidates to
    /// their shards (one lock per shard per phase).
    fn expand_work(
        &self,
        frontier: &[FrontierEntry],
        cursor: &AtomicUsize,
        pool: &mut DbmPool,
    ) -> (LocalStats, Vec<(Option<NodeId>, Violation)>) {
        let mut local = LocalStats::default();
        let mut violations = Vec::new();
        let mut staged: Vec<Vec<Candidate>> = (0..SHARD_COUNT).map(|_| Vec::new()).collect();
        loop {
            let i = cursor.fetch_add(1, Ordering::Relaxed);
            let Some(entry) = frontier.get(i) else { break };
            self.expand(entry, &mut staged, &mut violations, &mut local, pool);
        }
        for (s, mut batch) in staged.into_iter().enumerate() {
            if !batch.is_empty() {
                self.shards[s].lock().pending.append(&mut batch);
            }
        }
        (local, violations)
    }

    /// Phase 2: drains every shard's pending list in content-defined
    /// order, admitting unsubsumed candidates; returns the next
    /// frontier (concatenated in shard order — deterministic).
    fn admit_phase(
        &self,
        sync: &RoundSync,
        helpers: usize,
        stats: &mut SearchStats,
        pool: &mut DbmPool,
    ) -> Vec<FrontierEntry> {
        self.start_phase(sync, TASK_ADMIT);
        let (mut per_shard, subsumed) = self.admit_work(&sync.cursor, pool);
        self.wait_helpers(sync, helpers);
        stats.subsumed += subsumed + sync.subsumed.swap(0, Ordering::Relaxed);
        per_shard.append(&mut sync.admitted.lock());
        per_shard.sort_by_key(|(s, _)| *s);
        let frontier: Vec<FrontierEntry> =
            per_shard.into_iter().flat_map(|(_, fresh)| fresh).collect();
        stats.states += frontier.len();
        frontier
    }

    /// One worker's share of an admit phase: claim whole shards from the
    /// shared cursor and admit their pending candidates deterministically.
    ///
    /// Admission is where keys are interned (content order ⇒ id
    /// assignment is identical for every worker count) and where zones
    /// are compressed: the node arena stores the minimal constraint
    /// form, against which future subsumption checks run directly.
    fn admit_work(
        &self,
        cursor: &AtomicUsize,
        pool: &mut DbmPool,
    ) -> (Vec<(usize, Vec<FrontierEntry>)>, usize) {
        let mut admitted: Vec<(usize, Vec<FrontierEntry>)> = Vec::new();
        let mut subsumed = 0usize;
        loop {
            let s = cursor.fetch_add(1, Ordering::Relaxed);
            if s >= SHARD_COUNT {
                break;
            }
            let mut shard = self.shards[s].lock();
            if shard.pending.is_empty() {
                continue;
            }
            let mut pending = std::mem::take(&mut shard.pending);
            pending.sort_by(|a, b| a.order_key().cmp(&b.order_key()));
            let mut fresh = Vec::new();
            let Shard {
                keys,
                buckets,
                nodes,
                min_bytes,
                full_bytes,
                ..
            } = &mut *shard;
            for c in pending {
                debug_assert!(
                    c.zone.closed_through_zero(),
                    "candidates must arrive canonical"
                );
                let (kid, new_key) = keys.intern(&c.key);
                if new_key {
                    buckets.push(Vec::new());
                }
                let bucket = &mut buckets[kid as usize];
                if bucket
                    .iter()
                    .any(|&ni| nodes[ni as usize].zone.includes(&c.zone))
                {
                    subsumed += 1;
                    pool.recycle(c.zone);
                    continue;
                }
                let reduced = c.zone.reduce();
                *min_bytes += reduced.heap_bytes();
                *full_bytes += reduced.full_matrix_bytes();
                let idx = nodes.len() as u32;
                nodes.push(Node {
                    zone: reduced,
                    parent: c.parent,
                    acts: c.acts.into_boxed_slice(),
                });
                bucket.push(idx);
                fresh.push(FrontierEntry {
                    id: NodeId {
                        shard: s as u32,
                        idx,
                    },
                    locs: c.key.0,
                    mon: c.key.1,
                    zone: c.zone,
                });
            }
            admitted.push((s, fresh));
        }
        (admitted, subsumed)
    }

    /// The work-stealing scheduler ([`Scheduler::WorkStealing`]): seeds
    /// the search, then runs `workers` symmetric workers over
    /// [`WsShared`] until the in-flight counter hits zero or a stop
    /// cause fires. Shares every passed-list structure (shards,
    /// interning, subsumption, compression) with the round-barrier
    /// scheduler — only the frontier discipline differs.
    fn run_ws(&self, limits: &Limits) -> SymbolicVerdict {
        let workers = limits.effective_workers().max(1);
        let started = Instant::now();
        let mut stats = SearchStats {
            dbm_clocks: self.nclocks,
            dbm_clocks_unreduced: self.nclocks,
            ..SearchStats::default()
        };
        let shared = WsShared::new(workers);

        // Seed: resolve + cook + admit the initial state on this
        // thread, so every worker starts against a populated deque 0.
        let mut pool = DbmPool::new();
        let mut local = LocalStats::default();
        let init = Work {
            locs: self.net.automata.iter().map(|a| a.initial as u32).collect(),
            mon: self.monitor.initial_state(),
            zone: Dbm::zero(self.nclocks),
            queue: VecDeque::new(),
            acts: vec![Act::Initial],
        };
        let mut settled = Vec::new();
        let mut violations: Vec<(Option<NodeId>, Violation)> = Vec::new();
        match self.resolve(init, 0, &mut settled, &mut local, &mut pool) {
            Ok(()) => {}
            Err(v) => violations.push((None, *v)),
        }
        let mut seeds = Vec::new();
        for w in settled {
            match self.cook(w, None, &mut local, &mut pool) {
                Ok(Some(c)) => {
                    let s = shard_of(&c.key);
                    if let Some(f) = self.ws_admit(s, c, &shared, &mut local, &mut pool) {
                        seeds.push(f);
                    }
                }
                Ok(None) => {}
                Err(v) => violations.push((None, *v)),
            }
        }
        shared
            .transitions
            .fetch_add(local.transitions, Ordering::Relaxed);
        shared.subsumed.fetch_add(local.subsumed, Ordering::Relaxed);
        shared.folded.fetch_add(local.folded, Ordering::Relaxed);
        if !violations.is_empty() {
            return self.least_counter_example(violations);
        }
        shared.inflight.fetch_add(seeds.len(), Ordering::AcqRel);
        shared.deques[0].lock().extend(seeds);

        // This thread is worker 0; helpers are 1..workers. Panics are
        // caught so siblings drain out via the stop flag instead of
        // spinning on an in-flight count that will never reach zero.
        let panicked = AtomicBool::new(false);
        let guarded = |wid: usize| {
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                self.ws_worker(&shared, limits, wid, workers, started)
            }));
            if outcome.is_err() {
                panicked.store(true, Ordering::Release);
                shared.stop.store(WS_PANIC, Ordering::Release);
            }
        };
        if workers == 1 {
            guarded(0);
        } else {
            crossbeam::thread::scope(|scope| {
                for wid in 1..workers {
                    let guarded = &guarded;
                    scope.spawn(move |_| guarded(wid));
                }
                guarded(0);
            })
            .expect("worker pool scope");
        }
        if panicked.load(Ordering::Acquire) {
            panic!("symbolic exploration worker panicked; aborting the check");
        }

        stats.states = shared.states.load(Ordering::Relaxed);
        stats.transitions = shared.transitions.load(Ordering::Relaxed);
        stats.subsumed = shared.subsumed.load(Ordering::Relaxed);
        stats.orbits = shared.folded.load(Ordering::Relaxed);
        stats.steals = shared.steals.load(Ordering::Relaxed);
        self.fold_passed_bytes(&mut stats);
        match shared.stop.load(Ordering::Acquire) {
            WS_VIOLATION => {
                let violations = std::mem::take(&mut *shared.violations.lock());
                self.least_counter_example(violations)
            }
            WS_RUNNING => {
                stats.frontier = 0;
                SymbolicVerdict::Safe(stats)
            }
            cause => {
                stats.frontier = shared.deques.iter().map(|d| d.lock().len()).sum();
                let tripped = match cause {
                    WS_CANCELLED => TrippedLimit::Cancelled,
                    WS_MAX_STATES => TrippedLimit::MaxStates(limits.max_states),
                    _ => TrippedLimit::WallClock(limits.max_wall.unwrap_or_default()),
                };
                SymbolicVerdict::OutOfBudget { stats, tripped }
            }
        }
    }

    /// One work-stealing worker: pop own newest, else steal someone
    /// else's oldest, else terminate when nothing is in flight. Budget
    /// and cancellation checks run every 64 loop iterations (cheap
    /// enough to not serialize workers, frequent enough that a fired
    /// token drains the pool within milliseconds).
    fn ws_worker(
        &self,
        shared: &WsShared,
        limits: &Limits,
        wid: usize,
        workers: usize,
        started: Instant,
    ) {
        let mut pool = DbmPool::new();
        let mut local = LocalStats::default();
        let mut steals = 0usize;
        let mut tick = 0usize;
        while !shared.stopped() {
            tick = tick.wrapping_add(1);
            if tick.is_multiple_of(64) {
                if limits
                    .cancel
                    .as_ref()
                    .is_some_and(CancelToken::is_cancelled)
                {
                    shared.halt(WS_CANCELLED);
                }
                if let Some(budget) = limits.max_wall {
                    if started.elapsed() > budget {
                        shared.halt(WS_WALL);
                    }
                }
                if wid == 0 {
                    if let Some(report) = &limits.progress {
                        report(&Progress {
                            round: tick / 64,
                            settled: shared.states.load(Ordering::Relaxed),
                            frontier: shared.inflight.load(Ordering::Relaxed),
                            elapsed: started.elapsed(),
                        });
                    }
                }
            }
            let entry = shared.deques[wid].lock().pop_front().or_else(|| {
                (1..workers).find_map(|d| {
                    let stolen = shared.deques[(wid + d) % workers].lock().pop_back();
                    if stolen.is_some() {
                        steals += 1;
                    }
                    stolen
                })
            });
            let Some(entry) = entry else {
                if shared.inflight.load(Ordering::Acquire) == 0 {
                    break;
                }
                std::thread::yield_now();
                continue;
            };
            self.ws_expand_entry(entry, shared, limits, wid, &mut local, &mut pool);
            // Decremented only after the children's increments above —
            // the order that makes `inflight == 0` mean "done".
            shared.inflight.fetch_sub(1, Ordering::AcqRel);
        }
        shared
            .transitions
            .fetch_add(local.transitions, Ordering::Relaxed);
        shared.subsumed.fetch_add(local.subsumed, Ordering::Relaxed);
        shared.folded.fetch_add(local.folded, Ordering::Relaxed);
        shared.steals.fetch_add(steals, Ordering::Relaxed);
    }

    /// Expands one frontier entry under the work-stealing scheduler:
    /// violations stop the pool (siblings' candidates are discarded —
    /// the deterministic re-search re-derives the minimal witness),
    /// survivors are admitted immediately and pushed onto the worker's
    /// own deque.
    fn ws_expand_entry(
        &self,
        entry: FrontierEntry,
        shared: &WsShared,
        limits: &Limits,
        wid: usize,
        local: &mut LocalStats,
        pool: &mut DbmPool,
    ) {
        let mut staged: Vec<Vec<Candidate>> = (0..SHARD_COUNT).map(|_| Vec::new()).collect();
        let mut violations = Vec::new();
        self.expand(&entry, &mut staged, &mut violations, local, pool);
        pool.recycle(entry.zone);
        if !violations.is_empty() {
            shared.violations.lock().append(&mut violations);
            shared.halt(WS_VIOLATION);
            for batch in staged {
                for c in batch {
                    pool.recycle(c.zone);
                }
            }
            return;
        }
        let mut fresh = Vec::new();
        for (s, batch) in staged.into_iter().enumerate() {
            for c in batch {
                if let Some(f) = self.ws_admit(s, c, shared, local, pool) {
                    fresh.push(f);
                }
            }
        }
        if shared.states.load(Ordering::Relaxed) > limits.max_states {
            shared.halt(WS_MAX_STATES);
        }
        if !fresh.is_empty() {
            // Children in flight *before* the caller retires the parent.
            shared.inflight.fetch_add(fresh.len(), Ordering::AcqRel);
            let mut own = shared.deques[wid].lock();
            for f in fresh {
                own.push_front(f);
            }
        }
    }

    /// Admits a single candidate under its shard lock — the same
    /// intern/subsume/reduce/store sequence as [`Engine::admit_work`],
    /// minus the content-defined batch ordering (the work-stealing
    /// passed list is scheduling-dependent by contract).
    fn ws_admit(
        &self,
        s: usize,
        c: Candidate,
        shared: &WsShared,
        local: &mut LocalStats,
        pool: &mut DbmPool,
    ) -> Option<FrontierEntry> {
        debug_assert!(
            c.zone.closed_through_zero(),
            "candidates must arrive canonical"
        );
        let mut shard = self.shards[s].lock();
        let Shard {
            keys,
            buckets,
            nodes,
            min_bytes,
            full_bytes,
            ..
        } = &mut *shard;
        let (kid, new_key) = keys.intern(&c.key);
        if new_key {
            buckets.push(Vec::new());
        }
        let bucket = &mut buckets[kid as usize];
        if bucket
            .iter()
            .any(|&ni| nodes[ni as usize].zone.includes(&c.zone))
        {
            local.subsumed += 1;
            pool.recycle(c.zone);
            return None;
        }
        let reduced = c.zone.reduce();
        *min_bytes += reduced.heap_bytes();
        *full_bytes += reduced.full_matrix_bytes();
        let idx = nodes.len() as u32;
        nodes.push(Node {
            zone: reduced,
            parent: c.parent,
            acts: c.acts.into_boxed_slice(),
        });
        bucket.push(idx);
        drop(shard);
        shared.states.fetch_add(1, Ordering::Relaxed);
        Some(FrontierEntry {
            id: NodeId {
                shard: s as u32,
                idx,
            },
            locs: c.key.0,
            mon: c.key.1,
            zone: c.zone,
        })
    }

    /// Expands one settled state: fires every spontaneous/external edge,
    /// resolves the emission cascade, cooks the settled successors into
    /// shard-staged candidates, and records violations. A violation in
    /// one edge branch never hides violations or successors of sibling
    /// branches (determinism requires the full per-node violation set).
    fn expand(
        &self,
        entry: &FrontierEntry,
        staged: &mut [Vec<Candidate>],
        violations: &mut Vec<(Option<NodeId>, Violation)>,
        local: &mut LocalStats,
        pool: &mut DbmPool,
    ) {
        for ai in 0..self.net.automata.len() {
            let loc = entry.locs[ai] as usize;
            for &eid in &self.spont[ai][loc] {
                let eid = eid as usize;
                // Guards are pre-tested atom-by-atom on the parent zone,
                // skipping the Work clone entirely when any single atom
                // is unsatisfiable (necessary condition; the joint
                // conjunction is still checked by apply_edge).
                let guard = &self.net.automata[ai].edges[eid].guard;
                if guard.iter().any(|a| !a.satisfiable_in(&entry.zone)) {
                    continue;
                }
                let mut w = Work {
                    locs: entry.locs.clone(),
                    mon: entry.mon.clone(),
                    zone: pool.clone_dbm(&entry.zone),
                    queue: VecDeque::new(),
                    acts: Vec::new(),
                };
                match self.apply_edge(&mut w, ai, eid, local) {
                    Ok(true) => {}
                    Ok(false) => {
                        pool.recycle(w.zone);
                        continue;
                    }
                    Err(v) => {
                        violations.push((Some(entry.id), *v));
                        pool.recycle(w.zone);
                        continue;
                    }
                }
                let mut settled = Vec::new();
                if let Err(v) = self.resolve(w, 0, &mut settled, local, pool) {
                    violations.push((Some(entry.id), *v));
                    continue;
                }
                for s in settled {
                    match self.cook(s, Some(entry.id), local, pool) {
                        Ok(Some(c)) => staged[shard_of(&c.key)].push(c),
                        Ok(None) => {}
                        Err(v) => violations.push((Some(entry.id), *v)),
                    }
                }
            }
        }
    }

    /// Packages a monitor violation with the trace context of `w` (the
    /// monitor's witness sub-zone when it tightened one, the current
    /// zone otherwise).
    fn violation(&self, mut mv: MonitorViolation, w: &Work) -> Box<Violation> {
        let zone = mv.witness.take().unwrap_or_else(|| w.zone.clone());
        Box::new(Violation {
            mv,
            acts: w.acts.clone(),
            zone,
        })
    }

    /// Fires edge `eid` of automaton `ai` on `w` in place: guard
    /// restriction (incremental closure — the zone stays canonical
    /// throughout, no Floyd–Warshall), monitor transition checks,
    /// resets, location move, emission enqueue. `Ok(false)` when the
    /// guard is unsatisfiable (the caller recycles `w.zone`).
    fn apply_edge(
        &self,
        w: &mut Work,
        ai: usize,
        eid: usize,
        local: &mut LocalStats,
    ) -> Result<bool, Box<Violation>> {
        let edge = &self.net.automata[ai].edges[eid];
        for atom in &edge.guard {
            if !atom.apply_and_close(&mut w.zone) {
                return Ok(false);
            }
        }
        local.transitions += 1;
        w.acts.push(Act::Edge {
            aut: ai as u16,
            eid: eid as u16,
        });

        // Monitor observation: guard applied, resets and location move
        // still pending (`ctx.locs` shows the pre-move vector).
        let ctx = TransitionCtx {
            net: self.net,
            aut: ai,
            src: edge.src,
            dst: edge.dst,
            locs: &w.locs,
        };
        let Work {
            ref mut mon,
            ref mut zone,
            ..
        } = *w;
        if let Err(mv) = self.monitor.on_transition(&ctx, mon, zone) {
            return Err(self.violation(mv, w));
        }

        let edge = &self.net.automata[ai].edges[eid];
        for (clock, v) in &edge.resets {
            w.zone.reset(*clock, *v);
        }
        w.locs[ai] = edge.dst as u32;
        for &rid in &self.emit_ids[ai][eid] {
            w.queue.push_back((ai as u32, rid));
        }
        Ok(true)
    }

    /// Assigns a delivery fate to receiver `idx` of an in-flight event
    /// and recurses over the remaining receivers (in automaton order,
    /// matching the executor's broadcast order), producing the full
    /// cartesian product of per-receiver fates:
    ///
    /// * every enabled receiving edge is a *delivered* branch;
    /// * a **lossy** receiver can always *drop* instead;
    /// * a **reliable** receiver only ignores the event where no edge of
    ///   its is enabled — exact via guard-atom negation for a single
    ///   guarded edge, conservatively over-approximated (full-zone
    ///   ignore, which can only add behaviours, never hide one) when
    ///   several guarded edges compete.
    #[allow(clippy::too_many_arguments)]
    fn deliver_fates(
        &self,
        w: Work,
        root: u16,
        receivers: &[(usize, Vec<(usize, bool)>)],
        idx: usize,
        depth: usize,
        out: &mut Vec<Work>,
        local: &mut LocalStats,
        pool: &mut DbmPool,
    ) -> Result<(), Box<Violation>> {
        if idx == receivers.len() {
            return self.resolve(w, depth + 1, out, local, pool);
        }
        let (ai, edges) = &receivers[idx];
        let mut any_delivered = false;
        for (eid, _) in edges {
            let mut branch = w.clone_via(pool);
            branch.acts.push(Act::Deliver {
                root,
                aut: *ai as u16,
            });
            if self.apply_edge(&mut branch, *ai, *eid, local)? {
                any_delivered = true;
                self.deliver_fates(branch, root, receivers, idx + 1, depth, out, local, pool)?;
            } else {
                pool.recycle(branch.zone);
            }
        }
        // Any lossy receiving edge means the wireless hop itself can drop
        // the message (also the conservative fate when an automaton mixes
        // lossy and reliable edges on one root, which the pattern never
        // does); a purely reliable receiver only misses the event where
        // none of its edges is enabled.
        let any_lossy = edges.iter().any(|(_, lossy)| *lossy);
        if any_lossy || !any_delivered {
            // Drop (lossy) or discard (reliable but nowhere enabled).
            let mut branch = w.clone_via(pool);
            branch.acts.push(Act::Lost {
                root,
                aut: *ai as u16,
            });
            self.deliver_fates(branch, root, receivers, idx + 1, depth, out, local, pool)?;
        } else {
            // Reliable and at least one edge delivered somewhere in the
            // zone: the event is still ignored on the sub-zone where no
            // edge is enabled.
            let guarded: Vec<usize> = edges
                .iter()
                .filter(|(eid, _)| !self.net.automata[*ai].edges[*eid].guard.is_empty())
                .map(|(eid, _)| *eid)
                .collect();
            let unguarded_exists = edges.len() > guarded.len();
            if !unguarded_exists && guarded.len() == 1 {
                // Exact complement: one guarded edge, branch per negated
                // guard atom.
                for atom in &self.net.automata[*ai].edges[guarded[0]].guard {
                    let mut branch = w.clone_via(pool);
                    if !atom.negated().apply_and_close(&mut branch.zone) {
                        pool.recycle(branch.zone);
                        continue;
                    }
                    branch.acts.push(Act::GuardOff {
                        root,
                        aut: *ai as u16,
                    });
                    self.deliver_fates(branch, root, receivers, idx + 1, depth, out, local, pool)?;
                }
            } else if !unguarded_exists {
                // Several guarded reliable edges: over-approximate with a
                // full-zone ignore branch (sound for Safe verdicts).
                let mut branch = w.clone_via(pool);
                branch.acts.push(Act::MaybeIgnored {
                    root,
                    aut: *ai as u16,
                });
                self.deliver_fates(branch, root, receivers, idx + 1, depth, out, local, pool)?;
            }
            // An unguarded reliable edge is always enabled: no ignore
            // fate exists.
        }
        pool.recycle(w.zone);
        Ok(())
    }

    /// Resolves pending emissions (branching on delivery fates) and
    /// invariant-expired sub-zones (firing urgent escapes), collecting
    /// fully settled states.
    fn resolve(
        &self,
        mut w: Work,
        depth: usize,
        out: &mut Vec<Work>,
        local: &mut LocalStats,
        pool: &mut DbmPool,
    ) -> Result<(), Box<Violation>> {
        if depth > CASCADE_DEPTH {
            out.push(w);
            return Ok(());
        }
        if let Some((sender, root)) = w.queue.pop_front() {
            // Candidate receivers, grouped per automaton: the executor
            // broadcasts an emission to every listener except the sender
            // (`route_emission` skips `receiver == sender`), and each
            // listener's wireless delivery has its own drop fate. The
            // per-location dispatch table replaces the full edge scan.
            let mut receivers: Vec<(usize, Vec<(usize, bool)>)> = Vec::new(); // (aut, [(edge, lossy)])
            for ai in 0..self.net.automata.len() {
                if ai == sender as usize {
                    continue;
                }
                let loc = w.locs[ai] as usize;
                let edges: Vec<(usize, bool)> = self.recv[ai][loc]
                    .iter()
                    .filter(|re| re.root == root)
                    .map(|re| (re.eid as usize, re.lossy))
                    .collect();
                if !edges.is_empty() {
                    receivers.push((ai, edges));
                }
            }
            return self.deliver_fates(w, root, &receivers, 0, depth, out, local, pool);
        }

        // No pending events: split on invariant satisfaction.
        let mut zin = pool.clone_dbm(&w.zone);
        let mut zin_alive = true;
        let mut atoms: Vec<(usize, Atom)> = Vec::new();
        for (ai, aut) in self.net.automata.iter().enumerate() {
            for atom in &aut.locations[w.locs[ai] as usize].invariant {
                // Incremental conjunction; once empty, only collect the
                // remaining atoms (the urgent split below needs them all).
                zin_alive = zin_alive && atom.apply_and_close(&mut zin);
                atoms.push((ai, *atom));
            }
        }
        if zin_alive {
            out.push(Work {
                locs: w.locs.clone(),
                mon: w.mon.clone(),
                zone: zin,
                queue: VecDeque::new(),
                acts: w.acts.clone(),
            });
        } else {
            pool.recycle(zin);
        }
        // Sub-zones beyond some invariant must take an urgent escape now.
        for (ai, atom) in &atoms {
            let mut zout = pool.clone_dbm(&w.zone);
            if !atom.negated().apply_and_close(&mut zout) {
                pool.recycle(zout);
                continue;
            }
            let loc = w.locs[*ai] as usize;
            for &eid in &self.urgent[*ai][loc] {
                let mut branch = Work {
                    locs: w.locs.clone(),
                    mon: w.mon.clone(),
                    zone: pool.clone_dbm(&zout),
                    queue: w.queue.clone(),
                    acts: w.acts.clone(),
                };
                branch.acts.push(Act::InvariantExpired { aut: *ai as u16 });
                if self.apply_edge(&mut branch, *ai, eid as usize, local)? {
                    self.resolve(branch, depth + 1, out, local, pool)?;
                } else {
                    pool.recycle(branch.zone);
                }
            }
            pool.recycle(zout);
        }
        pool.recycle(w.zone);
        Ok(())
    }

    /// Cooks a settled work item into an admission candidate: delay
    /// closure, observer-clock activity reduction, extrapolation, and
    /// the state-level PTE checks. Subsumption is deferred to phase 2.
    /// Every step preserves canonical form incrementally; the only full
    /// closure left is the one extrapolation performs internally when
    /// it widens anything.
    fn cook(
        &self,
        mut w: Work,
        parent: Option<NodeId>,
        local: &mut LocalStats,
        pool: &mut DbmPool,
    ) -> Result<Option<Candidate>, Box<Violation>> {
        // Delay: up-close within the conjunction of location invariants,
        // unless some occupied location freezes time.
        let frozen = w
            .locs
            .iter()
            .enumerate()
            .any(|(ai, &l)| self.net.automata[ai].locations[l as usize].frozen);
        if !frozen {
            w.zone.up();
            for (ai, aut) in self.net.automata.iter().enumerate() {
                for atom in &aut.locations[w.locs[ai] as usize].invariant {
                    if !atom.apply_and_close(&mut w.zone) {
                        // Cannot happen for a zone that satisfied the
                        // invariants, but guard against malformed inputs.
                        pool.recycle(w.zone);
                        return Ok(None);
                    }
                }
            }
        }
        // Observer-clock activity reduction: the monitor frees whichever
        // of its clocks are dead in this state, collapsing zones that
        // differ only in dead-clock history.
        self.monitor.reduce_activity(&w.locs, &w.mon, &mut w.zone);
        // …and the same collapse for the network's own clocks, from the
        // static per-location liveness masks. A freed clock is reset
        // before its next read, so no future guard, invariant, or
        // observer constraint can tell the difference.
        if let Some(masks) = self.masks {
            let mut dead = masks.dead_mask(&w.locs);
            while dead != 0 {
                w.zone.free(dead.trailing_zeros() as usize + 1);
                dead &= dead - 1;
            }
        }

        // Symmetry quotient: fold the state onto its orbit's canonical
        // representative (sort interchangeable members, permute their
        // owned clocks in the zone) before the key is built, so the
        // probe, interning, and admission all see one representative
        // per orbit. A pure function of the state — deterministic
        // regardless of worker count or scheduler.
        if let Some(sym) = &self.symmetry {
            if let Some(canon) = sym.canonicalize(&mut w.locs, &w.zone) {
                local.folded += 1;
                let old = std::mem::replace(&mut w.zone, canon);
                pool.recycle(old);
            }
        }

        // Early subsumption probe — *before* extrapolation: if an
        // already-passed zone (from a previous round; phase 1 never
        // mutates node arenas, so this read is deterministic) includes
        // the un-extrapolated candidate, every concrete behaviour from
        // here is covered by an explored state and the candidate can be
        // dropped without paying for extrapolation, reduction, or
        // admission. Sound for violation reporting too: passed zones
        // are violation-free by construction (a cooked zone with a
        // satisfiable violation is reported, never admitted), and the
        // bound sets cover every monitor constant
        // ([`Monitor::fold_bounds`]), so a violation satisfiable in the
        // dropped candidate's widening would be satisfiable in the
        // subsuming passed zone as well.
        let key: Key = (w.locs, w.mon);
        {
            let shard = self.shards[shard_of(&key)].lock();
            if let Some(kid) = shard.keys.get(&key) {
                if shard.buckets[kid as usize]
                    .iter()
                    .any(|&ni| shard.nodes[ni as usize].zone.includes(&w.zone))
                {
                    local.subsumed += 1;
                    pool.recycle(w.zone);
                    return Ok(None);
                }
            }
        }

        match self.extrapolation {
            Extrapolation::ExtraM => w.zone.extrapolate(&self.kmax),
            Extrapolation::ExtraLu => w.zone.extrapolate_lu_plus(&self.lu.lower, &self.lu.upper),
        }

        // State-level monitor checks on the delay-closed zone.
        if let Err(mut mv) = self.monitor.check_settled(&key.0, &key.1, &w.zone) {
            let zone = mv.witness.take().unwrap_or_else(|| w.zone.clone());
            return Err(Box::new(Violation {
                mv,
                acts: w.acts.clone(),
                zone,
            }));
        }

        Ok(Some(Candidate {
            key,
            zone: w.zone,
            parent,
            acts: w.acts,
        }))
    }

    /// Renders every violation of the round and returns the
    /// lexicographically least counter-example (by step list, then
    /// violation rank, then zone text) — a content-defined choice, so
    /// the witness is identical for every worker count.
    fn least_counter_example(
        &self,
        violations: Vec<(Option<NodeId>, Violation)>,
    ) -> SymbolicVerdict {
        let least = violations
            .into_iter()
            .map(|(parent, v)| self.render_ce(parent, v))
            .min_by(|a, b| (&a.steps, a.rank, &a.zone).cmp(&(&b.steps, b.rank, &b.zone)))
            .expect("at least one violation");
        SymbolicVerdict::Unsafe(Box::new(least))
    }

    /// Renders one action code to its human-readable string (the exact
    /// PR 2 wording — only the moment of formatting moved, from the hot
    /// path to counter-example reporting).
    fn render_act(&self, a: Act) -> String {
        match a {
            Act::Initial => "initial state".to_string(),
            Act::Edge { aut, eid } => {
                let a = &self.net.automata[aut as usize];
                let edge = &a.edges[eid as usize];
                format!(
                    "{}: {} -> {}{}",
                    a.name,
                    a.locations[edge.src].name,
                    a.locations[edge.dst].name,
                    match &edge.sync {
                        Sync::External(r) => format!(" (on {})", r.as_str()),
                        Sync::Reliable(r) | Sync::Lossy(r) => format!(" (recv {})", r.as_str()),
                        Sync::None => String::new(),
                    }
                )
            }
            Act::Deliver { root, aut } => format!(
                "deliver {} to {}",
                self.roots[root as usize].as_str(),
                self.net.automata[aut as usize].name
            ),
            Act::Lost { root, aut } => format!(
                "{} lost/ignored by {}",
                self.roots[root as usize].as_str(),
                self.net.automata[aut as usize].name
            ),
            Act::GuardOff { root, aut } => format!(
                "{} ignored by {} (guard off)",
                self.roots[root as usize].as_str(),
                self.net.automata[aut as usize].name
            ),
            Act::MaybeIgnored { root, aut } => format!(
                "{} possibly ignored by {}",
                self.roots[root as usize].as_str(),
                self.net.automata[aut as usize].name
            ),
            Act::InvariantExpired { aut } => {
                format!("{} invariant expired", self.net.automata[aut as usize].name)
            }
        }
    }

    /// Renders one step (a settle's action codes) as PR 2's `"; "`-joined
    /// line.
    fn render_step(&self, acts: &[Act]) -> String {
        acts.iter()
            .map(|&a| self.render_act(a))
            .collect::<Vec<_>>()
            .join("; ")
    }

    fn render_ce(&self, parent: Option<NodeId>, v: Violation) -> SymbolicCounterExample {
        let mut steps = Vec::new();
        let mut cursor = parent;
        while let Some(id) = cursor {
            let shard = self.shards[id.shard as usize].lock();
            let node = &shard.nodes[id.idx as usize];
            steps.push(self.render_step(&node.acts));
            cursor = node.parent;
        }
        steps.reverse();
        // The monitor's trace note (e.g. "dwell risky beyond the Rule-1
        // bound") joins the final step like any other action.
        let mut last = self.render_step(&v.acts);
        if let Some(note) = &v.mv.trace_note {
            if last.is_empty() {
                last = note.clone();
            } else {
                last.push_str("; ");
                last.push_str(note);
            }
        }
        steps.push(last);
        let mut names = self.net.clocks.clone();
        names.extend(self.monitor.clock_names().iter().cloned());
        let rank = v.mv.rank();
        SymbolicCounterExample {
            violation: v.mv.message,
            rank,
            steps,
            zone: v.zone.render(&names),
        }
    }
}
