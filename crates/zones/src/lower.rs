//! Lowering lease-pattern hybrid automata to timed automata.
//!
//! The pattern automata built by `pte-core` live in a decidable fragment
//! of the hybrid formalism: every continuous variable is either a
//! **clock** (rate 1 everywhere) or a **discrete register** (rate 0
//! everywhere, reset to constants, compared against constants — e.g. the
//! Supervisor's `approval_bad` flag). This module checks that a network
//! is inside the fragment and lowers it:
//!
//! * clocks become global TA clocks (`"{automaton}.{var}"`);
//! * discrete registers are folded into the location space — each hybrid
//!   location splits into one TA location per reachable register
//!   valuation ("mode"), guards/invariants over registers are evaluated
//!   per mode, and register resets become mode jumps;
//! * predicates must be conjunctive over clocks (single clock vs.
//!   constant); arbitrary boolean structure is allowed over registers
//!   since it constant-folds per mode;
//! * receive triggers are classified by scanning the network's emissions:
//!   a reliable trigger nobody emits is an **external** stimulus
//!   (driver/environment), everything else synchronizes internally.
//!
//! Constants are scaled from seconds to integer ticks ([`crate::SCALE`]),
//! the exactness condition for DBM canonicalization.
//!
//! Every lowered atom keeps its comparison direction, which is what lets
//! the engine derive the per-clock lower/upper extrapolation bounds
//! ([`TaNetwork::lu_bounds`]) behind `Extra⁺_LU` — invariants only feed
//! upper bounds, guards feed whichever direction they compare.

use crate::ta::{Atom, Rel, Sync, TaAutomaton, TaEdge, TaLocation, TaNetwork};
use crate::{to_ticks, try_to_ticks};
use pte_hybrid::automaton::{Trigger, VarKind};
use pte_hybrid::{Cmp, Expr, HybridAutomaton, Pred, VarId};
use std::collections::BTreeSet;
use std::fmt;

/// Why a hybrid automaton could not be lowered to a timed automaton.
#[derive(Clone, Debug, PartialEq)]
pub enum LowerError {
    /// A continuous variable has a non-zero flow somewhere (a genuinely
    /// hybrid dynamic — out of the timed fragment).
    NonClockFlow {
        /// Automaton name.
        automaton: String,
        /// Variable name.
        var: String,
        /// Location where the flow is non-zero.
        location: String,
    },
    /// A predicate mixes clocks in a way the conjunctive clock fragment
    /// cannot express (disjunction over clocks, clock-to-clock
    /// comparison, non-constant bound, …).
    UnsupportedPredicate {
        /// Automaton name.
        automaton: String,
        /// Rendered predicate.
        pred: String,
    },
    /// A reset assigns a non-constant expression.
    UnsupportedReset {
        /// Automaton name.
        automaton: String,
        /// Variable name.
        var: String,
    },
    /// Too many discrete register valuations to enumerate.
    ModeExplosion {
        /// Automaton name.
        automaton: String,
        /// Number of modes that would be required.
        modes: usize,
    },
    /// The automaton declares no initial state.
    NoInitialState {
        /// Automaton name.
        automaton: String,
    },
    /// A clock starts at a non-zero value (the zone engine's initial
    /// zone is the origin; support would need per-clock offsets).
    NonZeroClockInit {
        /// Automaton name.
        automaton: String,
        /// Clock variable name.
        var: String,
    },
    /// A timing constant is not exactly representable in integer ticks:
    /// rounding it would make the engine verify a *different* model, so
    /// the lowering refuses instead.
    InexactConstant {
        /// Automaton name.
        automaton: String,
        /// The offending constant, in seconds.
        seconds: f64,
    },
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LowerError::NonClockFlow {
                automaton,
                var,
                location,
            } => write!(
                f,
                "automaton `{automaton}`: variable `{var}` has a non-zero flow in \
                 `{location}` — not in the timed fragment"
            ),
            LowerError::UnsupportedPredicate { automaton, pred } => write!(
                f,
                "automaton `{automaton}`: predicate `{pred}` is outside the \
                 conjunctive clock fragment"
            ),
            LowerError::UnsupportedReset { automaton, var } => {
                write!(f, "automaton `{automaton}`: non-constant reset of `{var}`")
            }
            LowerError::ModeExplosion { automaton, modes } => write!(
                f,
                "automaton `{automaton}`: {modes} discrete modes exceed the \
                 enumeration budget"
            ),
            LowerError::NoInitialState { automaton } => {
                write!(f, "automaton `{automaton}` has no initial state")
            }
            LowerError::NonZeroClockInit { automaton, var } => write!(
                f,
                "automaton `{automaton}`: clock `{var}` starts non-zero — \
                 unsupported by the zone engine's origin initial zone"
            ),
            LowerError::InexactConstant { automaton, seconds } => write!(
                f,
                "automaton `{automaton}`: constant {seconds} s is not \
                 microsecond-exact — rounding would change the model"
            ),
        }
    }
}

impl std::error::Error for LowerError {}

/// Exact integer-scaled register values (registers only ever hold
/// constants; scaling by [`crate::SCALE`] keeps equality exact).
type Mode = Vec<i64>;

/// Checked seconds→ticks conversion: inexact constants abort the
/// lowering instead of silently verifying a rounded model.
fn ticks_exact(a: &HybridAutomaton, secs: f64) -> Result<i64, LowerError> {
    try_to_ticks(secs).ok_or(LowerError::InexactConstant {
        automaton: a.name.clone(),
        seconds: secs,
    })
}

struct VarInfo {
    /// Clock variables: `VarId -> global clock DBM index` (1-based).
    clock_index: Vec<Option<usize>>,
    /// Discrete registers: `VarId -> index into the mode vector`.
    reg_index: Vec<Option<usize>>,
    /// Possible values per register (scaled).
    reg_values: Vec<BTreeSet<i64>>,
    /// Initial mode.
    init_mode: Mode,
}

/// Result of lowering a conjunctive predicate in a given mode.
enum LoweredPred {
    /// Constantly false in this mode: the guarded edge is unreachable.
    False,
    /// A conjunction of clock atoms (empty = true).
    Atoms(Vec<Atom>),
}

fn classify_vars(
    a: &HybridAutomaton,
    clock_names: &mut Vec<String>,
) -> Result<VarInfo, LowerError> {
    let nv = a.vars.len();
    let mut clock_index = vec![None; nv];
    let mut reg_index = vec![None; nv];
    let mut reg_values: Vec<BTreeSet<i64>> = Vec::new();
    let mut init_mode = Vec::new();

    for (vi, decl) in a.vars.iter().enumerate() {
        match decl.kind {
            VarKind::Clock => {
                if to_ticks(decl.init) != 0 {
                    return Err(LowerError::NonZeroClockInit {
                        automaton: a.name.clone(),
                        var: decl.name.clone(),
                    });
                }
                // Global 1-based DBM index: the clock list is shared by
                // the whole network and already holds earlier automata.
                clock_index[vi] = Some(clock_names.len() + 1);
                clock_names.push(format!("{}.{}", a.name, decl.name));
            }
            VarKind::Continuous => {
                // Must have zero flow everywhere to be a register.
                for loc in &a.locations {
                    let flow = loc.flow_of(VarId(vi), decl.kind);
                    if flow.const_value() != Some(0.0) {
                        return Err(LowerError::NonClockFlow {
                            automaton: a.name.clone(),
                            var: decl.name.clone(),
                            location: loc.name.clone(),
                        });
                    }
                }
                let mut values = BTreeSet::new();
                values.insert(ticks_exact(a, decl.init)?);
                for e in &a.edges {
                    for (rv, expr) in &e.resets {
                        if rv.0 == vi {
                            match expr.const_value() {
                                Some(c) => {
                                    values.insert(ticks_exact(a, c)?);
                                }
                                None => {
                                    return Err(LowerError::UnsupportedReset {
                                        automaton: a.name.clone(),
                                        var: decl.name.clone(),
                                    })
                                }
                            }
                        }
                    }
                }
                reg_index[vi] = Some(reg_values.len());
                init_mode.push(ticks_exact(a, decl.init)?);
                reg_values.push(values);
            }
        }
    }
    Ok(VarInfo {
        clock_index,
        reg_index,
        reg_values,
        init_mode,
    })
}

/// Constant-folds an expression given the current register mode; `None`
/// if it references a clock or is genuinely non-constant.
fn fold_expr(e: &Expr, info: &VarInfo, mode: &Mode) -> Option<f64> {
    match e {
        Expr::Const(c) => Some(*c),
        Expr::Var(v) => info.reg_index[v.0].map(|r| mode[r] as f64 / crate::SCALE),
        Expr::Neg(a) => fold_expr(a, info, mode).map(|x| -x),
        Expr::Abs(a) => fold_expr(a, info, mode).map(f64::abs),
        Expr::Add(a, b) => Some(fold_expr(a, info, mode)? + fold_expr(b, info, mode)?),
        Expr::Sub(a, b) => Some(fold_expr(a, info, mode)? - fold_expr(b, info, mode)?),
        Expr::Mul(a, b) => Some(fold_expr(a, info, mode)? * fold_expr(b, info, mode)?),
        Expr::Div(a, b) => Some(fold_expr(a, info, mode)? / fold_expr(b, info, mode)?),
        Expr::Min(a, b) => Some(fold_expr(a, info, mode)?.min(fold_expr(b, info, mode)?)),
        Expr::Max(a, b) => Some(fold_expr(a, info, mode)?.max(fold_expr(b, info, mode)?)),
    }
}

/// Extracts `Some(clock)` if the expression is exactly one clock variable.
fn as_clock(e: &Expr, info: &VarInfo) -> Option<usize> {
    match e {
        Expr::Var(v) => info.clock_index[v.0],
        _ => None,
    }
}

fn lower_pred(
    a: &HybridAutomaton,
    p: &Pred,
    info: &VarInfo,
    mode: &Mode,
    out: &mut Vec<Atom>,
) -> Result<bool, LowerError> {
    let unsupported = || LowerError::UnsupportedPredicate {
        automaton: a.name.clone(),
        pred: format!("{p:?}"),
    };
    match p {
        Pred::True => Ok(true),
        Pred::False => Ok(false),
        Pred::And(ps) => {
            for sub in ps {
                if !lower_pred(a, sub, info, mode, out)? {
                    return Ok(false);
                }
            }
            Ok(true)
        }
        Pred::Cmp(lhs, op, rhs) => {
            // Register-only comparisons constant-fold per mode.
            if let (Some(l), Some(r)) = (fold_expr(lhs, info, mode), fold_expr(rhs, info, mode)) {
                return Ok(op.apply(l, r));
            }
            // Otherwise: clock vs constant (either orientation).
            let (clock, rel, bound) = if let (Some(c), Some(k)) =
                (as_clock(lhs, info), fold_expr(rhs, info, mode))
            {
                let rel = match op {
                    Cmp::Lt => Rel::Lt,
                    Cmp::Le => Rel::Le,
                    Cmp::Gt => Rel::Gt,
                    Cmp::Ge => Rel::Ge,
                    Cmp::Eq | Cmp::Ne => {
                        return lower_clock_eq(a, *op, c, k, out).ok_or_else(unsupported)
                    }
                };
                (c, rel, k)
            } else if let (Some(k), Some(c)) = (fold_expr(lhs, info, mode), as_clock(rhs, info)) {
                let rel = match op {
                    Cmp::Lt => Rel::Gt,
                    Cmp::Le => Rel::Ge,
                    Cmp::Gt => Rel::Lt,
                    Cmp::Ge => Rel::Le,
                    Cmp::Eq | Cmp::Ne => {
                        return lower_clock_eq(a, *op, c, k, out).ok_or_else(unsupported)
                    }
                };
                (c, rel, k)
            } else {
                return Err(unsupported());
            };
            out.push(Atom {
                clock,
                rel,
                ticks: ticks_exact(a, bound)?,
            });
            Ok(true)
        }
        // Boolean structure is only supported when it constant-folds
        // (registers / constants only — no clocks underneath).
        Pred::Or(_) | Pred::Not(_) => eval_register_pred(p, info, mode).ok_or_else(unsupported),
    }
}

/// `clock == k` becomes two atoms; `clock != k` is not conjunctive.
fn lower_clock_eq(
    _a: &HybridAutomaton,
    op: Cmp,
    clock: usize,
    k: f64,
    out: &mut Vec<Atom>,
) -> Option<bool> {
    match op {
        Cmp::Eq => {
            let ticks = try_to_ticks(k)?;
            out.push(Atom {
                clock,
                rel: Rel::Le,
                ticks,
            });
            out.push(Atom {
                clock,
                rel: Rel::Ge,
                ticks,
            });
            Some(true)
        }
        _ => None,
    }
}

/// Evaluates a clock-free predicate against the register mode.
fn eval_register_pred(p: &Pred, info: &VarInfo, mode: &Mode) -> Option<bool> {
    match p {
        Pred::True => Some(true),
        Pred::False => Some(false),
        Pred::Cmp(l, op, r) => Some(op.apply(fold_expr(l, info, mode)?, fold_expr(r, info, mode)?)),
        Pred::And(ps) => {
            for sub in ps {
                if !eval_register_pred(sub, info, mode)? {
                    return Some(false);
                }
            }
            Some(true)
        }
        Pred::Or(ps) => {
            for sub in ps {
                if eval_register_pred(sub, info, mode)? {
                    return Some(true);
                }
            }
            Some(false)
        }
        Pred::Not(sub) => eval_register_pred(sub, info, mode).map(|b| !b),
    }
}

fn lower_pred_full(
    a: &HybridAutomaton,
    p: &Pred,
    info: &VarInfo,
    mode: &Mode,
) -> Result<LoweredPred, LowerError> {
    let mut atoms = Vec::new();
    if lower_pred(a, p, info, mode, &mut atoms)? {
        Ok(LoweredPred::Atoms(atoms))
    } else {
        Ok(LoweredPred::False)
    }
}

/// Maximum number of discrete modes enumerated per automaton.
const MODE_BUDGET: usize = 64;

fn enumerate_modes(info: &VarInfo) -> Result<Vec<Mode>, ()> {
    let mut modes: Vec<Mode> = vec![Vec::new()];
    for values in &info.reg_values {
        let mut next = Vec::with_capacity(modes.len() * values.len());
        for m in &modes {
            for v in values {
                let mut m2 = m.clone();
                m2.push(*v);
                next.push(m2);
            }
        }
        modes = next;
        if modes.len() > MODE_BUDGET {
            return Err(());
        }
    }
    Ok(modes)
}

fn mode_suffix(info: &VarInfo, a: &HybridAutomaton, mode: &Mode) -> String {
    if mode.is_empty() {
        return String::new();
    }
    let names: Vec<String> = a
        .vars
        .iter()
        .enumerate()
        .filter_map(|(vi, d)| {
            info.reg_index[vi].map(|r| format!("{}={}", d.name, mode[r] as f64 / crate::SCALE))
        })
        .collect();
    format!(" [{}]", names.join(","))
}

fn lower_automaton(
    a: &HybridAutomaton,
    clock_names: &mut Vec<String>,
) -> Result<TaAutomaton, LowerError> {
    let info = classify_vars(a, clock_names)?;
    let modes = enumerate_modes(&info).map_err(|_| LowerError::ModeExplosion {
        automaton: a.name.clone(),
        modes: info.reg_values.iter().map(BTreeSet::len).product::<usize>(),
    })?;
    let n_modes = modes.len();
    let ta_loc = |loc: usize, mode_idx: usize| loc * n_modes + mode_idx;

    // Locations: base × mode, with invariants lowered per mode.
    let mut locations = Vec::with_capacity(a.locations.len() * n_modes);
    for loc in &a.locations {
        for mode in &modes {
            let (invariant, frozen) = match lower_pred_full(a, &loc.invariant, &info, mode)? {
                LoweredPred::False => (Vec::new(), true),
                LoweredPred::Atoms(atoms) => (atoms, false),
            };
            locations.push(TaLocation {
                name: format!("{}{}", loc.name, mode_suffix(&info, a, mode)),
                invariant,
                frozen,
                risky: loc.risky,
            });
        }
    }

    // Edges, one instance per source mode.
    let mut edges = Vec::new();
    for e in &a.edges {
        for (mi, mode) in modes.iter().enumerate() {
            let guard = match lower_pred_full(a, &e.guard, &info, mode)? {
                LoweredPred::False => continue,
                LoweredPred::Atoms(atoms) => atoms,
            };
            let mut clock_resets = Vec::new();
            let mut dst_mode = mode.clone();
            for (rv, expr) in &e.resets {
                let value =
                    fold_expr(expr, &info, mode).ok_or_else(|| LowerError::UnsupportedReset {
                        automaton: a.name.clone(),
                        var: a.vars[rv.0].name.clone(),
                    })?;
                if let Some(c) = info.clock_index[rv.0] {
                    clock_resets.push((c, ticks_exact(a, value)?));
                } else if let Some(r) = info.reg_index[rv.0] {
                    dst_mode[r] = ticks_exact(a, value)?;
                }
            }
            let dst_mi = modes
                .iter()
                .position(|m| *m == dst_mode)
                .expect("register reset values are pre-enumerated");
            let sync = match &e.trigger {
                None => Sync::None,
                // Classified (reliable-external vs reliable-internal) by
                // `lower_network` once all emissions are known.
                Some(Trigger::Reliable(r)) => Sync::Reliable(r.clone()),
                Some(Trigger::Lossy(r)) => Sync::Lossy(r.clone()),
            };
            edges.push(TaEdge {
                src: ta_loc(e.src.0, mi),
                dst: ta_loc(e.dst.0, dst_mi),
                guard,
                resets: clock_resets,
                sync,
                emits: e.emits.clone(),
                urgent: e.urgent,
            });
        }
    }

    // Initial location and mode. The lease pattern starts from declared
    // per-variable initials (all zeros); explicit initial data vectors
    // are folded the same way.
    let init = a
        .initial
        .first()
        .ok_or_else(|| LowerError::NoInitialState {
            automaton: a.name.clone(),
        })?;
    let init_mode_idx = match &init.data {
        None => modes
            .iter()
            .position(|m| *m == info.init_mode)
            .expect("declared initial mode is enumerated"),
        Some(data) => {
            let mut m = info.init_mode.clone();
            for (vi, value) in data.iter().enumerate() {
                if info.clock_index[vi].is_some() && to_ticks(*value) != 0 {
                    return Err(LowerError::NonZeroClockInit {
                        automaton: a.name.clone(),
                        var: a.vars[vi].name.clone(),
                    });
                }
                if let Some(r) = info.reg_index[vi] {
                    m[r] = ticks_exact(a, *value)?;
                }
            }
            modes
                .iter()
                .position(|x| *x == m)
                .ok_or_else(|| LowerError::UnsupportedReset {
                    automaton: a.name.clone(),
                    var: "<initial data>".into(),
                })?
        }
    };

    Ok(TaAutomaton {
        name: a.name.clone(),
        locations,
        edges,
        initial: ta_loc(init.loc.0, init_mode_idx),
    })
}

/// Lowers a network of clock-like hybrid automata into a [`TaNetwork`].
///
/// Reliable receive triggers whose root no network member emits are
/// reclassified as [`Sync::External`] stimuli (driver commands,
/// environment signals): the engine lets them occur at any enabled
/// instant, which over-approximates every possible driver script.
pub fn lower_network(automata: &[HybridAutomaton]) -> Result<TaNetwork, LowerError> {
    let mut clock_names = Vec::new();
    let mut lowered = Vec::with_capacity(automata.len());
    for a in automata {
        lowered.push(lower_automaton(a, &mut clock_names)?);
    }

    // Classify reliable triggers by emission visibility.
    let emitted: BTreeSet<String> = lowered
        .iter()
        .flat_map(|a| a.edges.iter())
        .flat_map(|e| e.emits.iter())
        .map(|r| r.as_str().to_string())
        .collect();
    for a in &mut lowered {
        for e in &mut a.edges {
            if let Sync::Reliable(r) = &e.sync {
                if !emitted.contains(r.as_str()) {
                    e.sync = Sync::External(r.clone());
                }
            }
        }
    }

    Ok(TaNetwork {
        clocks: clock_names,
        automata: lowered,
    })
}
