//! The safety-monitor layer: properties as observer automata composed
//! with a [`TaNetwork`], decoupled from the zone engine.
//!
//! Until PR 4 the PTE observer was welded into `reach.rs` — Rule 1 and
//! the per-pair enter-lead/exit-lag checks ran inline in the search
//! loop, and the engine could check exactly one property. This module
//! inverts that: the engine ([`crate::reach::check_monitored`]) is
//! property-agnostic and explores the product of the network with *any*
//! [`Monitor`], in the component/observer style of compositional timed
//! model checkers (ECDAR / Reveaal): a property is an automaton-shaped
//! observer — discrete observer locations, observer clocks appended
//! after the network's clock space, guarded violation transitions —
//! not code inside the search.
//!
//! A monitor contributes three things to the composed exploration:
//!
//! 1. **Observer clocks** ([`Monitor::clock_names`]) — DBM dimensions
//!    above the network's own clocks, reset and read only by the
//!    monitor;
//! 2. **Observer state** ([`Monitor::initial_state`] /
//!    [`Monitor::on_transition`]) — a small discrete location vector
//!    that becomes part of the engine's passed-list key (two symbolic
//!    states with different observer locations never subsume each
//!    other);
//! 3. **Constants** ([`Monitor::fold_bounds`]) — every constant the
//!    monitor's guards compare an observer clock against, folded into
//!    the engine's extrapolation bound sets. This is also what keeps
//!    the engine's *pre-extrapolation subsumption probe* sound: a
//!    candidate dropped because a passed (violation-free) zone includes
//!    it can only be dropped safely if extrapolation cannot widen a
//!    zone across a monitor constant the bounds do not cover, so the
//!    bound set is derived from the monitor itself rather than from any
//!    hard-coded observer.
//!
//! ## Determinism contract
//!
//! The engine's verdict- and counter-example-determinism guarantees
//! extend to any monitor whose hooks are pure functions of their
//! arguments (no interior mutability, no ambient state). Both monitors
//! here are.
//!
//! Two implementations ship with the crate:
//!
//! * [`PteMonitor`] — the paper's PTE safety rules (Rule 1 bounded
//!   dwelling + per-adjacent-pair proper temporal embedding), built
//!   from an [`ObserverSpec`];
//! * [`LocationReachMonitor`] — plain location reachability, which
//!   turns the safety engine into a reachability checker (the returned
//!   "counter-example" is a witness trace to the target location).

use crate::artifact::{Digest, WarmProfile};
use crate::dbm::Dbm;
use crate::ta::{Atom, LuBounds, Rel, TaNetwork};
use pte_core::rules::PteSpec;
use std::fmt;

/// Discrete observer state: one `u8` "observer location" per tracked
/// component (for [`PteMonitor`], one per adjacent pair). Part of the
/// engine's passed-list key, so it must be cheap to clone, hash, and
/// order.
pub type MonitorState = Vec<u8>;

/// A violation reported by a monitor.
///
/// `class`/`index` give the content-defined total order the engine uses
/// to tie-break counter-examples with identical step lists — they must
/// be a pure function of *which* rule was violated, never of scheduling.
#[derive(Clone, Debug)]
pub struct MonitorViolation {
    /// Violation class (monitor-defined; lower sorts first).
    pub class: u8,
    /// Instance index within the class (entity, pair, target, …).
    pub index: u32,
    /// Rendered description of the violated rule.
    pub message: String,
    /// Optional extra text appended to the final trace step (e.g. the
    /// PTE monitor's "dwell risky beyond the Rule-1 bound" note).
    pub trace_note: Option<String>,
    /// Violating sub-zone, when the monitor tightened one (`None` means
    /// the whole current zone violates).
    pub witness: Option<Dbm>,
}

impl MonitorViolation {
    /// Content-defined tie-break rank.
    pub fn rank(&self) -> (u8, u32) {
        (self.class, self.index)
    }
}

/// Context of one discrete model transition, as seen by a monitor: the
/// network, the moving automaton and its source/destination locations,
/// and the (pre-move) location vector of the whole network.
pub struct TransitionCtx<'a> {
    /// The lowered network being explored.
    pub net: &'a TaNetwork,
    /// Index of the automaton firing the edge.
    pub aut: usize,
    /// Source location index (within `aut`).
    pub src: usize,
    /// Destination location index (within `aut`).
    pub dst: usize,
    /// Current location vector of the network — `aut`'s entry still
    /// holds `src` (the engine moves it after the monitor has observed
    /// the transition).
    pub locs: &'a [u32],
}

/// A safety property composed with the network: the engine explores the
/// product of the model and the monitor, and a violation anywhere in
/// the product is reported with a symbolic counter-example trace.
///
/// All hooks must be deterministic (see the module docs); the engine
/// calls them from multiple worker threads, hence `Sync`.
pub trait Monitor: Sync {
    /// Names of the monitor's observer clocks, appended after the
    /// network's clocks: observer clock `i` is DBM index
    /// `net.clock_count() + 1 + i`.
    fn clock_names(&self) -> &[String];

    /// Observer state at the network's initial location vector.
    fn initial_state(&self) -> MonitorState;

    /// Folds every constant the monitor compares its clocks against
    /// into the engine's extrapolation bound sets (`kmax` for
    /// `Extra_M`, `lu` for `Extra⁺_LU`). Indices are absolute DBM
    /// indices. Soundness of both extrapolation *and* the engine's
    /// pre-extrapolation subsumption probe depends on these bounds
    /// covering the monitor's guards.
    fn fold_bounds(&self, kmax: &mut [i64], lu: &mut LuBounds);

    /// Observes one discrete transition. Called after the edge's guard
    /// has tightened `zone` but before resets and the location move;
    /// the monitor may update its `state`, reset/constrain its own
    /// clocks in `zone`, and report a violation.
    fn on_transition(
        &self,
        ctx: &TransitionCtx<'_>,
        state: &mut MonitorState,
        zone: &mut Dbm,
    ) -> Result<(), MonitorViolation>;

    /// Frees observer clocks that are dead in the given state (activity
    /// reduction): zones differing only in dead-clock history then
    /// collapse. Called on every settled state before admission.
    fn reduce_activity(&self, locs: &[u32], state: &MonitorState, zone: &mut Dbm);

    /// Checks a settled, delay-closed (and extrapolated) state. This is
    /// where dwelling-style bounds are tested — delay closure has
    /// already let time run as far as the invariants allow.
    fn check_settled(
        &self,
        locs: &[u32],
        state: &MonitorState,
        zone: &Dbm,
    ) -> Result<(), MonitorViolation>;

    /// `true` when every hook of this monitor is invariant under
    /// permuting the given automata (their locations in `locs`, their
    /// owned clocks in the zone): the monitor neither observes any of
    /// them individually nor folds member-specific constants. Required
    /// before the engine's symmetry quotient may canonicalize states —
    /// a monitor that distinguishes members would see a *different*
    /// trace after canonicalization. Defaults to `false` (quotient
    /// off), the conservative answer for any monitor that does not
    /// opt in.
    fn permutation_invariant(&self, _members: &[usize]) -> bool {
        false
    }

    /// This monitor's contribution to passed-list artifact validity
    /// ([`crate::artifact::PassedArtifact`]): a structural digest plus
    /// the monitor's constants split by weakening direction, so a
    /// later run can decide whether a stored proof still covers it
    /// ([`WarmProfile::admits`]). `None` — the default — opts the
    /// monitor out entirely: searches under it neither capture
    /// artifacts nor warm-start from them, the conservative answer for
    /// any monitor that has not analyzed its own weakening order.
    fn warm_profile(&self) -> Option<WarmProfile> {
        None
    }
}

// ---------------------------------------------------------------------------
// The PTE observer
// ---------------------------------------------------------------------------

/// Integer-tick form of the PTE specification the [`PteMonitor`]
/// enforces.
#[derive(Clone, Debug)]
pub struct ObserverSpec {
    /// Entity names, outermost first (must name automata in the network).
    pub entities: Vec<String>,
    /// Rule-1 bound per entity, in ticks.
    pub rule1_ticks: Vec<i64>,
    /// Safeguard bounds per adjacent pair (`pairs[k]` relates outer
    /// entity `k` and inner entity `k + 1`).
    pub pairs: Vec<PairBounds>,
}

/// Safeguard intervals of one adjacent pair, in ticks.
#[derive(Clone, Copy, Debug)]
pub struct PairBounds {
    /// `T^min_risky`: minimum enter lead of the outer entity.
    pub t_min_risky: i64,
    /// `T^min_safe`: minimum exit lag of the outer entity.
    pub t_min_safe: i64,
}

impl ObserverSpec {
    /// Converts a [`PteSpec`] into tick units, borrowing (and cloning)
    /// the entity names. Prefer the `From<PteSpec>` impl when the spec
    /// is owned — it moves the names instead.
    pub fn from_spec(spec: &PteSpec) -> ObserverSpec {
        ObserverSpec::convert(spec.entities.clone(), spec)
    }

    fn convert(entities: Vec<String>, spec: &PteSpec) -> ObserverSpec {
        ObserverSpec {
            entities,
            rule1_ticks: spec
                .rule1_bounds
                .iter()
                .map(|t| crate::to_ticks(t.as_secs_f64()))
                .collect(),
            pairs: spec
                .pairs
                .iter()
                .map(|p| PairBounds {
                    t_min_risky: crate::to_ticks(p.t_min_risky.as_secs_f64()),
                    t_min_safe: crate::to_ticks(p.t_min_safe.as_secs_f64()),
                })
                .collect(),
        }
    }
}

impl From<PteSpec> for ObserverSpec {
    /// Tick conversion that takes ownership, moving the entity names
    /// instead of cloning them.
    fn from(mut spec: PteSpec) -> ObserverSpec {
        let entities = std::mem::take(&mut spec.entities);
        ObserverSpec::convert(entities, &spec)
    }
}

/// Which PTE rule a symbolic counter-example violates.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ViolationKind {
    /// Rule 1: entity `entity` can dwell risky beyond its bound.
    Rule1 {
        /// Index into [`ObserverSpec::entities`].
        entity: usize,
    },
    /// Rule 2/3 coverage: the inner entity of `pair` is risky while its
    /// outer entity is not.
    Coverage {
        /// Index into [`ObserverSpec::pairs`].
        pair: usize,
    },
    /// The inner entity can enter risky less than `T^min_risky` after
    /// the outer entity did.
    EnterMargin {
        /// Index into [`ObserverSpec::pairs`].
        pair: usize,
    },
    /// The outer entity can leave risky while the inner entity is still
    /// risky.
    ExitUncovered {
        /// Index into [`ObserverSpec::pairs`].
        pair: usize,
    },
    /// The outer entity can leave risky less than `T^min_safe` after the
    /// inner entity did.
    ExitLag {
        /// Index into [`ObserverSpec::pairs`].
        pair: usize,
    },
}

impl ViolationKind {
    /// Content-defined total order used to tie-break counter-examples
    /// with identical step lists.
    pub fn rank(&self) -> (u8, usize) {
        match self {
            ViolationKind::Rule1 { entity } => (0, *entity),
            ViolationKind::Coverage { pair } => (1, *pair),
            ViolationKind::EnterMargin { pair } => (2, *pair),
            ViolationKind::ExitUncovered { pair } => (3, *pair),
            ViolationKind::ExitLag { pair } => (4, *pair),
        }
    }

    /// Packages this kind as a [`MonitorViolation`].
    fn violation(self, trace_note: Option<String>, witness: Option<Dbm>) -> MonitorViolation {
        let (class, index) = self.rank();
        MonitorViolation {
            class,
            index: index as u32,
            message: self.to_string(),
            trace_note,
            witness,
        }
    }
}

impl fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ViolationKind::Rule1 { entity } => {
                write!(f, "rule 1 dwelling bound exceedable (entity #{entity})")
            }
            ViolationKind::Coverage { pair } => {
                write!(f, "inner risky while outer safe (pair #{pair})")
            }
            ViolationKind::EnterMargin { pair } => {
                write!(f, "enter lead below T^min_risky (pair #{pair})")
            }
            ViolationKind::ExitUncovered { pair } => {
                write!(f, "outer exits risky before inner (pair #{pair})")
            }
            ViolationKind::ExitLag { pair } => {
                write!(f, "exit lag below T^min_safe (pair #{pair})")
            }
        }
    }
}

/// Per-pair observer locations of the PTE observer's embedding state
/// machine (stored as `u8` in the [`MonitorState`]).
const IDLE: u8 = 0;
const OUTER_ONLY: u8 = 1;
const EMBEDDED: u8 = 2;
const INNER_EXITED: u8 = 3;

/// The PTE safety rules as an observer automaton: per entity a clock
/// `r_i` tracks time since the current risky dwelling began (Rule 1),
/// and per adjacent pair a four-location state machine
/// (`Idle / OuterOnly / Embedded / InnerExited`) plus a clock `s_k`
/// (time since the inner entity left risky) check proper temporal
/// embedding — coverage, the `T^min_risky` enter lead, and the
/// `T^min_safe` exit lag — exactly mirroring `pte_core::monitor`.
pub struct PteMonitor<'a> {
    spec: &'a ObserverSpec,
    /// entity index -> automaton index.
    entity_aut: Vec<usize>,
    /// automaton index -> entity index.
    aut_entity: Vec<Option<usize>>,
    /// entity index -> DBM index of its risky-dwell clock `r_i`.
    r_clock: Vec<usize>,
    /// pair index -> DBM index of its inner-exit clock `s_k`.
    s_clock: Vec<usize>,
    /// `risky_tab[ai][loc]` — risky classification, precomputed so the
    /// settled hooks need no network reference.
    risky_tab: Vec<Vec<bool>>,
    clock_names: Vec<String>,
}

impl<'a> PteMonitor<'a> {
    /// Resolves the spec's entities against `net` and lays the observer
    /// clocks out above the network's clock space (`r` clocks first,
    /// then the per-pair `s` clocks). Errors when a spec entity names
    /// no automaton in the network.
    pub fn new(net: &TaNetwork, spec: &'a ObserverSpec) -> Result<PteMonitor<'a>, String> {
        let mut entity_aut = Vec::with_capacity(spec.entities.len());
        let mut aut_entity = vec![None; net.automata.len()];
        for (ei, name) in spec.entities.iter().enumerate() {
            let ai = net
                .automaton_by_name(name)
                .ok_or_else(|| format!("spec entity `{name}` not found in network"))?;
            entity_aut.push(ai);
            aut_entity[ai] = Some(ei);
        }
        let base = net.clock_count();
        let mut clock_names = Vec::with_capacity(spec.entities.len() + spec.pairs.len());
        let r_clock: Vec<usize> = spec
            .entities
            .iter()
            .enumerate()
            .map(|(ei, name)| {
                clock_names.push(format!("r[{name}]"));
                base + 1 + ei
            })
            .collect();
        let s_clock: Vec<usize> = (0..spec.pairs.len())
            .map(|k| {
                clock_names.push(format!("s[pair{k}]"));
                base + 1 + spec.entities.len() + k
            })
            .collect();
        let risky_tab = net
            .automata
            .iter()
            .map(|a| a.locations.iter().map(|l| l.risky).collect())
            .collect();
        Ok(PteMonitor {
            spec,
            entity_aut,
            aut_entity,
            r_clock,
            s_clock,
            risky_tab,
            clock_names,
        })
    }

    fn risky(&self, ai: usize, loc: usize) -> bool {
        self.risky_tab[ai][loc]
    }

    /// Entity `ei` enters risky: coverage + enter-lead checks, pair
    /// state updates, `r` clock reset.
    fn observe_enter(
        &self,
        ei: usize,
        ctx: &TransitionCtx<'_>,
        state: &mut MonitorState,
        zone: &mut Dbm,
    ) -> Result<(), MonitorViolation> {
        // Pairs where `ei` is the inner entity.
        if ei >= 1 && ei - 1 < self.spec.pairs.len() {
            let pk = ei - 1;
            let outer_aut = self.entity_aut[pk];
            let outer_loc = ctx.locs[outer_aut] as usize;
            if !self.risky(outer_aut, outer_loc) {
                return Err(ViolationKind::Coverage { pair: pk }.violation(None, None));
            }
            let lead_short = Atom {
                clock: self.r_clock[pk],
                rel: Rel::Lt,
                ticks: self.spec.pairs[pk].t_min_risky,
            };
            if lead_short.satisfiable_in(zone) {
                let mut witness = zone.clone();
                lead_short.apply_and_close(&mut witness);
                return Err(ViolationKind::EnterMargin { pair: pk }.violation(None, Some(witness)));
            }
            state[pk] = EMBEDDED;
        }
        // Pairs where `ei` is the outer entity.
        if ei < self.spec.pairs.len() && state[ei] == IDLE {
            state[ei] = OUTER_ONLY;
        }
        zone.reset(self.r_clock[ei], 0);
        Ok(())
    }

    /// Entity `ei` leaves risky: exit-lag checks, pair state updates,
    /// `s` clock reset.
    fn observe_exit(
        &self,
        ei: usize,
        state: &mut MonitorState,
        zone: &mut Dbm,
    ) -> Result<(), MonitorViolation> {
        // Pairs where `ei` is the inner entity: start the lag phase.
        if ei >= 1 && ei - 1 < self.spec.pairs.len() {
            let pk = ei - 1;
            if state[pk] == EMBEDDED {
                state[pk] = INNER_EXITED;
                zone.reset(self.s_clock[pk], 0);
            }
        }
        // Pairs where `ei` is the outer entity.
        if ei < self.spec.pairs.len() {
            match state[ei] {
                EMBEDDED => {
                    return Err(ViolationKind::ExitUncovered { pair: ei }.violation(None, None));
                }
                INNER_EXITED => {
                    let lag_short = Atom {
                        clock: self.s_clock[ei],
                        rel: Rel::Lt,
                        ticks: self.spec.pairs[ei].t_min_safe,
                    };
                    if lag_short.satisfiable_in(zone) {
                        let mut witness = zone.clone();
                        lag_short.apply_and_close(&mut witness);
                        return Err(
                            ViolationKind::ExitLag { pair: ei }.violation(None, Some(witness))
                        );
                    }
                    state[ei] = IDLE;
                }
                _ => {
                    state[ei] = IDLE;
                }
            }
        }
        Ok(())
    }
}

impl Monitor for PteMonitor<'_> {
    fn clock_names(&self) -> &[String] {
        &self.clock_names
    }

    fn initial_state(&self) -> MonitorState {
        vec![IDLE; self.spec.pairs.len()]
    }

    /// The observer compares `r_i` downward against `T^min_risky` (enter
    /// lead) and upward against the Rule-1 bound, and `s_k` downward
    /// against `T^min_safe`, so the LU split mirrors those directions.
    fn fold_bounds(&self, kmax: &mut [i64], lu: &mut LuBounds) {
        for (ei, &c) in self.r_clock.iter().enumerate() {
            let mut k = self.spec.rule1_ticks[ei];
            lu.fold_lower(c, self.spec.rule1_ticks[ei]);
            if ei < self.spec.pairs.len() {
                k = k.max(self.spec.pairs[ei].t_min_risky);
                lu.fold_upper(c, self.spec.pairs[ei].t_min_risky);
            }
            kmax[c] = k;
        }
        for (pk, &c) in self.s_clock.iter().enumerate() {
            kmax[c] = self.spec.pairs[pk].t_min_safe;
            lu.fold_upper(c, self.spec.pairs[pk].t_min_safe);
        }
    }

    fn on_transition(
        &self,
        ctx: &TransitionCtx<'_>,
        state: &mut MonitorState,
        zone: &mut Dbm,
    ) -> Result<(), MonitorViolation> {
        let Some(ei) = self.aut_entity[ctx.aut] else {
            return Ok(());
        };
        let src_risky = self.risky(ctx.aut, ctx.src);
        let dst_risky = self.risky(ctx.aut, ctx.dst);
        if !src_risky && dst_risky {
            self.observe_enter(ei, ctx, state, zone)
        } else if src_risky && !dst_risky {
            self.observe_exit(ei, state, zone)
        } else {
            Ok(())
        }
    }

    /// `r_i` is only ever read while entity `i` is risky (it is reset on
    /// entry), and `s_k` only in the pair's `InnerExited` lag phase
    /// (reset on entry) — elsewhere they are dead.
    fn reduce_activity(&self, locs: &[u32], state: &MonitorState, zone: &mut Dbm) {
        for (ei, &ai) in self.entity_aut.iter().enumerate() {
            if !self.risky(ai, locs[ai] as usize) {
                zone.free(self.r_clock[ei]);
            }
        }
        for (pk, &c) in self.s_clock.iter().enumerate() {
            if state[pk] != INNER_EXITED {
                zone.free(c);
            }
        }
    }

    fn check_settled(
        &self,
        locs: &[u32],
        _state: &MonitorState,
        zone: &Dbm,
    ) -> Result<(), MonitorViolation> {
        // Rule 1 on the delay-closed zone: can any risky entity dwell
        // beyond its bound?
        for (ei, &ai) in self.entity_aut.iter().enumerate() {
            if !self.risky(ai, locs[ai] as usize) {
                continue;
            }
            let over = Atom {
                clock: self.r_clock[ei],
                rel: Rel::Gt,
                ticks: self.spec.rule1_ticks[ei],
            };
            if over.satisfiable_in(zone) {
                let mut witness = zone.clone();
                over.apply_and_close(&mut witness);
                return Err(ViolationKind::Rule1 { entity: ei }.violation(
                    Some(format!(
                        "dwell risky beyond the Rule-1 bound ({} ticks)",
                        self.spec.rule1_ticks[ei]
                    )),
                    Some(witness),
                ));
            }
        }
        // State-level coverage: an inner entity risky while its outer
        // entity is not.
        for pk in 0..self.spec.pairs.len() {
            let outer = self.entity_aut[pk];
            let inner = self.entity_aut[pk + 1];
            if self.risky(inner, locs[inner] as usize) && !self.risky(outer, locs[outer] as usize) {
                return Err(ViolationKind::Coverage { pair: pk }.violation(None, None));
            }
        }
        Ok(())
    }

    /// The PTE observer watches each spec entity individually (risky
    /// dwell, embedding phases, per-pair clocks), so permuting tracked
    /// entities would permute the property itself. Only automata that
    /// are **not** spec entities are invisible to every hook.
    fn permutation_invariant(&self, members: &[usize]) -> bool {
        members.iter().all(|&ai| {
            self.aut_entity
                .get(ai)
                .is_none_or(|entity| entity.is_none())
        })
    }

    /// Structure: which entities (and their automaton/clock layout) the
    /// observer watches. Constants by weakening direction: a *larger*
    /// Rule-1 bound weakens (`r > bound` harder to satisfy), a
    /// *smaller* `T^min_risky`/`T^min_safe` weakens (`r < margin` /
    /// `s < margin` harder to satisfy); Coverage and ExitUncovered are
    /// constant-free. So a proof transfers exactly to relaxed-safeguard
    /// re-verifications.
    fn warm_profile(&self) -> Option<WarmProfile> {
        let mut d = Digest::new();
        d.write_str("pte-observer");
        d.write_u64(self.spec.entities.len() as u64);
        for (name, &ai) in self.spec.entities.iter().zip(&self.entity_aut) {
            d.write_str(name);
            d.write_u64(ai as u64);
        }
        d.write_u64(self.spec.pairs.len() as u64);
        for name in &self.clock_names {
            d.write_str(name);
        }
        let mut weaken_upper = Vec::with_capacity(self.spec.pairs.len() * 2);
        weaken_upper.extend(self.spec.pairs.iter().map(|p| p.t_min_risky));
        weaken_upper.extend(self.spec.pairs.iter().map(|p| p.t_min_safe));
        Some(WarmProfile {
            structure: d.finish(),
            weaken_lower: self.spec.rule1_ticks.clone(),
            weaken_upper,
        })
    }
}

// ---------------------------------------------------------------------------
// Location reachability as a monitor
// ---------------------------------------------------------------------------

/// A monitor with no clocks and no state that flags when any target
/// location is entered (or occupied in a settled state): composing it
/// with a network turns the safety engine into a reachability checker,
/// and the reported "counter-example" is a witness trace.
pub struct LocationReachMonitor {
    clock_names: Vec<String>,
    /// `(automaton, location, label)` targets, in query order.
    targets: Vec<(usize, usize, String)>,
}

impl LocationReachMonitor {
    /// Resolves `(automaton name, location name-prefix)` queries against
    /// the network. A prefix match absorbs the lowering's folded-mode
    /// suffixes (`"Lease xi1"` matches `"Lease xi1 [approval_bad=0]"`).
    pub fn new(net: &TaNetwork, queries: &[(&str, &str)]) -> Result<LocationReachMonitor, String> {
        let mut targets = Vec::new();
        for (aut_name, loc_prefix) in queries {
            let ai = net
                .automaton_by_name(aut_name)
                .ok_or_else(|| format!("automaton `{aut_name}` not found in network"))?;
            let mut found = false;
            for (li, loc) in net.automata[ai].locations.iter().enumerate() {
                if loc.name.starts_with(loc_prefix) {
                    targets.push((ai, li, format!("{aut_name}.{}", loc.name)));
                    found = true;
                }
            }
            if !found {
                return Err(format!(
                    "no location of `{aut_name}` starts with `{loc_prefix}`"
                ));
            }
        }
        Ok(LocationReachMonitor {
            clock_names: Vec::new(),
            targets,
        })
    }
}

impl Monitor for LocationReachMonitor {
    fn clock_names(&self) -> &[String] {
        &self.clock_names
    }

    fn initial_state(&self) -> MonitorState {
        Vec::new()
    }

    fn fold_bounds(&self, _kmax: &mut [i64], _lu: &mut LuBounds) {}

    fn on_transition(
        &self,
        ctx: &TransitionCtx<'_>,
        _state: &mut MonitorState,
        _zone: &mut Dbm,
    ) -> Result<(), MonitorViolation> {
        for (ti, (ai, li, label)) in self.targets.iter().enumerate() {
            if *ai == ctx.aut && *li == ctx.dst {
                return Err(MonitorViolation {
                    class: 0,
                    index: ti as u32,
                    message: format!("location `{label}` is reachable"),
                    trace_note: None,
                    witness: None,
                });
            }
        }
        Ok(())
    }

    fn reduce_activity(&self, _locs: &[u32], _state: &MonitorState, _zone: &mut Dbm) {}

    fn check_settled(
        &self,
        locs: &[u32],
        _state: &MonitorState,
        _zone: &Dbm,
    ) -> Result<(), MonitorViolation> {
        for (ti, (ai, li, label)) in self.targets.iter().enumerate() {
            if locs[*ai] as usize == *li {
                return Err(MonitorViolation {
                    class: 0,
                    index: ti as u32,
                    message: format!("location `{label}` is reachable"),
                    trace_note: None,
                    witness: None,
                });
            }
        }
        Ok(())
    }

    /// Reachability only inspects the locations of target automata:
    /// permuting any set of automata that contains no target is
    /// invisible to both hooks (this monitor has no clocks and no
    /// state).
    fn permutation_invariant(&self, members: &[usize]) -> bool {
        members
            .iter()
            .all(|&ai| self.targets.iter().all(|(ta, _, _)| *ta != ai))
    }

    /// Reachability has no tunable constants: the profile is the target
    /// set itself, so a proof transfers iff the targets are identical.
    fn warm_profile(&self) -> Option<WarmProfile> {
        let mut d = Digest::new();
        d.write_str("location-reach");
        d.write_u64(self.targets.len() as u64);
        for (ai, li, label) in &self.targets {
            d.write_u64(*ai as u64);
            d.write_u64(*li as u64);
            d.write_str(label);
        }
        Some(WarmProfile {
            structure: d.finish(),
            weaken_lower: Vec::new(),
            weaken_upper: Vec::new(),
        })
    }
}
