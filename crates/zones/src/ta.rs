//! The timed-automata network model the zone engine explores.
//!
//! This is the target of the lowering in [`crate::lower`]: a network of
//! timed automata with integer-tick clock constraints, clock resets,
//! and the lease pattern's communication discipline — wireless events
//! (`??root` receives) that a sender's emission may **deliver or drop**,
//! reliable internal events (`?root` with an in-network sender, always
//! delivered), and external events (`?root` with no in-network sender:
//! driver commands and environment signals, which may occur at any
//! moment).

use crate::dbm::{Bound, Dbm};
use pte_hybrid::Root;
use std::fmt;

/// Comparison relation of a clock atom.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Rel {
    /// `clock ≤ c`.
    Le,
    /// `clock < c`.
    Lt,
    /// `clock ≥ c`.
    Ge,
    /// `clock > c`.
    Gt,
}

/// One atomic clock constraint `clock ⋈ ticks` (clock is a **global**
/// 1-based DBM index).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Atom {
    /// Global clock index (1-based; 0 is the DBM reference).
    pub clock: usize,
    /// Comparison relation.
    pub rel: Rel,
    /// Constant, in ticks.
    pub ticks: i64,
}

impl Atom {
    /// Conjoins this atom onto a DBM (no closure; caller canonicalizes).
    pub fn apply(&self, z: &mut Dbm) {
        match self.rel {
            Rel::Le => z.constrain(self.clock, 0, Bound::le(self.ticks)),
            Rel::Lt => z.constrain(self.clock, 0, Bound::lt(self.ticks)),
            Rel::Ge => z.constrain(0, self.clock, Bound::le(-self.ticks)),
            Rel::Gt => z.constrain(0, self.clock, Bound::lt(-self.ticks)),
        };
    }

    /// Conjoins this atom onto a **canonical** DBM, restoring canonical
    /// form incrementally ([`Dbm::constrain_and_close`], O(n²) instead
    /// of a deferred O(n³) closure). Returns `false` when the atom
    /// empties the zone.
    pub fn apply_and_close(&self, z: &mut Dbm) -> bool {
        match self.rel {
            Rel::Le => z.constrain_and_close(self.clock, 0, Bound::le(self.ticks)),
            Rel::Lt => z.constrain_and_close(self.clock, 0, Bound::lt(self.ticks)),
            Rel::Ge => z.constrain_and_close(0, self.clock, Bound::le(-self.ticks)),
            Rel::Gt => z.constrain_and_close(0, self.clock, Bound::lt(-self.ticks)),
        }
    }

    /// The negation of this atom (`≤` ↔ `>`, `<` ↔ `≥`).
    pub fn negated(&self) -> Atom {
        let rel = match self.rel {
            Rel::Le => Rel::Gt,
            Rel::Lt => Rel::Ge,
            Rel::Ge => Rel::Lt,
            Rel::Gt => Rel::Le,
        };
        Atom { rel, ..*self }
    }

    /// `true` if the (canonical, non-empty) zone has at least one point
    /// satisfying this atom.
    pub fn satisfiable_in(&self, z: &Dbm) -> bool {
        match self.rel {
            Rel::Le => z.satisfies(self.clock, 0, Bound::le(self.ticks)),
            Rel::Lt => z.satisfies(self.clock, 0, Bound::lt(self.ticks)),
            Rel::Ge => z.satisfies(0, self.clock, Bound::le(-self.ticks)),
            Rel::Gt => z.satisfies(0, self.clock, Bound::lt(-self.ticks)),
        }
    }
}

/// Synchronization discipline of an edge.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Sync {
    /// No trigger: fires spontaneously whenever the guard holds (timed /
    /// urgent edges).
    None,
    /// Receive of an event no in-network automaton emits: an *external*
    /// stimulus (driver command, environment signal) that may arrive at
    /// any instant the guard holds.
    External(Root),
    /// Reliable receive of an in-network event: fires exactly when a
    /// matching emission happens (never lost).
    Reliable(Root),
    /// Lossy wireless receive (`??root`): a matching emission is
    /// delivered *or dropped*, nondeterministically.
    Lossy(Root),
}

impl Sync {
    /// The received root, if any.
    pub fn root(&self) -> Option<&Root> {
        match self {
            Sync::None => None,
            Sync::External(r) | Sync::Reliable(r) | Sync::Lossy(r) => Some(r),
        }
    }
}

/// One location of a lowered timed automaton.
#[derive(Clone, Debug)]
pub struct TaLocation {
    /// Display name (base location name plus any folded discrete mode).
    pub name: String,
    /// Conjunctive clock invariant bounding dwell.
    pub invariant: Vec<Atom>,
    /// `true` if time may not elapse here (a discrete-state invariant
    /// evaluated to false in this mode, or a `clock ≤ 0` style freeze is
    /// detected by the engine via `invariant` itself).
    pub frozen: bool,
    /// Risky classification carried over from the hybrid model.
    pub risky: bool,
}

/// One edge of a lowered timed automaton.
#[derive(Clone, Debug)]
pub struct TaEdge {
    /// Source location index (within the owning automaton).
    pub src: usize,
    /// Destination location index.
    pub dst: usize,
    /// Conjunctive clock guard.
    pub guard: Vec<Atom>,
    /// Clock resets `clock := ticks` (global clock indices).
    pub resets: Vec<(usize, i64)>,
    /// Synchronization.
    pub sync: Sync,
    /// Events emitted when the edge fires (delivered or dropped per
    /// [`Sync::Lossy`] receivers).
    pub emits: Vec<Root>,
    /// Urgent edges must fire as soon as enabled; the engine uses them to
    /// escape invariant-expired states.
    pub urgent: bool,
}

/// One lowered automaton.
#[derive(Clone, Debug)]
pub struct TaAutomaton {
    /// Name (matches the hybrid automaton / PTE entity name).
    pub name: String,
    /// Locations.
    pub locations: Vec<TaLocation>,
    /// Edges.
    pub edges: Vec<TaEdge>,
    /// Initial location index.
    pub initial: usize,
}

impl TaAutomaton {
    /// Indices of edges leaving `loc`.
    pub fn edges_from(&self, loc: usize) -> impl Iterator<Item = (usize, &TaEdge)> {
        self.edges
            .iter()
            .enumerate()
            .filter(move |(_, e)| e.src == loc)
    }
}

/// A network of timed automata sharing a global clock space.
#[derive(Clone, Debug)]
pub struct TaNetwork {
    /// Global clock names; clock `i` is DBM index `i + 1`.
    pub clocks: Vec<String>,
    /// The member automata.
    pub automata: Vec<TaAutomaton>,
}

impl TaNetwork {
    /// Number of clocks.
    pub fn clock_count(&self) -> usize {
        self.clocks.len()
    }

    /// Registers an additional global clock (used by the engine for its
    /// PTE observer clocks) and returns its 1-based DBM index.
    pub fn add_clock(&mut self, name: impl Into<String>) -> usize {
        self.clocks.push(name.into());
        self.clocks.len()
    }

    /// Finds an automaton index by name.
    pub fn automaton_by_name(&self, name: &str) -> Option<usize> {
        self.automata.iter().position(|a| a.name == name)
    }

    /// The device-permutation symmetry of this network — computed
    /// structurally on demand ([`crate::symmetry::detect`]), so
    /// construction sites and the clock-map rewrite stay untouched.
    /// Trivial for networks with no interchangeable automaton pair.
    pub fn symmetry(&self) -> crate::symmetry::Symmetry {
        crate::symmetry::detect(self)
    }

    /// The maximal constant (ticks) each clock is compared against
    /// anywhere in the network, indexed like a DBM bound vector
    /// (`result[0] = 0` for the reference). Extra engine-side bounds can
    /// be folded in afterwards.
    pub fn max_constants(&self) -> Vec<i64> {
        let mut k = vec![0i64; self.clock_count() + 1];
        fn fold(k: &mut [i64], a: &Atom) {
            if a.clock < k.len() && a.ticks > k[a.clock] {
                k[a.clock] = a.ticks;
            }
        }
        for aut in &self.automata {
            for loc in &aut.locations {
                for a in &loc.invariant {
                    fold(&mut k, a);
                }
            }
            for e in &aut.edges {
                for a in &e.guard {
                    fold(&mut k, a);
                }
                for (c, v) in &e.resets {
                    if *c < k.len() && *v > k[*c] {
                        k[*c] = *v;
                    }
                }
            }
        }
        k
    }

    /// Direction-split maximal constants for LU-bound extrapolation
    /// ([`crate::dbm::Dbm::extrapolate_lu`]): per clock, `lower` is the
    /// largest constant of any *lower-bound* comparison (`x > c`,
    /// `x ≥ c`) and `upper` the largest of any *upper-bound* comparison
    /// (`x < c`, `x ≤ c`), each indexed like a DBM bound vector. Reset
    /// constants are folded into both directions (a clock pinned at `v`
    /// must stay distinguishable on both sides), which keeps the
    /// abstraction conservative without giving up the split where it
    /// matters — invariants (`x ≤ c`) no longer inflate `lower`, and
    /// one-sided guards no longer inflate the opposite direction.
    /// Pointwise `lower, upper ≤ max_constants()`, so `Extra_LU` with
    /// these vectors is at least as coarse as `Extra_M`.
    pub fn lu_bounds(&self) -> LuBounds {
        let mut lu = LuBounds {
            lower: vec![0i64; self.clock_count() + 1],
            upper: vec![0i64; self.clock_count() + 1],
        };
        for aut in &self.automata {
            for loc in &aut.locations {
                for a in &loc.invariant {
                    lu.fold_atom(a);
                }
            }
            for e in &aut.edges {
                for a in &e.guard {
                    lu.fold_atom(a);
                }
                for (c, v) in &e.resets {
                    lu.fold_both(*c, *v);
                }
            }
        }
        lu
    }

    /// Rewrites the network's global clock space through a clock map
    /// produced by the static analysis
    /// ([`crate::analysis::ClockReduction`]).
    ///
    /// `map` has one entry per 1-based clock index (`map[0]` is the DBM
    /// reference and must be `Some(0)`): `map[i] = Some(r)` renames old
    /// clock `i` to new index `r`, `None` drops it. Several old clocks
    /// may map to the same new index (duplicate-clock merging); the new
    /// clock keeps the name of the **lowest-indexed** member of each
    /// merged group. Dropped clocks must be unread — guard/invariant
    /// atoms over them are discarded (the reduction only drops clocks it
    /// proved unread, so nothing observable is lost) and their resets
    /// vanish. Resets that land on the same new clock after merging are
    /// deduplicated (merged clocks reset together with equal values by
    /// construction).
    pub fn apply_clock_map(&self, map: &[Option<usize>]) -> TaNetwork {
        assert_eq!(map.len(), self.clock_count() + 1, "clock map length");
        assert_eq!(map[0], Some(0), "the DBM reference clock cannot move");
        // New clock names: for each new index, the first (lowest old
        // index) clock mapping to it.
        let new_count = map.iter().flatten().copied().max().unwrap_or(0);
        let mut clocks = vec![String::new(); new_count];
        for (old, m) in map.iter().enumerate().skip(1) {
            if let Some(r) = m {
                if clocks[r - 1].is_empty() {
                    clocks[r - 1] = self.clocks[old - 1].clone();
                }
            }
        }
        let map_atoms = |atoms: &[Atom]| -> Vec<Atom> {
            atoms
                .iter()
                .filter_map(|a| map[a.clock].map(|clock| Atom { clock, ..*a }))
                .collect()
        };
        let automata = self
            .automata
            .iter()
            .map(|aut| TaAutomaton {
                name: aut.name.clone(),
                locations: aut
                    .locations
                    .iter()
                    .map(|l| TaLocation {
                        name: l.name.clone(),
                        invariant: map_atoms(&l.invariant),
                        frozen: l.frozen,
                        risky: l.risky,
                    })
                    .collect(),
                edges: aut
                    .edges
                    .iter()
                    .map(|e| {
                        let mut resets: Vec<(usize, i64)> = Vec::with_capacity(e.resets.len());
                        for &(c, v) in &e.resets {
                            if let Some(r) = map[c] {
                                if !resets.iter().any(|&(rc, _)| rc == r) {
                                    resets.push((r, v));
                                }
                            }
                        }
                        TaEdge {
                            src: e.src,
                            dst: e.dst,
                            guard: map_atoms(&e.guard),
                            resets,
                            sync: e.sync.clone(),
                            emits: e.emits.clone(),
                            urgent: e.urgent,
                        }
                    })
                    .collect(),
                initial: aut.initial,
            })
            .collect();
        TaNetwork { clocks, automata }
    }
}

/// Per-clock lower/upper comparison constants feeding
/// [`crate::dbm::Dbm::extrapolate_lu`]; built by
/// [`TaNetwork::lu_bounds`] and extendable with engine-side observer
/// bounds via [`LuBounds::fold_lower`] / [`LuBounds::fold_upper`].
#[derive(Clone, Debug)]
pub struct LuBounds {
    /// Largest lower-bound comparison constant per clock (DBM-indexed;
    /// entry 0 is the reference).
    pub lower: Vec<i64>,
    /// Largest upper-bound comparison constant per clock (DBM-indexed).
    pub upper: Vec<i64>,
}

impl LuBounds {
    fn fold_atom(&mut self, a: &Atom) {
        match a.rel {
            Rel::Le | Rel::Lt => self.fold_upper(a.clock, a.ticks),
            Rel::Ge | Rel::Gt => self.fold_lower(a.clock, a.ticks),
        }
    }

    /// Raises the lower-comparison constant of `clock` to at least `c`.
    pub fn fold_lower(&mut self, clock: usize, c: i64) {
        if clock < self.lower.len() && c > self.lower[clock] {
            self.lower[clock] = c;
        }
    }

    /// Raises the upper-comparison constant of `clock` to at least `c`.
    pub fn fold_upper(&mut self, clock: usize, c: i64) {
        if clock < self.upper.len() && c > self.upper[clock] {
            self.upper[clock] = c;
        }
    }

    /// Folds `c` into both directions (reset values, equality tests).
    pub fn fold_both(&mut self, clock: usize, c: i64) {
        self.fold_lower(clock, c);
        self.fold_upper(clock, c);
    }
}

impl fmt::Display for TaNetwork {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "TA network: {} automata, {} clocks",
            self.automata.len(),
            self.clocks.len()
        )?;
        for a in &self.automata {
            writeln!(
                f,
                "  {}: {} locations, {} edges",
                a.name,
                a.locations.len(),
                a.edges.len()
            )?;
        }
        Ok(())
    }
}
