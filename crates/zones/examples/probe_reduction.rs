//! Ad-hoc probe: print the static analysis summary for registry-style
//! configurations (kept as a development aid; `pte-lint` is the real
//! surface).

use pte_core::pattern::{build_pattern_system, LeaseConfig};
use pte_zones::{analyze, lower_network};

fn main() {
    for (name, cfg) in [
        ("case-study", LeaseConfig::case_study()),
        ("chain-4", LeaseConfig::chain(4)),
        ("chain-6", LeaseConfig::chain(6)),
    ] {
        for leased in [true, false] {
            let sys = build_pattern_system(&cfg, leased).unwrap();
            let net = lower_network(&sys.automata).unwrap();
            let a = analyze(&net);
            let s = a.stats();
            println!(
                "{name} leased={leased}: clocks {}->{} (dropped {}, merged {}), \
                 unreachable locs {}, E/W/I {}/{}/{}, masks trivial={} shared={}",
                s.clocks_before,
                s.clocks_after,
                s.clocks_dropped,
                s.clocks_merged,
                s.locations_unreachable,
                s.errors,
                s.warnings,
                s.infos,
                a.activity.is_trivial(),
                a.activity.shared,
            );
            for d in &a.diagnostics {
                println!("  {d}");
            }
        }
    }
}
