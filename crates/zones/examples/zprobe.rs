//! Prints the symbolic verdicts for the paper's case-study
//! configuration: a PTE-safety proof for the leased system and a
//! symbolic counter-example for the without-lease baseline.
//!
//! ```sh
//! cargo run --release -p pte-zones --example zprobe
//! ```

use pte_core::pattern::LeaseConfig;
use pte_zones::check_lease_pattern;

fn main() {
    let cfg = LeaseConfig::case_study();

    let t = std::time::Instant::now();
    let leased = check_lease_pattern(&cfg, true).expect("lowering succeeds");
    println!("with lease ({:.2?}):\n{leased}\n", t.elapsed());

    let t = std::time::Instant::now();
    let baseline = check_lease_pattern(&cfg, false).expect("lowering succeeds");
    println!("without lease ({:.2?}):\n{baseline}", t.elapsed());
}
