//! Prints the symbolic verdicts for a registry scenario: a safety proof
//! for the leased system and a symbolic counter-example for the
//! without-lease baseline.
//!
//! ```sh
//! cargo run --release -p pte-zones --example zprobe
//! cargo run --release -p pte-zones --example zprobe -- --scenario chain-4
//! cargo run --release -p pte-zones --example zprobe -- --list
//! cargo run --release -p pte-zones --example zprobe -- --workers 4 --budget 200000
//! ```
//!
//! An unknown `--scenario` exits non-zero after listing the available
//! names.

use pte_tracheotomy::registry;
use pte_zones::{check_lease_pattern_with, Limits};

fn arg_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--list") {
        println!("available scenarios:\n{}", registry::listing());
        return;
    }
    let name = arg_value(&args, "--scenario").unwrap_or_else(|| "case-study".to_string());
    let Some(scenario) = registry::by_name(&name) else {
        eprintln!(
            "unknown scenario `{name}`; available scenarios:\n{}",
            registry::listing()
        );
        std::process::exit(2);
    };
    // The registry's recommended budget concludes every advertised
    // scenario out of the box (`chain-6` settles ≈ 477k states; each
    // recommendation leaves ≥ 2× headroom).
    let limits = Limits {
        max_states: arg_value(&args, "--budget")
            .and_then(|v| v.parse().ok())
            .unwrap_or(scenario.recommended_budget),
        max_workers: arg_value(&args, "--workers")
            .and_then(|v| v.parse().ok())
            .unwrap_or(1),
        ..Limits::default()
    };

    println!(
        "scenario {} (N={}): {}",
        scenario.name, scenario.n, scenario.description
    );
    let t = std::time::Instant::now();
    let leased =
        check_lease_pattern_with(&scenario.config, true, &limits).expect("lowering succeeds");
    println!("with lease ({:.2?}):\n{leased}\n", t.elapsed());

    let t = std::time::Instant::now();
    let baseline =
        check_lease_pattern_with(&scenario.config, false, &limits).expect("lowering succeeds");
    println!("without lease ({:.2?}):\n{baseline}", t.elapsed());
}
