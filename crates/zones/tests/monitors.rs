//! The monitor layer: the engine is property-agnostic, and composing a
//! different [`Monitor`] with the same network checks a different
//! property — here, plain location reachability.

use pte_core::pattern::{build_pattern_system, LeaseConfig};
use pte_zones::ta::{Atom, Rel, Sync, TaAutomaton, TaEdge, TaLocation, TaNetwork};
use pte_zones::{check_monitored, lower_network, Limits, LocationReachMonitor, SymbolicVerdict};

fn case_study_network() -> TaNetwork {
    let sys = build_pattern_system(&LeaseConfig::case_study(), true).expect("case study builds");
    lower_network(&sys.automata).expect("case study lowers")
}

/// Composing a reachability monitor with the case-study network turns
/// the safety engine into a reachability checker: the supervisor's
/// `Lease xi2` location is reachable, and the "counter-example" is a
/// witness trace that actually walks the lease chain there.
#[test]
fn reach_monitor_finds_witness_trace_to_lease_xi2() {
    let net = case_study_network();
    let monitor =
        LocationReachMonitor::new(&net, &[("supervisor", "Lease xi2")]).expect("targets resolve");
    let verdict = check_monitored(&net, &monitor, &Limits::default()).expect("composition checks");
    let SymbolicVerdict::Unsafe(ce) = verdict else {
        panic!("Lease xi2 must be reachable, got {verdict}");
    };
    assert!(ce.violation.contains("Lease xi2"), "{ce}");
    let trace = format!("{ce}");
    assert!(
        trace.contains("Lease xi1"),
        "the witness walks the chain through Lease xi1 first:\n{trace}"
    );
}

/// The same composition is deterministic across worker counts — the
/// engine's determinism guarantee is monitor-independent.
#[test]
fn reach_monitor_witness_identical_across_worker_counts() {
    let net = case_study_network();
    let monitor =
        LocationReachMonitor::new(&net, &[("supervisor", "Abort Lease xi1")]).expect("resolves");
    let render = |workers: usize| {
        let limits = Limits {
            max_workers: workers,
            ..Limits::default()
        };
        format!(
            "{}",
            check_monitored(&net, &monitor, &limits).expect("composition checks")
        )
    };
    let reference = render(1);
    assert!(reference.contains("Abort Lease xi1"), "{reference}");
    for workers in [2usize, 4] {
        assert_eq!(reference, render(workers), "witness drifted at {workers}");
    }
}

/// Unknown automata / locations are rejected up front, not silently
/// never-matched.
#[test]
fn reach_monitor_rejects_unknown_targets() {
    let net = case_study_network();
    assert!(LocationReachMonitor::new(&net, &[("nobody", "Lease xi1")]).is_err());
    assert!(LocationReachMonitor::new(&net, &[("supervisor", "No Such Loc")]).is_err());
}

/// A hand-built two-location automaton: the engine proves a location
/// with no incoming edges unreachable (`Safe`) and finds the guarded
/// location reachable — no PTE anything anywhere in the loop.
#[test]
fn reach_monitor_on_hand_built_network() {
    let net = TaNetwork {
        clocks: vec!["a.c".to_string()],
        automata: vec![TaAutomaton {
            name: "a".to_string(),
            locations: vec![
                TaLocation {
                    name: "Start".to_string(),
                    invariant: vec![Atom {
                        clock: 1,
                        rel: Rel::Le,
                        ticks: 5,
                    }],
                    frozen: false,
                    risky: false,
                },
                TaLocation {
                    name: "Guarded".to_string(),
                    invariant: Vec::new(),
                    frozen: false,
                    risky: false,
                },
                TaLocation {
                    name: "Island".to_string(),
                    invariant: Vec::new(),
                    frozen: false,
                    risky: false,
                },
            ],
            edges: vec![TaEdge {
                src: 0,
                dst: 1,
                guard: vec![Atom {
                    clock: 1,
                    rel: Rel::Ge,
                    ticks: 3,
                }],
                resets: Vec::new(),
                sync: Sync::None,
                emits: Vec::new(),
                urgent: false,
            }],
            initial: 0,
        }],
    };
    let reachable = LocationReachMonitor::new(&net, &[("a", "Guarded")]).expect("resolves");
    let verdict = check_monitored(&net, &reachable, &Limits::default()).expect("checks");
    assert!(verdict.is_unsafe(), "Guarded is reachable: {verdict}");

    let island = LocationReachMonitor::new(&net, &[("a", "Island")]).expect("resolves");
    let verdict = check_monitored(&net, &island, &Limits::default()).expect("checks");
    let SymbolicVerdict::Safe(stats) = &verdict else {
        panic!("Island has no incoming edges, got {verdict}");
    };
    assert!(stats.states >= 2, "Start and Guarded settle: {verdict}");
}
