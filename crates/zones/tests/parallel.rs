//! Determinism and agreement laws of the parallel sharded engine.
//!
//! The engine guarantees that the verdict — and, for falsifications,
//! the exact counter-example — is identical for every worker count and
//! that the two extrapolation operators agree on verdicts. These tests
//! pin both guarantees on the case-study configuration and on
//! randomized lease configurations.

use proptest::prelude::*;
use pte_core::pattern::LeaseConfig;
use pte_hybrid::Time;
use pte_zones::{check_lease_pattern_with, Extrapolation, Limits, SymbolicVerdict};

fn limits(workers: usize, extrapolation: Extrapolation, max_states: usize) -> Limits {
    Limits {
        max_states,
        max_workers: workers,
        extrapolation,
        ..Limits::default()
    }
}

/// A stable fingerprint of a verdict: discriminant plus every
/// content-bearing field that must not depend on scheduling — including
/// the passed-list byte accounting, which pins the *stored zones*
/// themselves (minimal constraint form) as bit-identical across worker
/// counts, not just their number.
fn fingerprint(v: &SymbolicVerdict) -> String {
    match v {
        SymbolicVerdict::Safe(s) => format!(
            "safe states={} passed_bytes={}/{}",
            s.states, s.peak_passed_bytes, s.peak_passed_bytes_full
        ),
        // The full rendered counter-example: kind, step list, zone.
        SymbolicVerdict::Unsafe(_) => format!("unsafe {v}"),
        SymbolicVerdict::OutOfBudget { stats, tripped } => format!(
            "out-of-budget states={} frontier={} tripped={tripped:?}",
            stats.states, stats.frontier
        ),
    }
}

#[test]
fn case_study_verdict_identical_across_worker_counts() {
    let cfg = LeaseConfig::case_study();
    for leased in [true, false] {
        let reference =
            check_lease_pattern_with(&cfg, leased, &limits(1, Extrapolation::ExtraLu, 60_000))
                .expect("case study lowers");
        assert_eq!(reference.is_safe(), leased);
        for workers in [2usize, 4, 8] {
            let parallel = check_lease_pattern_with(
                &cfg,
                leased,
                &limits(workers, Extrapolation::ExtraLu, 60_000),
            )
            .expect("case study lowers");
            assert_eq!(
                fingerprint(&reference),
                fingerprint(&parallel),
                "worker count {workers} changed the verdict (leased={leased})"
            );
        }
    }
}

#[test]
fn counter_example_is_reproducible_across_worker_counts() {
    let cfg = LeaseConfig::case_study();
    let render = |workers: usize| {
        let v = check_lease_pattern_with(
            &cfg,
            false,
            &limits(workers, Extrapolation::ExtraLu, 60_000),
        )
        .expect("case study lowers");
        assert!(v.is_unsafe(), "baseline must be falsified");
        format!("{v}")
    };
    let reference = render(1);
    for workers in [2usize, 3, 4, 8] {
        assert_eq!(
            reference,
            render(workers),
            "witness drifted at {workers} workers"
        );
    }
}

#[test]
fn wall_clock_budget_trips_as_out_of_budget() {
    let cfg = LeaseConfig::case_study();
    let limits = Limits {
        max_wall: Some(std::time::Duration::ZERO),
        ..limits(2, Extrapolation::ExtraLu, 60_000)
    };
    let verdict = check_lease_pattern_with(&cfg, true, &limits).expect("case study lowers");
    let SymbolicVerdict::OutOfBudget { stats, tripped } = &verdict else {
        panic!("a zero wall budget must be inconclusive, got {verdict}");
    };
    assert!(matches!(
        tripped,
        pte_zones::TrippedLimit::WallClock(d) if d.is_zero()
    ));
    assert!(stats.frontier > 0);
    assert!(format!("{verdict}").contains("wall-clock"));
}

/// The compressed passed list reports its footprint and beats
/// full-matrix storage by at least 2× on the case study (the measured
/// factor is higher; the bench prints it).
#[test]
fn passed_list_compression_is_reported_and_substantial() {
    let cfg = LeaseConfig::case_study();
    let verdict = check_lease_pattern_with(&cfg, true, &limits(1, Extrapolation::ExtraLu, 60_000))
        .expect("case study lowers");
    let stats = verdict.stats().expect("safe verdict carries stats");
    assert!(stats.states > 0);
    assert!(
        stats.peak_passed_bytes > 0,
        "peak passed-list bytes must be reported"
    );
    assert!(
        stats.peak_passed_bytes_full >= 2 * stats.peak_passed_bytes,
        "minimal constraint form must at least halve passed-list memory \
         (minimal {} vs full {})",
        stats.peak_passed_bytes,
        stats.peak_passed_bytes_full
    );
}

#[test]
fn extrapolation_operators_agree_and_lu_settles_fewer_states() {
    let cfg = LeaseConfig::case_study();
    let m = check_lease_pattern_with(&cfg, true, &limits(4, Extrapolation::ExtraM, 60_000))
        .expect("case study lowers");
    let lu = check_lease_pattern_with(&cfg, true, &limits(4, Extrapolation::ExtraLu, 60_000))
        .expect("case study lowers");
    assert!(m.is_safe() && lu.is_safe());
    let m_states = m.stats().unwrap().states;
    let lu_states = lu.stats().unwrap().states;
    assert!(
        lu_states < m_states,
        "LU must settle strictly fewer states on the case study \
         (LU {lu_states} vs M {m_states})"
    );
}

/// The N-entity lease-chain lowering is deterministic: building and
/// lowering the same scenario twice yields structurally identical
/// networks (the engine's cross-worker determinism starts from here —
/// a nondeterministic lowering would desynchronize shard hashes).
#[test]
fn chain_lowering_is_deterministic_and_scales() {
    use pte_core::pattern::build_pattern_system;
    let mut prev_clocks = 0;
    for n in 2..=6 {
        let cfg = LeaseConfig::chain(n);
        let lower = || {
            let sys = build_pattern_system(&cfg, true).expect("chain builds");
            pte_zones::lower_network(&sys.automata).expect("chain lowers")
        };
        let net = lower();
        assert_eq!(
            format!("{net:?}"),
            format!("{:?}", lower()),
            "chain({n}) lowering must be reproducible"
        );
        // One supervisor + n devices, every one contributing clocks:
        // the composed network grows strictly with N.
        assert_eq!(net.automata.len(), n + 1, "chain({n}) automata");
        assert!(
            net.clock_count() > prev_clocks,
            "chain({n}) clock space must grow ({} vs {prev_clocks})",
            net.clock_count()
        );
        prev_clocks = net.clock_count();
    }
}

/// Randomized configurations: whatever the verdict (safe, unsafe, or
/// out-of-budget), it must be bit-identical across worker counts, and
/// ExtraM/ExtraLU must agree on conclusive verdicts.
#[derive(Clone, Debug)]
struct RandomConfig {
    t_run1: i64,
    t_enter2: i64,
    leased: bool,
}

fn random_config() -> impl Strategy<Value = RandomConfig> {
    (5i64..50, 2i64..16, 0u8..2).prop_map(|(t_run1, t_enter2, leased)| RandomConfig {
        t_run1,
        t_enter2,
        leased: leased == 1,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn randomized_configs_agree_across_workers(rc in random_config()) {
        let mut cfg = LeaseConfig::case_study();
        // Integer seconds stay microsecond-exact, so the lowering never
        // rejects the randomized constants.
        cfg.t_run[0] = Time::seconds(rc.t_run1 as f64);
        cfg.t_enter[1] = Time::seconds(rc.t_enter2 as f64);

        let budget = 20_000;
        let reference =
            check_lease_pattern_with(&cfg, rc.leased, &limits(1, Extrapolation::ExtraLu, budget))
                .expect("randomized config lowers");
        for workers in [2usize, 4, 8] {
            let parallel = check_lease_pattern_with(
                &cfg,
                rc.leased,
                &limits(workers, Extrapolation::ExtraLu, budget),
            )
            .expect("randomized config lowers");
            prop_assert_eq!(
                fingerprint(&reference),
                fingerprint(&parallel),
                "worker count {} changed the verdict for {:?}",
                workers,
                rc
            );
        }

        // ExtraM agreement on conclusive verdicts (give M more head
        // room: it settles more states than LU for the same system).
        let m = check_lease_pattern_with(
            &cfg,
            rc.leased,
            &limits(4, Extrapolation::ExtraM, 3 * budget),
        )
        .expect("randomized config lowers");
        let conclusive =
            |v: &SymbolicVerdict| matches!(v, SymbolicVerdict::Safe(_) | SymbolicVerdict::Unsafe(_));
        if conclusive(&reference) && conclusive(&m) {
            prop_assert_eq!(
                reference.is_safe(),
                m.is_safe(),
                "extrapolation operators disagree for {:?}",
                rc
            );
        }
    }
}

/// A generated N-entity scenario: a lease chain with perturbed timing
/// constants, either arm. Perturbations keep integer seconds (so the
/// lowering never rejects a constant) but freely break c5/c6 nesting,
/// so generated cases cover safe, unsafe, and out-of-budget verdicts.
#[derive(Clone, Debug)]
struct GeneratedScenario {
    n: usize,
    run_bump: i64,
    enter_bump: i64,
    leased: bool,
}

fn generated_scenario() -> impl Strategy<Value = GeneratedScenario> {
    (2usize..=3, -3i64..8, 0i64..6, 0u8..2).prop_map(|(n, run_bump, enter_bump, leased)| {
        GeneratedScenario {
            n,
            run_bump,
            enter_bump,
            leased: leased == 1,
        }
    })
}

fn generated_config(g: &GeneratedScenario) -> LeaseConfig {
    let mut cfg = LeaseConfig::chain(g.n);
    // Perturb the outermost lease and the innermost enter dwell — the
    // two knobs c6 and c5 are most sensitive to.
    cfg.t_run[0] = Time::seconds((9 + g.run_bump).max(1) as f64);
    let last = g.n - 1;
    cfg.t_enter[last] = Time::seconds((2 * g.n as i64 + g.enter_bump) as f64);
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// Generated N-entity scenarios: the lowering is deterministic, and
    /// the verdict *and* counter-example are bit-identical at 1/2/4/8
    /// workers (the fingerprint covers the rendered witness trace and
    /// the passed-list byte accounting, so stored zones are pinned
    /// too). A deliberately small budget keeps debug-mode runtime down
    /// and makes `OutOfBudget` determinism part of the covered space.
    #[test]
    fn generated_scenarios_deterministic_across_workers(g in generated_scenario()) {
        use pte_core::pattern::build_pattern_system;

        let cfg = generated_config(&g);

        // Lowering determinism on the generated system.
        let lowered = || {
            let sys = build_pattern_system(&cfg, g.leased).expect("generated scenario builds");
            let net = pte_zones::lower_network(&sys.automata).expect("generated scenario lowers");
            format!("{net:?}")
        };
        prop_assert_eq!(lowered(), lowered(), "lowering must be reproducible for {:?}", g);

        // Verdict + counter-example bit-identity across worker counts.
        let budget = 6_000;
        let reference =
            check_lease_pattern_with(&cfg, g.leased, &limits(1, Extrapolation::ExtraLu, budget))
                .expect("generated scenario lowers");
        let reference_fp = format!("{} {}", fingerprint(&reference), reference);
        for workers in [2usize, 4, 8] {
            let parallel = check_lease_pattern_with(
                &cfg,
                g.leased,
                &limits(workers, Extrapolation::ExtraLu, budget),
            )
            .expect("generated scenario lowers");
            prop_assert_eq!(
                &reference_fp,
                &format!("{} {}", fingerprint(&parallel), parallel),
                "worker count {} changed the verdict for {:?}",
                workers,
                g
            );
        }
    }
}
