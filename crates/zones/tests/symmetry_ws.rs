//! Quotient and scheduling laws: the symmetry reduction is a *true*
//! quotient (verdicts — and for falsifications the exact rendered
//! counter-example — are bit-identical to a `symmetry: false` run),
//! and the work-stealing scheduler preserves the same contract at
//! every worker count. The state-count *win* is asserted on the
//! symmetric demo fleet; the lease chains are asymmetric by
//! construction, so the honest assertion there is that the quotient
//! self-disables and changes nothing.

use proptest::prelude::*;
use pte_core::pattern::LeaseConfig;
use pte_zones::reach::check_monitored;
use pte_zones::{
    check_lease_pattern_with, demo_fleet, Extrapolation, Limits, LocationReachMonitor, Scheduler,
    SymbolicVerdict,
};

fn limits(workers: usize, symmetry: bool, scheduler: Scheduler) -> Limits {
    Limits {
        max_states: 120_000,
        max_workers: workers,
        symmetry,
        scheduler,
        ..Limits::default()
    }
}

/// Full exploration of a fleet: no targets, so the checker settles the
/// whole (quotiented) state space and returns Safe with its stats.
fn explore_fleet(devices: usize, l: &Limits) -> pte_zones::SearchStats {
    let net = demo_fleet(devices);
    let monitor = LocationReachMonitor::new(&net, &[]).unwrap();
    match check_monitored(&net, &monitor, l).unwrap() {
        SymbolicVerdict::Safe(stats) => stats,
        other => panic!("fleet exploration must settle: {other}"),
    }
}

/// The acceptance bar: the quotient keeps the verdict and shrinks the
/// passed list by at least 5×. Fleet-3 is the largest size whose
/// *unquotiented* exploration stays test-suite cheap (75 ms vs 29 s
/// for fleet-4); the factor grows with fleet size (5.1× here, 17.9×
/// at fleet-4 — the bench measures that one).
#[test]
fn fleet_quotient_shrinks_passed_list_at_least_5x() {
    let off = explore_fleet(3, &limits(1, false, Scheduler::RoundBarrier));
    let on = explore_fleet(3, &limits(1, true, Scheduler::RoundBarrier));
    assert_eq!(off.orbits, 0, "quotient off must fold nothing");
    assert!(on.orbits > 0, "quotient on must fold orbit members");
    assert!(
        on.states * 5 <= off.states,
        "quotient must shrink the fleet-3 passed list ≥ 5× \
         (on {} vs off {})",
        on.states,
        off.states
    );
}

/// Defaults pinned: symmetry is on by default, the round barrier is
/// the default scheduler — and because every lease chain is
/// asymmetric, the default-on quotient self-disables there, leaving
/// the barrier engine's bit-stable statistics untouched.
#[test]
fn chains_auto_disable_the_quotient_with_identical_stats() {
    let defaults = Limits::default();
    assert!(defaults.symmetry, "symmetry defaults on");
    assert_eq!(defaults.scheduler, Scheduler::RoundBarrier);

    let cfg = LeaseConfig::chain(4);
    let run = |symmetry: bool| {
        let l = Limits {
            max_states: 120_000,
            symmetry,
            ..Limits::default()
        };
        check_lease_pattern_with(&cfg, true, &l).unwrap()
    };
    let (on, off) = (run(true), run(false));
    let (on_stats, off_stats) = (on.stats().unwrap(), off.stats().unwrap());
    assert_eq!(on_stats.orbits, 0, "chain-4 must auto-disable the quotient");
    assert_eq!(
        (on_stats.states, on_stats.peak_passed_bytes),
        (off_stats.states, off_stats.peak_passed_bytes),
        "a self-disabled quotient must not perturb the search"
    );
}

/// A monitor that watches a *device* location breaks orbit invariance,
/// so the quotient self-gates off and the falsification is rendered
/// identically with the knob on or off.
#[test]
fn device_targeting_monitor_gates_the_quotient_off() {
    let net = demo_fleet(4);
    let run = |symmetry: bool| {
        let monitor = LocationReachMonitor::new(&net, &[("device2", "Cooling")]).unwrap();
        let v = check_monitored(
            &net,
            &monitor,
            &limits(1, symmetry, Scheduler::RoundBarrier),
        )
        .unwrap();
        assert!(v.is_unsafe(), "Cooling is reachable: {v}");
        format!("{v}")
    };
    assert_eq!(run(true), run(false));
}

/// A coordinator-targeting monitor *is* orbit-invariant, so the
/// quotient stays active on the violating run — and the deterministic
/// re-search still renders the counter-example bit-identically to a
/// quotient-free run at every worker count.
#[test]
fn quotiented_falsification_matches_unquotiented_text() {
    let net = demo_fleet(3);
    let run = |symmetry: bool, workers: usize| {
        let monitor = LocationReachMonitor::new(&net, &[("coordinator", "Pace")]).unwrap();
        let v = check_monitored(
            &net,
            &monitor,
            &limits(workers, symmetry, Scheduler::RoundBarrier),
        )
        .unwrap();
        assert!(v.is_unsafe(), "Pace is initial, hence reachable: {v}");
        format!("{v}")
    };
    let reference = run(false, 1);
    for workers in [1usize, 2, 4, 8] {
        assert_eq!(reference, run(true, workers), "at {workers} workers");
    }
}

/// Work-stealing determinism on the chain falsification: the verdict
/// and the full rendered counter-example are bit-identical across
/// 1/2/4/8 workers and to the round-barrier reference (the
/// post-minimization re-search pins the witness).
#[test]
fn work_stealing_counter_example_is_bit_identical() {
    let cfg = LeaseConfig::chain(3);
    let run = |workers: usize, scheduler: Scheduler| {
        let v = check_lease_pattern_with(&cfg, false, &limits(workers, true, scheduler)).unwrap();
        assert!(v.is_unsafe(), "baseline chain must be falsified: {v}");
        format!("{v}")
    };
    let reference = run(1, Scheduler::RoundBarrier);
    for workers in [1usize, 2, 4, 8] {
        assert_eq!(
            reference,
            run(workers, Scheduler::WorkStealing),
            "witness drifted at {workers} work-stealing workers"
        );
    }
}

/// Work-stealing proofs agree with the barrier engine on the leased
/// arm (Safe both ways, same settled-state count — subsumption is
/// order-insensitive on this model), and the fleet exploration
/// composes both accelerations.
#[test]
fn work_stealing_proof_agrees_with_barrier() {
    let cfg = LeaseConfig::chain(3);
    let barrier =
        check_lease_pattern_with(&cfg, true, &limits(4, true, Scheduler::RoundBarrier)).unwrap();
    assert!(barrier.is_safe());
    for workers in [1usize, 2, 4] {
        let ws =
            check_lease_pattern_with(&cfg, true, &limits(workers, true, Scheduler::WorkStealing))
                .unwrap();
        assert!(ws.is_safe(), "work-stealing proof at {workers}: {ws}");
    }

    // Both accelerations at once on the symmetric fleet: verdict Safe,
    // quotient engaged (orbits folded) under the stealing scheduler.
    let both = explore_fleet(3, &limits(4, true, Scheduler::WorkStealing));
    assert!(both.orbits > 0, "quotient must engage under work-stealing");
    let off = explore_fleet(3, &limits(1, false, Scheduler::RoundBarrier));
    assert!(
        both.states <= off.states,
        "quotiented WS exploration cannot settle more states than the \
         unquotiented barrier one ({} vs {})",
        both.states,
        off.states
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The quotient is a true quotient on every fleet size and worker
    /// count: Safe either way, never more states with it on, and the
    /// orbit tally exactly accounts for the fold (states_on + folds
    /// covers every successor the unquotiented engine would have had
    /// to store or subsume — weaker ≤ form asserted, since subsumption
    /// interleaves).
    #[test]
    fn fleet_quotient_is_sound_for_all_sizes(
        devices in 2usize..4,
        workers_exp in 0u32..3,
    ) {
        let workers = 1usize << workers_exp;
        let on = explore_fleet(devices, &limits(workers, true, Scheduler::RoundBarrier));
        let off = explore_fleet(devices, &limits(workers, false, Scheduler::RoundBarrier));
        prop_assert!(on.orbits > 0);
        prop_assert!(on.states <= off.states);
        prop_assert_eq!(off.orbits, 0);
    }

    /// Randomized 2-device configurations: work-stealing agrees with
    /// the round barrier on the verdict, and renders falsifications
    /// identically.
    #[test]
    fn randomized_configs_agree_across_schedulers(
        t_run1 in 5i64..50,
        t_enter2 in 2i64..16,
        leased_bit in 0u8..2,
    ) {
        let leased = leased_bit == 1;
        use pte_hybrid::Time;
        let mut cfg = LeaseConfig::case_study();
        cfg.t_run[0] = Time::seconds(t_run1 as f64);
        cfg.t_enter[1] = Time::seconds(t_enter2 as f64);
        let mut l = limits(1, true, Scheduler::RoundBarrier);
        l.max_states = 20_000;
        l.extrapolation = Extrapolation::ExtraLu;
        let reference = check_lease_pattern_with(&cfg, leased, &l).unwrap();
        for workers in [2usize, 4] {
            let mut ws = l.clone();
            ws.max_workers = workers;
            ws.scheduler = Scheduler::WorkStealing;
            let v = check_lease_pattern_with(&cfg, leased, &ws).unwrap();
            prop_assert_eq!(reference.is_safe(), v.is_safe());
            prop_assert_eq!(reference.is_unsafe(), v.is_unsafe());
            if reference.is_unsafe() {
                prop_assert_eq!(format!("{reference}"), format!("{v}"));
            }
        }
    }
}
