//! Static model analysis: lint fixtures, clock-reduction fixtures, and
//! reduced-vs-unreduced agreement on perturbed chains.
//!
//! The fixtures are deliberately *broken* models — an unreachable
//! location, a statically unsatisfiable guard — that `pte-lint` (which
//! renders exactly the [`analyze`] output asserted here) must flag
//! with the right severity, plus a clean model that must lint to zero
//! diagnostics. The agreement proptests pin the PR's hard correctness
//! requirement: verdicts and counter-example text are bit-identical
//! with clock reduction on and off, at every worker count.

use proptest::prelude::*;
use pte_core::pattern::LeaseConfig;
use pte_zones::ta::{Atom, Rel, Sync, TaAutomaton, TaEdge, TaLocation, TaNetwork};
use pte_zones::{analyze, check_lease_pattern_with, Limits, Severity, SymbolicVerdict};

fn loc(name: &str, invariant: Vec<Atom>) -> TaLocation {
    TaLocation {
        name: name.to_string(),
        invariant,
        frozen: false,
        risky: false,
    }
}

fn edge(src: usize, dst: usize, guard: Vec<Atom>, resets: Vec<(usize, i64)>) -> TaEdge {
    TaEdge {
        src,
        dst,
        guard,
        resets,
        sync: Sync::None,
        emits: Vec::new(),
        urgent: false,
    }
}

fn atom(clock: usize, rel: Rel, ticks: i64) -> Atom {
    Atom { clock, rel, ticks }
}

fn single(
    name: &str,
    clocks: &[&str],
    locations: Vec<TaLocation>,
    edges: Vec<TaEdge>,
) -> TaNetwork {
    TaNetwork {
        clocks: clocks.iter().map(|c| c.to_string()).collect(),
        automata: vec![TaAutomaton {
            name: name.to_string(),
            locations,
            edges,
            initial: 0,
        }],
    }
}

/// Fixture 1: a location no edge reaches. `pte-lint` must flag it as a
/// warning — and nothing else in the model lints.
#[test]
fn unreachable_location_fixture_warns() {
    let net = single(
        "m",
        &["m.x"],
        vec![
            loc("Start", vec![atom(1, Rel::Le, 10)]),
            loc("Work", Vec::new()),
            loc("Orphan", Vec::new()),
        ],
        vec![edge(0, 1, vec![atom(1, Rel::Ge, 2)], vec![(1, 0)])],
    );
    let a = analyze(&net);
    let hits: Vec<_> = a
        .diagnostics
        .iter()
        .filter(|d| d.code == "unreachable-location")
        .collect();
    assert_eq!(hits.len(), 1, "exactly Orphan: {:?}", a.diagnostics);
    assert_eq!(hits[0].severity, Severity::Warning);
    assert_eq!(hits[0].site.as_deref(), Some("Orphan"));
    assert!(!a.has_errors(), "{:?}", a.diagnostics);
    assert_eq!(a.stats().locations_unreachable, 1);
}

/// Fixture 2: a guard demanding `x ≥ 8` under a source invariant
/// capping `x ≤ 5` — statically impossible, the lint's only
/// error-severity finding (and what the CI gate fails on).
#[test]
fn unsatisfiable_guard_fixture_errors() {
    let net = single(
        "m",
        &["m.x"],
        vec![
            loc("Start", vec![atom(1, Rel::Le, 5)]),
            loc("End", Vec::new()),
        ],
        vec![
            edge(0, 1, vec![atom(1, Rel::Ge, 8)], Vec::new()),
            // A live escape so End itself stays reachable.
            edge(0, 1, vec![atom(1, Rel::Ge, 1)], Vec::new()),
        ],
    );
    let a = analyze(&net);
    let errors: Vec<_> = a
        .diagnostics
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .collect();
    assert_eq!(errors.len(), 1, "{:?}", a.diagnostics);
    assert_eq!(errors[0].code, "unsat-guard");
    assert!(
        errors[0].message.contains("source invariant"),
        "the guard alone is satisfiable; the invariant kills it: {}",
        errors[0].message
    );
    assert!(a.has_errors());

    // Self-contradictory variant: `x ≥ 8 ∧ x < 8` with no invariant.
    let net = single(
        "m",
        &["m.x"],
        vec![loc("Start", Vec::new()), loc("End", Vec::new())],
        vec![edge(
            0,
            1,
            vec![atom(1, Rel::Ge, 8), atom(1, Rel::Lt, 8)],
            Vec::new(),
        )],
    );
    let a = analyze(&net);
    assert!(a.has_errors());
    let d = a
        .diagnostics
        .iter()
        .find(|d| d.code == "unsat-guard")
        .expect("flagged");
    assert!(d.message.contains("contradictory"), "{}", d.message);
}

/// A clean model lints to zero diagnostics of any severity.
#[test]
fn clean_model_lints_empty() {
    let net = single(
        "m",
        &["m.x"],
        vec![
            loc("Start", vec![atom(1, Rel::Le, 10)]),
            loc("Work", vec![atom(1, Rel::Le, 4)]),
        ],
        vec![
            edge(0, 1, vec![atom(1, Rel::Ge, 2)], vec![(1, 0)]),
            edge(1, 0, Vec::new(), vec![(1, 0)]),
        ],
    );
    let a = analyze(&net);
    assert!(a.diagnostics.is_empty(), "{:?}", a.diagnostics);
    assert!(a.reduction.is_identity());
    assert_eq!(a.stats().clocks_before, a.stats().clocks_after);
}

/// Clock-reduction fixture: one clock nothing reads (dropped) and two
/// clocks always reset together by the same edges (merged) — the
/// lowered model keeps 1 of 3, and the info diagnostics say why.
#[test]
fn reduction_drops_unread_and_merges_duplicate_clocks() {
    let net = single(
        "m",
        &["m.read", "m.twin", "m.noise"],
        vec![
            loc("A", vec![atom(1, Rel::Le, 9)]),
            loc("B", vec![atom(2, Rel::Le, 9)]),
        ],
        vec![
            // Both edges reset clocks 1 and 2 together (same value) and
            // clock 3 on one of them; nothing ever reads clock 3.
            edge(0, 1, Vec::new(), vec![(1, 0), (2, 0), (3, 0)]),
            edge(1, 0, vec![atom(2, Rel::Ge, 1)], vec![(1, 0), (2, 0)]),
        ],
    );
    let a = analyze(&net);
    let s = a.stats();
    assert_eq!(
        (
            s.clocks_before,
            s.clocks_after,
            s.clocks_dropped,
            s.clocks_merged
        ),
        (3, 1, 1, 1),
        "{:?}",
        a.diagnostics
    );
    assert!(a.diagnostics.iter().any(|d| d.code == "unread-clock"));
    assert!(a.diagnostics.iter().any(|d| d.code == "duplicate-clock"));

    // The reduced network really shrinks, and re-analyzing it finds
    // nothing further (the reduction is idempotent).
    let reduced = a.reduction.apply(&net);
    assert_eq!(reduced.clock_count(), 1);
    assert!(analyze(&reduced).reduction.is_identity());
}

/// The paper's chain models are clock-irreducible *globally* (every
/// clock is live during the innermost nested lease), while their
/// per-location activity masks are non-trivial — the documented honest
/// finding the engine's measured win rests on.
#[test]
fn chain_models_are_globally_irreducible_but_have_dead_clocks() {
    for n in [2usize, 4] {
        let sys = pte_core::pattern::build_pattern_system(&LeaseConfig::chain(n), true)
            .expect("chain builds");
        let net = pte_zones::lower_network(&sys.automata).expect("chain lowers");
        let a = analyze(&net);
        assert!(a.reduction.is_identity(), "chain-{n} must not reduce");
        assert!(
            !a.activity.is_trivial(),
            "chain-{n} must have per-location dead clocks"
        );
        assert!(!a.has_errors(), "registry models must pass the lint gate");
    }
}

/// Runs one arm of a chain config at one worker count, reduction on or
/// off, and renders the verdict.
fn run(cfg: &LeaseConfig, leased: bool, workers: usize, reduce: bool) -> SymbolicVerdict {
    let limits = Limits {
        max_states: 80_000,
        max_workers: workers,
        reduce_clocks: reduce,
        ..Limits::default()
    };
    check_lease_pattern_with(cfg, leased, &limits).expect("chain config checks")
}

/// Perturbs a chain config by microsecond-exact 0.1 s steps — enough to
/// flip some configurations unsafe, so both verdict polarities are
/// exercised.
fn perturbed(n: usize, d_wait: i32, d_run: i32, d_exit: i32) -> LeaseConfig {
    let mut cfg = LeaseConfig::chain(n);
    let bump = |t: &mut pte_hybrid::Time, d: i32| {
        *t = pte_hybrid::Time::seconds((t.as_secs_f64() + d as f64 * 0.1).max(0.1));
    };
    bump(&mut cfg.t_wait_max, d_wait);
    let last = cfg.t_run.len() - 1;
    bump(&mut cfg.t_run[last], d_run);
    bump(&mut cfg.t_exit[0], d_exit);
    cfg
}

proptest! {
    // Each case runs up to four searches (two modes × both when the
    // leased arm is drawn); keep the count low enough for tier-1.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The PR's hard requirement, sampled: on perturbed chains the
    /// reduced and unreduced engines agree on the verdict kind, and
    /// falsifications render byte-identical counter-example text, at
    /// every worker count in {1, 2, 4, 8}.
    #[test]
    fn reduced_and_unreduced_agree_on_perturbed_chains(
        // Leased proofs explore the full zone graph, so the arm decides
        // how large a chain stays debug-affordable: baselines falsify
        // at shallow depth even at n = 6, leased proofs cap at n = 3.
        n_raw in 2usize..=6,
        leased_raw in 0usize..2,
        widx in 0usize..4,
        d_wait in -2i32..3,
        d_run in -3i32..4,
        d_exit in -1i32..2,
    ) {
        let leased = leased_raw == 1;
        let n = if leased { 2 + (n_raw & 1) } else { n_raw };
        let workers = [1usize, 2, 4, 8][widx];
        let cfg = perturbed(n, d_wait, d_run, d_exit);
        let reduced = run(&cfg, leased, workers, true);
        let unreduced = run(&cfg, leased, workers, false);
        prop_assert_eq!(
            std::mem::discriminant(&reduced),
            std::mem::discriminant(&unreduced),
            "verdict kind diverged (n={}, leased={}, workers={}): {} vs {}",
            n, leased, workers, reduced, unreduced
        );
        if let (SymbolicVerdict::Unsafe(a), SymbolicVerdict::Unsafe(b)) = (&reduced, &unreduced) {
            prop_assert_eq!(
                format!("{a}"),
                format!("{b}"),
                "counter-example text diverged (n={}, workers={})",
                n, workers
            );
        }
    }
}

/// The headline agreement pinned deterministically (not sampled): the
/// unperturbed chain-3 proof and the chain-4 falsification agree
/// across modes at 1 and 8 workers, counter-example text included.
#[test]
fn chain_agreement_pinned() {
    let safe_cfg = LeaseConfig::chain(3);
    let unsafe_cfg = LeaseConfig::chain(4);
    for workers in [1usize, 8] {
        assert!(run(&safe_cfg, true, workers, true).is_safe());
        assert!(run(&safe_cfg, true, workers, false).is_safe());
        let (a, b) = (
            run(&unsafe_cfg, false, workers, true),
            run(&unsafe_cfg, false, workers, false),
        );
        let (SymbolicVerdict::Unsafe(a), SymbolicVerdict::Unsafe(b)) = (&a, &b) else {
            panic!("chain-4 baseline must falsify: {a} / {b}");
        };
        assert_eq!(
            format!("{a}"),
            format!("{b}"),
            "CE text at {workers} workers"
        );
    }
}
