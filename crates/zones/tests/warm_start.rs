//! Warm-start soundness at the engine level: a captured passed-list
//! artifact transfers a chain-2 proof to relaxed-safeguard
//! re-verifications, and *every* strengthening or model edit falls
//! back to a cold search (`warm_seeded == 0`). Cross-worker-count
//! bit-identity of cold vs warm verdicts lives in `pte-verify`'s API
//! tests; this file pins the gates themselves.

use pte_core::pattern::LeaseConfig;
use pte_core::rules::PairSpec;
use pte_hybrid::Time;
use pte_zones::{check_lease_pattern_with, new_sink, Limits, PassedArtifact, SymbolicVerdict};
use std::sync::Arc;

/// Runs the leased chain-2 proof with `limits`, returning the verdict.
fn run(cfg: &LeaseConfig, limits: &Limits) -> SymbolicVerdict {
    check_lease_pattern_with(cfg, true, limits).expect("chain-2 builds and lowers")
}

/// Cold run with capture: proves safe and yields the artifact.
fn capture_chain2(cfg: &LeaseConfig) -> (PassedArtifact, usize) {
    let sink = new_sink();
    let limits = Limits {
        capture: Some(sink.clone()),
        ..Limits::default()
    };
    let verdict = run(cfg, &limits);
    let SymbolicVerdict::Safe(stats) = verdict else {
        panic!("chain-2 leased must prove safe, got {verdict}");
    };
    assert_eq!(stats.warm_seeded, 0, "a cold run seeds nothing");
    let art = sink
        .lock()
        .take()
        .expect("safe PTE run captures an artifact");
    assert_eq!(
        art.entries.len(),
        stats.states,
        "one artifact entry per settled state"
    );
    (art, stats.states)
}

fn warm_limits(art: &PassedArtifact) -> Limits {
    Limits {
        warm_start: Some(Arc::new(art.clone())),
        ..Limits::default()
    }
}

/// The seeded count of a verdict (`0` = the run was cold).
fn seeded(v: &SymbolicVerdict) -> usize {
    v.stats().map(|s| s.warm_seeded).unwrap_or(0)
}

#[test]
fn identical_config_warm_starts_and_survives_serialization() {
    let cfg = LeaseConfig::chain(2);
    let (art, states) = capture_chain2(&cfg);

    // Round-trip through the wire format before warming from it — the
    // warm path consumes exactly what the disk tier will store.
    let art = PassedArtifact::from_bytes(&art.to_bytes()).expect("round trip");

    let verdict = run(&cfg, &warm_limits(&art));
    assert!(verdict.is_safe(), "{verdict}");
    assert_eq!(seeded(&verdict), states, "full proof transfer");
}

#[test]
fn relaxed_safeguards_warm_start_and_chain_transitively() {
    let cfg = LeaseConfig::chain(2);
    let (art, states) = capture_chain2(&cfg);

    // Smaller T^min_risky / T^min_safe only weaken the property
    // (violation predicates are `r < margin`), so the proof transfers.
    let mut relaxed = cfg.clone();
    relaxed.safeguards = vec![PairSpec::new(Time::seconds(0.5), Time::seconds(0.25))];
    let sink = new_sink();
    let mut limits = warm_limits(&art);
    limits.capture = Some(sink.clone());
    let verdict = run(&relaxed, &limits);
    assert!(verdict.is_safe(), "{verdict}");
    assert_eq!(seeded(&verdict), states);

    // The warm run passed the ORIGINAL artifact through: a further
    // relaxation still warms, and a revert past the original does not.
    let passed = sink
        .lock()
        .take()
        .expect("warm run re-exposes its artifact");
    assert_eq!(passed, art, "pass-through, not re-capture");
    let mut more = relaxed.clone();
    more.safeguards = vec![PairSpec::new(Time::seconds(0.25), Time::seconds(0.25))];
    assert_eq!(seeded(&run(&more, &warm_limits(&passed))), states);
}

#[test]
fn strengthened_monitor_falls_back_to_cold() {
    let cfg = LeaseConfig::chain(2);
    let (art, _) = capture_chain2(&cfg);

    // A larger margin strengthens the property: the old proof does not
    // cover it, so the engine must re-explore (and whatever verdict
    // the cold search reaches is bit-identical to never having had an
    // artifact — compare against a fresh run).
    let mut tightened = cfg.clone();
    tightened.safeguards = vec![PairSpec::new(Time::seconds(1.5), Time::seconds(0.5))];
    let warm = run(&tightened, &warm_limits(&art));
    assert_eq!(seeded(&warm), 0, "strengthened monitor must run cold");
    let cold = run(&tightened, &Limits::default());
    assert_eq!(format!("{warm}"), format!("{cold}"));
}

#[test]
fn network_timing_delta_falls_back_to_cold() {
    let cfg = LeaseConfig::chain(2);
    let (art, _) = capture_chain2(&cfg);

    // Any network constant change — even slack-preserving — invalidates
    // the elementwise tick comparison: always cold.
    let mut shifted = cfg.clone();
    shifted.t_run[1] = Time::seconds(4.5);
    let warm = run(&shifted, &warm_limits(&art));
    assert_eq!(seeded(&warm), 0, "network timing delta must run cold");
}

#[test]
fn corrupt_entries_fall_back_to_cold() {
    let cfg = LeaseConfig::chain(2);
    let (art, _) = capture_chain2(&cfg);

    // Structural damage that still matches every digest (the digests
    // cover the model, not the entries): per-entry validation rejects.
    let mut bad = art.clone();
    bad.entries[0].locs = vec![9999; bad.entries[0].locs.len()];
    assert_eq!(seeded(&run(&cfg, &warm_limits(&bad))), 0);

    let mut empty = art.clone();
    empty.entries.clear();
    assert_eq!(seeded(&run(&cfg, &warm_limits(&empty))), 0);
}
