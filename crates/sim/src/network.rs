//! Event routing between automata, and the channel abstraction.
//!
//! When an automaton fires an edge carrying `!root`, the event is
//! broadcast:
//!
//! * receivers whose edges carry `?root` (reliable) observe it at the same
//!   instant — this models wired/intra-entity links such as the SpO2
//!   sensor wired to the supervisor;
//! * receivers whose edges carry `??root` (lossy) observe it only if the
//!   [`Channel`] for the (sender → receiver) link delivers it, possibly
//!   with delay — this models the wireless up/downlinks of Section II-B,
//!   whose packets "can be arbitrarily lost".
//!
//! Concrete wireless channel models (Bernoulli, Gilbert–Elliott, duty-cycle
//! interferer, bit-error + CRC) live in `pte-wireless`; this module defines
//! the trait, a perfect channel, and the per-link routing table.

use pte_hybrid::{Root, Time};
use std::collections::HashMap;
use std::fmt;

/// A single event transmission over a lossy link.
#[derive(Clone, Debug, PartialEq)]
pub struct Message {
    /// The event root being communicated.
    pub root: Root,
    /// Index of the sending automaton within the hybrid system.
    pub sender: usize,
    /// Index of the receiving automaton.
    pub receiver: usize,
    /// Monotone per-run sequence number.
    pub seq: u64,
    /// Time the event was emitted.
    pub sent_at: Time,
}

/// Outcome of handing a message to a channel.
#[derive(Clone, Debug, PartialEq)]
pub enum Delivery {
    /// The message will arrive at the given time (`>= sent_at`).
    Delivered {
        /// Arrival time at the receiver.
        at: Time,
    },
    /// The message is lost (never arrives).
    Dropped {
        /// Human-readable loss cause (for traces/statistics).
        reason: DropReason,
    },
}

/// Why a channel dropped a message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DropReason {
    /// Random erasure (fading, collision, …).
    Erasure,
    /// The packet arrived with bit errors and failed its checksum.
    ChecksumFailed,
    /// An interference burst overlapped the transmission.
    Interference,
    /// The topology has no link between the endpoints (e.g. remote-to-
    /// remote in a sink-based star network).
    NoLink,
    /// A scripted/adversarial decision dropped it.
    Scripted,
}

impl fmt::Display for DropReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DropReason::Erasure => write!(f, "erasure"),
            DropReason::ChecksumFailed => write!(f, "checksum failed"),
            DropReason::Interference => write!(f, "interference"),
            DropReason::NoLink => write!(f, "no link"),
            DropReason::Scripted => write!(f, "scripted drop"),
        }
    }
}

/// A (possibly lossy, possibly delaying) unidirectional link.
///
/// Implementations own their RNG state so whole runs are reproducible.
pub trait Channel: Send {
    /// Decides the fate of one message sent at `now`.
    fn transmit(&mut self, msg: &Message, now: Time) -> Delivery;

    /// Short human-readable description (used in statistics output).
    fn describe(&self) -> String {
        "channel".to_string()
    }
}

/// A channel that delivers everything instantly.
#[derive(Clone, Copy, Debug, Default)]
pub struct PerfectChannel;

impl Channel for PerfectChannel {
    fn transmit(&mut self, _msg: &Message, now: Time) -> Delivery {
        Delivery::Delivered { at: now }
    }

    fn describe(&self) -> String {
        "perfect".to_string()
    }
}

/// A channel that drops everything (e.g. a forbidden remote-to-remote
/// link in a sink-based star topology).
#[derive(Clone, Copy, Debug, Default)]
pub struct NoLinkChannel;

impl Channel for NoLinkChannel {
    fn transmit(&mut self, _msg: &Message, _now: Time) -> Delivery {
        Delivery::Dropped {
            reason: DropReason::NoLink,
        }
    }

    fn describe(&self) -> String {
        "no-link".to_string()
    }
}

/// A channel defined by a closure (handy in tests).
pub struct FnChannel<F>(pub F);

impl<F> Channel for FnChannel<F>
where
    F: FnMut(&Message, Time) -> Delivery + Send,
{
    fn transmit(&mut self, msg: &Message, now: Time) -> Delivery {
        (self.0)(msg, now)
    }

    fn describe(&self) -> String {
        "fn".to_string()
    }
}

/// Per-link delivery statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Messages handed to the channel.
    pub sent: u64,
    /// Messages the channel promised to deliver.
    pub delivered: u64,
    /// Messages the channel dropped.
    pub dropped: u64,
}

impl LinkStats {
    /// Empirical loss rate (0 if nothing was sent).
    pub fn loss_rate(&self) -> f64 {
        if self.sent == 0 {
            0.0
        } else {
            self.dropped as f64 / self.sent as f64
        }
    }
}

/// The routing table: a channel per (sender, receiver) pair of automata,
/// with a default for unlisted pairs.
pub struct NetworkBridge {
    links: HashMap<(usize, usize), Box<dyn Channel>>,
    default: Box<dyn Channel>,
    stats: HashMap<(usize, usize), LinkStats>,
}

impl fmt::Debug for NetworkBridge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NetworkBridge")
            .field("links", &self.links.len())
            .field("default", &self.default.describe())
            .finish()
    }
}

impl Default for NetworkBridge {
    fn default() -> Self {
        NetworkBridge::perfect()
    }
}

impl NetworkBridge {
    /// A bridge whose unlisted links are perfect.
    pub fn perfect() -> NetworkBridge {
        NetworkBridge {
            links: HashMap::new(),
            default: Box::new(PerfectChannel),
            stats: HashMap::new(),
        }
    }

    /// Replaces the default channel used for unlisted (sender, receiver)
    /// pairs.
    pub fn set_default(&mut self, ch: Box<dyn Channel>) -> &mut Self {
        self.default = ch;
        self
    }

    /// Installs a channel for the (sender → receiver) link.
    pub fn set_link(&mut self, sender: usize, receiver: usize, ch: Box<dyn Channel>) -> &mut Self {
        self.links.insert((sender, receiver), ch);
        self
    }

    /// Routes one message; records statistics.
    pub fn transmit(&mut self, msg: &Message, now: Time) -> Delivery {
        let key = (msg.sender, msg.receiver);
        let ch = self.links.get_mut(&key).unwrap_or(&mut self.default);
        let delivery = ch.transmit(msg, now);
        let stats = self.stats.entry(key).or_default();
        stats.sent += 1;
        match &delivery {
            Delivery::Delivered { .. } => stats.delivered += 1,
            Delivery::Dropped { .. } => stats.dropped += 1,
        }
        delivery
    }

    /// Statistics for one link.
    pub fn link_stats(&self, sender: usize, receiver: usize) -> LinkStats {
        self.stats
            .get(&(sender, receiver))
            .copied()
            .unwrap_or_default()
    }

    /// Aggregate statistics over all links.
    pub fn total_stats(&self) -> LinkStats {
        let mut total = LinkStats::default();
        for s in self.stats.values() {
            total.sent += s.sent;
            total.delivered += s.delivered;
            total.dropped += s.dropped;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(sender: usize, receiver: usize) -> Message {
        Message {
            root: Root::new("evt"),
            sender,
            receiver,
            seq: 0,
            sent_at: Time::ZERO,
        }
    }

    #[test]
    fn perfect_channel_delivers_now() {
        let mut ch = PerfectChannel;
        let d = ch.transmit(&msg(0, 1), Time::seconds(2.0));
        assert_eq!(
            d,
            Delivery::Delivered {
                at: Time::seconds(2.0)
            }
        );
    }

    #[test]
    fn no_link_drops() {
        let mut ch = NoLinkChannel;
        assert!(matches!(
            ch.transmit(&msg(1, 2), Time::ZERO),
            Delivery::Dropped {
                reason: DropReason::NoLink
            }
        ));
    }

    #[test]
    fn bridge_routes_per_link() {
        let mut bridge = NetworkBridge::perfect();
        bridge.set_link(0, 1, Box::new(NoLinkChannel));
        assert!(matches!(
            bridge.transmit(&msg(0, 1), Time::ZERO),
            Delivery::Dropped { .. }
        ));
        assert!(matches!(
            bridge.transmit(&msg(1, 0), Time::ZERO),
            Delivery::Delivered { .. }
        ));
    }

    #[test]
    fn bridge_collects_stats() {
        let mut bridge = NetworkBridge::perfect();
        bridge.set_link(0, 1, Box::new(NoLinkChannel));
        for _ in 0..4 {
            bridge.transmit(&msg(0, 1), Time::ZERO);
        }
        for _ in 0..6 {
            bridge.transmit(&msg(1, 0), Time::ZERO);
        }
        let s01 = bridge.link_stats(0, 1);
        assert_eq!(s01.sent, 4);
        assert_eq!(s01.dropped, 4);
        assert_eq!(s01.loss_rate(), 1.0);
        let s10 = bridge.link_stats(1, 0);
        assert_eq!(s10.delivered, 6);
        assert_eq!(s10.loss_rate(), 0.0);
        let total = bridge.total_stats();
        assert_eq!(total.sent, 10);
        assert_eq!(total.dropped, 4);
    }

    #[test]
    fn fn_channel_adapts_closures() {
        let mut flag = false;
        let mut ch = FnChannel(move |_m: &Message, now: Time| {
            flag = !flag;
            if flag {
                Delivery::Delivered {
                    at: now + Time::seconds(0.5),
                }
            } else {
                Delivery::Dropped {
                    reason: DropReason::Scripted,
                }
            }
        });
        assert!(matches!(
            ch.transmit(&msg(0, 1), Time::ZERO),
            Delivery::Delivered { .. }
        ));
        assert!(matches!(
            ch.transmit(&msg(0, 1), Time::ZERO),
            Delivery::Dropped { .. }
        ));
    }

    #[test]
    fn empty_stats_default() {
        let bridge = NetworkBridge::perfect();
        assert_eq!(bridge.link_stats(3, 4), LinkStats::default());
        assert_eq!(bridge.link_stats(3, 4).loss_rate(), 0.0);
    }
}
