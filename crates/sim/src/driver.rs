//! External event injection ("human will" and scripted stimuli).
//!
//! Some design-pattern transitions are triggered by the physical world
//! rather than by other automata — the paper's case study emulates the
//! surgeon's request/cancel decisions with exponential random timers
//! (Section V). A [`Driver`] observes the running system through a
//! [`SystemView`] and injects event roots, which the executor delivers
//! *reliably* to every listening automaton (the injection point models the
//! entity's own button/sensor, not a wireless link — lossy behaviour, when
//! required, is modeled by `??` edges downstream).

use pte_hybrid::{HybridAutomaton, LocId, Root, Time};

/// Read-only view of the hybrid system exposed to drivers.
pub struct SystemView<'a> {
    pub(crate) autos: &'a [HybridAutomaton],
    pub(crate) locs: &'a [LocId],
    pub(crate) vars: &'a [Vec<f64>],
    pub(crate) now: Time,
}

impl<'a> SystemView<'a> {
    /// Number of automata in the system.
    pub fn len(&self) -> usize {
        self.autos.len()
    }

    /// `true` if the system has no automata.
    pub fn is_empty(&self) -> bool {
        self.autos.is_empty()
    }

    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Index of the automaton with the given name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.autos.iter().position(|a| a.name == name)
    }

    /// Current location id of automaton `aut`.
    pub fn location(&self, aut: usize) -> LocId {
        self.locs[aut]
    }

    /// Current location name of automaton `aut`.
    pub fn location_name(&self, aut: usize) -> &str {
        self.autos[aut].loc_name(self.locs[aut])
    }

    /// `true` if automaton `aut` currently dwells in a risky location.
    pub fn in_risky(&self, aut: usize) -> bool {
        self.autos[aut].is_risky(self.locs[aut])
    }

    /// Current data state of automaton `aut`.
    pub fn vars(&self, aut: usize) -> &[f64] {
        &self.vars[aut]
    }

    /// Value of a named variable of automaton `aut`.
    pub fn var(&self, aut: usize, name: &str) -> Option<f64> {
        let id = self.autos[aut].var_by_name(name)?;
        self.vars[aut].get(id.0).copied()
    }

    /// The automaton definitions (for name/location lookups).
    pub fn automata(&self) -> &[HybridAutomaton] {
        self.autos
    }
}

/// An external stimulus source polled by the executor at every advance.
pub trait Driver: Send {
    /// Observes the system at `now` and pushes event roots to inject.
    ///
    /// Injections are delivered reliably, at the current instant, to every
    /// automaton listening for the root.
    fn poll(&mut self, view: &SystemView<'_>, out: &mut Vec<Root>);

    /// Driver name (for traces).
    fn name(&self) -> &str {
        "driver"
    }

    /// The next instant at which this driver wants to act, if known. The
    /// executor caps its continuous step at this time so injections land
    /// exactly (otherwise they quantize to the step grid).
    fn next_wakeup(&self, now: Time) -> Option<Time> {
        let _ = now;
        None
    }
}

/// A driver that fires scripted `(time, root)` injections.
#[derive(Debug, Clone)]
pub struct ScriptedDriver {
    script: Vec<(Time, Root)>,
    cursor: usize,
    name: String,
}

impl ScriptedDriver {
    /// Creates a driver from `(time, root)` pairs (sorted internally).
    pub fn new(name: impl Into<String>, mut script: Vec<(Time, Root)>) -> ScriptedDriver {
        script.sort_by_key(|a| a.0);
        ScriptedDriver {
            script,
            cursor: 0,
            name: name.into(),
        }
    }

    /// Remaining injections not yet fired.
    pub fn remaining(&self) -> usize {
        self.script.len() - self.cursor
    }
}

impl Driver for ScriptedDriver {
    fn poll(&mut self, view: &SystemView<'_>, out: &mut Vec<Root>) {
        while self.cursor < self.script.len() && self.script[self.cursor].0 <= view.now() {
            out.push(self.script[self.cursor].1.clone());
            self.cursor += 1;
        }
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn next_wakeup(&self, _now: Time) -> Option<Time> {
        self.script.get(self.cursor).map(|(t, _)| *t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_view<'a>(
        autos: &'a [HybridAutomaton],
        locs: &'a [LocId],
        vars: &'a [Vec<f64>],
        now: Time,
    ) -> SystemView<'a> {
        SystemView {
            autos,
            locs,
            vars,
            now,
        }
    }

    fn one_automaton() -> HybridAutomaton {
        let mut b = HybridAutomaton::builder("a");
        let l = b.location("L");
        let _x = b.var("x", pte_hybrid::VarKind::Continuous, 0.0);
        b.initial(l, None);
        b.build().unwrap()
    }

    #[test]
    fn scripted_driver_fires_in_order() {
        let autos = vec![one_automaton()];
        let locs = vec![LocId(0)];
        let vars = vec![vec![1.5]];
        let mut d = ScriptedDriver::new(
            "s",
            vec![
                (Time::seconds(2.0), Root::new("b")),
                (Time::seconds(1.0), Root::new("a")),
            ],
        );
        let mut out = Vec::new();
        d.poll(
            &dummy_view(&autos, &locs, &vars, Time::seconds(0.5)),
            &mut out,
        );
        assert!(out.is_empty());
        d.poll(
            &dummy_view(&autos, &locs, &vars, Time::seconds(1.0)),
            &mut out,
        );
        assert_eq!(out, vec![Root::new("a")]);
        out.clear();
        d.poll(
            &dummy_view(&autos, &locs, &vars, Time::seconds(5.0)),
            &mut out,
        );
        assert_eq!(out, vec![Root::new("b")]);
        assert_eq!(d.remaining(), 0);
    }

    #[test]
    fn view_accessors() {
        let autos = vec![one_automaton()];
        let locs = vec![LocId(0)];
        let vars = vec![vec![1.5]];
        let v = dummy_view(&autos, &locs, &vars, Time::seconds(3.0));
        assert_eq!(v.len(), 1);
        assert!(!v.is_empty());
        assert_eq!(v.now(), Time::seconds(3.0));
        assert_eq!(v.index_of("a"), Some(0));
        assert_eq!(v.index_of("zzz"), None);
        assert_eq!(v.location_name(0), "L");
        assert!(!v.in_risky(0));
        assert_eq!(v.var(0, "x"), Some(1.5));
        assert_eq!(v.var(0, "nope"), None);
    }
}
