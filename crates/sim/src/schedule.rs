//! Deterministic virtual-time event queue.
//!
//! Pending lossy-channel deliveries are kept in a priority queue ordered by
//! `(delivery time, insertion sequence)`. The sequence number breaks ties
//! deterministically — two events scheduled for the same instant are
//! processed in the order they were scheduled, making whole runs
//! reproducible.

use pte_hybrid::Time;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An item scheduled for future processing.
#[derive(Clone, Debug)]
pub struct Scheduled<T> {
    /// Virtual time at which the item becomes due.
    pub at: Time,
    /// Insertion sequence (tie-breaker).
    pub seq: u64,
    /// The payload.
    pub item: T,
}

impl<T> PartialEq for Scheduled<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for Scheduled<T> {}
impl<T> PartialOrd for Scheduled<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Scheduled<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want earliest first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic future-event queue.
#[derive(Clone, Debug)]
pub struct Schedule<T> {
    heap: BinaryHeap<Scheduled<T>>,
    next_seq: u64,
}

impl<T: Clone> Default for Schedule<T> {
    fn default() -> Self {
        Schedule::new()
    }
}

impl<T: Clone> Schedule<T> {
    /// Creates an empty schedule.
    pub fn new() -> Schedule<T> {
        Schedule {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `item` at time `at`.
    pub fn push(&mut self, at: Time, item: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, item });
    }

    /// The time of the earliest pending item, if any.
    pub fn next_time(&self) -> Option<Time> {
        self.heap.peek().map(|s| s.at)
    }

    /// Pops the earliest item if it is due at or before `now`.
    pub fn pop_due(&mut self, now: Time) -> Option<Scheduled<T>> {
        if self.heap.peek().map(|s| s.at <= now).unwrap_or(false) {
            self.heap.pop()
        } else {
            None
        }
    }

    /// Number of pending items.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` if nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Removes all pending items.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn earliest_first() {
        let mut s: Schedule<&str> = Schedule::new();
        s.push(Time::seconds(3.0), "c");
        s.push(Time::seconds(1.0), "a");
        s.push(Time::seconds(2.0), "b");
        assert_eq!(s.next_time(), Some(Time::seconds(1.0)));
        assert_eq!(s.pop_due(Time::seconds(10.0)).unwrap().item, "a");
        assert_eq!(s.pop_due(Time::seconds(10.0)).unwrap().item, "b");
        assert_eq!(s.pop_due(Time::seconds(10.0)).unwrap().item, "c");
        assert!(s.is_empty());
    }

    #[test]
    fn ties_broken_by_insertion_order() {
        let mut s: Schedule<u32> = Schedule::new();
        for i in 0..100 {
            s.push(Time::seconds(1.0), i);
        }
        for i in 0..100 {
            assert_eq!(s.pop_due(Time::seconds(1.0)).unwrap().item, i);
        }
    }

    #[test]
    fn pop_due_respects_now() {
        let mut s: Schedule<&str> = Schedule::new();
        s.push(Time::seconds(5.0), "later");
        assert!(s.pop_due(Time::seconds(4.999)).is_none());
        assert_eq!(s.len(), 1);
        assert!(s.pop_due(Time::seconds(5.0)).is_some());
    }

    #[test]
    fn clear_empties() {
        let mut s: Schedule<u8> = Schedule::new();
        s.push(Time::seconds(1.0), 1);
        s.push(Time::seconds(2.0), 2);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.next_time(), None);
    }
}
