//! # pte-sim
//!
//! Co-simulation executor for hybrid systems.
//!
//! A *hybrid system* `H` is a collection of hybrid automata executing
//! concurrently and coordinating via event communication (Section II-B of
//! the paper). This crate executes such systems:
//!
//! * [`schedule`] — deterministic virtual-time event queue;
//! * [`network`] — the [`network::Channel`] abstraction routing `!root`
//!   emissions to `?root` (reliable, same-instant) and `??root` (lossy,
//!   channel-mediated) receivers; concrete wireless channel models live in
//!   `pte-wireless`;
//! * [`driver`] — external event injectors for "human will" inputs (the
//!   surgeon of the case study) and scripted stimuli;
//! * [`executor`] — the stepping loop: discrete-transition closure with
//!   zeno protection, urgent timed transitions at exact expiry instants,
//!   invariant-forced switching, and ODE integration with boundary
//!   localization (via `pte-ode`);
//! * [`trace`] — a self-contained record of the trajectory: location
//!   changes, event send/drop/deliver/ignore, and variable samples, with
//!   the interval queries the PTE monitor consumes.
//!
//! Determinism: given the same automata, drivers, channels (with their own
//! seeded RNGs) and configuration, a run is bit-for-bit reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod driver;
pub mod executor;
pub mod network;
pub mod schedule;
pub mod trace;

pub use driver::{Driver, SystemView};
pub use executor::{ExecError, Executor, ExecutorConfig};
pub use network::{Channel, Delivery, Message, NetworkBridge, PerfectChannel};
pub use trace::{Trace, TraceEvent};
