//! Trajectory records and interval queries.
//!
//! A [`Trace`] is a self-contained record of one execution of a hybrid
//! system: it carries enough metadata (automaton/location/variable names,
//! risky flags) that consumers — most importantly the PTE monitor in
//! `pte-core` — need no access to the original automata.

use pte_hybrid::{LocId, Root, Time};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Metadata describing one automaton of the traced system.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AutMeta {
    /// Automaton (entity) name.
    pub name: String,
    /// Location names indexed by `LocId`.
    pub loc_names: Vec<String>,
    /// `risky[loc]` — whether each location is in `V^risky`.
    pub risky: Vec<bool>,
    /// Variable names indexed by `VarId`.
    pub var_names: Vec<String>,
}

/// Why a delivered event produced no transition.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum IgnoreReason {
    /// No edge in the current location listens for the root.
    NoListeningEdge,
    /// A listening edge exists but its guard was false.
    GuardFalse,
}

/// One discrete occurrence in the trajectory.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum TraceEvent {
    /// Initial location of an automaton at trace start.
    Init {
        /// Timestamp (always 0 for the initial marker).
        t: Time,
        /// Automaton index.
        aut: usize,
        /// Initial location.
        loc: LocId,
    },
    /// A discrete transition fired.
    Transition {
        /// Timestamp.
        t: Time,
        /// Automaton index.
        aut: usize,
        /// Source location.
        from: LocId,
        /// Destination location.
        to: LocId,
        /// The receive trigger root, if the edge was event-triggered.
        trigger: Option<Root>,
    },
    /// An event was emitted (broadcast).
    Sent {
        /// Timestamp.
        t: Time,
        /// Emitting automaton.
        aut: usize,
        /// Event root.
        root: Root,
    },
    /// A lossy channel dropped an event.
    Dropped {
        /// Timestamp of the (failed) transmission.
        t: Time,
        /// Event root.
        root: Root,
        /// Sender automaton.
        from: usize,
        /// Intended receiver automaton.
        to: usize,
        /// Loss cause (display form of the channel's `DropReason`).
        reason: String,
    },
    /// A lossy channel delivered an event to a receiver.
    Delivered {
        /// Arrival timestamp.
        t: Time,
        /// Event root.
        root: Root,
        /// Receiving automaton.
        to: usize,
    },
    /// An event reached a receiver but triggered no transition.
    Ignored {
        /// Timestamp.
        t: Time,
        /// Event root.
        root: Root,
        /// Receiving automaton.
        to: usize,
        /// Why nothing fired.
        reason: IgnoreReason,
    },
    /// A driver injected an event.
    Injected {
        /// Timestamp.
        t: Time,
        /// Event root.
        root: Root,
    },
}

impl TraceEvent {
    /// The timestamp of the event.
    pub fn time(&self) -> Time {
        match self {
            TraceEvent::Init { t, .. }
            | TraceEvent::Transition { t, .. }
            | TraceEvent::Sent { t, .. }
            | TraceEvent::Dropped { t, .. }
            | TraceEvent::Delivered { t, .. }
            | TraceEvent::Ignored { t, .. }
            | TraceEvent::Injected { t, .. } => *t,
        }
    }
}

/// A sampled continuous state.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Sample {
    /// Timestamp.
    pub t: Time,
    /// Automaton index.
    pub aut: usize,
    /// Data state variables at `t`.
    pub vars: Vec<f64>,
}

/// A half-open dwelling interval `[enter, exit)` in one location class.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Interval {
    /// Entry time.
    pub start: Time,
    /// Exit time (trace end time if still dwelling when the trace ended).
    pub end: Time,
    /// `true` if the interval was still open when the trace ended.
    pub truncated: bool,
}

impl Interval {
    /// The interval's duration.
    pub fn duration(&self) -> Time {
        self.end - self.start
    }

    /// `true` if `t` lies within `[start, end)`.
    pub fn contains(&self, t: Time) -> bool {
        self.start <= t && t < self.end
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}, {}{})",
            self.start,
            self.end,
            if self.truncated { "+" } else { "" }
        )
    }
}

/// A complete trajectory record.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Trace {
    /// Per-automaton metadata.
    pub meta: Vec<AutMeta>,
    /// Discrete events in chronological order.
    pub events: Vec<TraceEvent>,
    /// Continuous samples (present only if sampling was enabled).
    pub samples: Vec<Sample>,
    /// The virtual time at which the run ended.
    pub end_time: Time,
}

impl Trace {
    /// Index of the automaton with the given name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.meta.iter().position(|m| m.name == name)
    }

    /// The location of automaton `aut` at the very start of the trace.
    pub fn initial_location(&self, aut: usize) -> Option<LocId> {
        self.events.iter().find_map(|e| match e {
            TraceEvent::Init { aut: a, loc, .. } if *a == aut => Some(*loc),
            _ => None,
        })
    }

    /// The sequence of `(time, location)` changes of automaton `aut`,
    /// starting with its initial location at time 0.
    pub fn location_history(&self, aut: usize) -> Vec<(Time, LocId)> {
        let mut out = Vec::new();
        for e in &self.events {
            match e {
                TraceEvent::Init { aut: a, loc, t } if *a == aut => out.push((*t, *loc)),
                TraceEvent::Transition { aut: a, to, t, .. } if *a == aut => out.push((*t, *to)),
                _ => {}
            }
        }
        out
    }

    /// Maximal intervals during which automaton `aut` dwells continuously
    /// in **risky** locations (the "continuous dwelling" of PTE Safety
    /// Rule 1). Consecutive risky locations merge into one interval.
    pub fn risky_intervals(&self, aut: usize) -> Vec<Interval> {
        let meta = &self.meta[aut];
        let history = self.location_history(aut);
        let mut out = Vec::new();
        let mut open: Option<Time> = None;
        for (t, loc) in &history {
            let risky = meta.risky.get(loc.0).copied().unwrap_or(false);
            match (risky, open) {
                (true, None) => open = Some(*t),
                (false, Some(start)) => {
                    out.push(Interval {
                        start,
                        end: *t,
                        truncated: false,
                    });
                    open = None;
                }
                _ => {}
            }
        }
        if let Some(start) = open {
            out.push(Interval {
                start,
                end: self.end_time,
                truncated: true,
            });
        }
        out
    }

    /// Intervals spent in a specific location (by name) of automaton `aut`.
    pub fn location_intervals(&self, aut: usize, loc_name: &str) -> Vec<Interval> {
        let meta = &self.meta[aut];
        let Some(target) = meta.loc_names.iter().position(|n| n == loc_name) else {
            return Vec::new();
        };
        let history = self.location_history(aut);
        let mut out = Vec::new();
        let mut open: Option<Time> = None;
        for (t, loc) in &history {
            let here = loc.0 == target;
            match (here, open) {
                (true, None) => open = Some(*t),
                (false, Some(start)) => {
                    out.push(Interval {
                        start,
                        end: *t,
                        truncated: false,
                    });
                    open = None;
                }
                _ => {}
            }
        }
        if let Some(start) = open {
            out.push(Interval {
                start,
                end: self.end_time,
                truncated: true,
            });
        }
        out
    }

    /// All events with a given root, in order.
    pub fn events_with_root(&self, root: &str) -> Vec<&TraceEvent> {
        self.events
            .iter()
            .filter(|e| match e {
                TraceEvent::Sent { root: r, .. }
                | TraceEvent::Dropped { root: r, .. }
                | TraceEvent::Delivered { root: r, .. }
                | TraceEvent::Ignored { root: r, .. }
                | TraceEvent::Injected { root: r, .. } => r.as_str() == root,
                _ => false,
            })
            .collect()
    }

    /// Count of channel drops recorded in the trace.
    pub fn drop_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Dropped { .. }))
            .count()
    }

    /// Count of transitions taken by automaton `aut`.
    pub fn transition_count(&self, aut: usize) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Transition { aut: a, .. } if *a == aut))
            .count()
    }

    /// Sampled series of one named variable of automaton `aut`, as
    /// `(time, value)` pairs.
    pub fn series(&self, aut: usize, var_name: &str) -> Vec<(Time, f64)> {
        let Some(idx) = self.meta[aut].var_names.iter().position(|n| n == var_name) else {
            return Vec::new();
        };
        self.samples
            .iter()
            .filter(|s| s.aut == aut)
            .map(|s| (s.t, s.vars[idx]))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta() -> Vec<AutMeta> {
        vec![AutMeta {
            name: "a".into(),
            loc_names: vec!["Safe".into(), "Risky1".into(), "Risky2".into()],
            risky: vec![false, true, true],
            var_names: vec!["x".into()],
        }]
    }

    fn tr(t: f64, from: usize, to: usize) -> TraceEvent {
        TraceEvent::Transition {
            t: Time::seconds(t),
            aut: 0,
            from: LocId(from),
            to: LocId(to),
            trigger: None,
        }
    }

    #[test]
    fn risky_intervals_merge_consecutive_risky_locations() {
        let trace = Trace {
            meta: meta(),
            events: vec![
                TraceEvent::Init {
                    t: Time::ZERO,
                    aut: 0,
                    loc: LocId(0),
                },
                tr(1.0, 0, 1), // enter risky
                tr(2.0, 1, 2), // risky -> risky: same dwelling
                tr(3.0, 2, 0), // exit
                tr(5.0, 0, 1), // enter again
            ],
            samples: vec![],
            end_time: Time::seconds(6.0),
        };
        let ivs = trace.risky_intervals(0);
        assert_eq!(ivs.len(), 2);
        assert_eq!(ivs[0].start, Time::seconds(1.0));
        assert_eq!(ivs[0].end, Time::seconds(3.0));
        assert!(!ivs[0].truncated);
        assert_eq!(ivs[0].duration(), Time::seconds(2.0));
        assert_eq!(ivs[1].start, Time::seconds(5.0));
        assert!(ivs[1].truncated, "open at trace end");
        assert_eq!(ivs[1].end, Time::seconds(6.0));
    }

    #[test]
    fn location_intervals_by_name() {
        let trace = Trace {
            meta: meta(),
            events: vec![
                TraceEvent::Init {
                    t: Time::ZERO,
                    aut: 0,
                    loc: LocId(0),
                },
                tr(1.0, 0, 1),
                tr(2.0, 1, 0),
            ],
            samples: vec![],
            end_time: Time::seconds(4.0),
        };
        let safe = trace.location_intervals(0, "Safe");
        assert_eq!(safe.len(), 2);
        assert_eq!(safe[0].end, Time::seconds(1.0));
        assert!(safe[1].truncated);
        assert!(trace.location_intervals(0, "Nowhere").is_empty());
    }

    #[test]
    fn event_queries() {
        let trace = Trace {
            meta: meta(),
            events: vec![
                TraceEvent::Sent {
                    t: Time::seconds(1.0),
                    aut: 0,
                    root: Root::new("go"),
                },
                TraceEvent::Dropped {
                    t: Time::seconds(1.0),
                    root: Root::new("go"),
                    from: 0,
                    to: 1,
                    reason: "erasure".into(),
                },
                TraceEvent::Injected {
                    t: Time::seconds(2.0),
                    root: Root::new("other"),
                },
            ],
            samples: vec![],
            end_time: Time::seconds(3.0),
        };
        assert_eq!(trace.events_with_root("go").len(), 2);
        assert_eq!(trace.drop_count(), 1);
        assert_eq!(trace.transition_count(0), 0);
    }

    #[test]
    fn series_extraction() {
        let trace = Trace {
            meta: meta(),
            events: vec![],
            samples: vec![
                Sample {
                    t: Time::ZERO,
                    aut: 0,
                    vars: vec![0.1],
                },
                Sample {
                    t: Time::seconds(1.0),
                    aut: 0,
                    vars: vec![0.2],
                },
            ],
            end_time: Time::seconds(1.0),
        };
        let s = trace.series(0, "x");
        assert_eq!(s.len(), 2);
        assert_eq!(s[1].1, 0.2);
        assert!(trace.series(0, "y").is_empty());
    }

    #[test]
    fn interval_contains() {
        let iv = Interval {
            start: Time::seconds(1.0),
            end: Time::seconds(2.0),
            truncated: false,
        };
        assert!(iv.contains(Time::seconds(1.0)));
        assert!(iv.contains(Time::seconds(1.999)));
        assert!(!iv.contains(Time::seconds(2.0)));
        assert!(!iv.contains(Time::seconds(0.5)));
    }
}
