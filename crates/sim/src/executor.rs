//! The hybrid-system co-simulation loop.
//!
//! Execution alternates two phases, exactly as in the standard hybrid
//! automaton trajectory semantics:
//!
//! 1. **Discrete closure** (zero time): due channel deliveries and
//!    reliable same-instant events are offered to their receivers; urgent
//!    edges whose guards hold fire; invariant violations force an enabled
//!    egress edge (or raise [`ExecError::TimeBlock`]). The closure repeats
//!    until quiescent, with a cascade budget guarding against zeno runs.
//! 2. **Continuous flow**: every automaton integrates its location's flow
//!    map for a shared step. The step is capped by (a) the configured
//!    maximum, (b) the next scheduled channel delivery, and (c) a
//!    *predicted* boundary crossing for affine guards/invariants (clock
//!    timers fire at exact expiry — no quantization error on the paper's
//!    lease durations). Non-affine boundaries (e.g. the SpO2 model) are
//!    localized by bisection to `bisect_tol`.
//!
//! Determinism: automata are processed in index order, queues are
//! FIFO-within-instant, and channels/drivers own seeded RNGs.

use crate::driver::{Driver, SystemView};
use crate::network::{Delivery, Message, NetworkBridge};
use crate::schedule::Schedule;
use crate::trace::{AutMeta, IgnoreReason, Sample, Trace, TraceEvent};
use pte_hybrid::automaton::VarKind;
use pte_hybrid::{EvalCtx, Expr, HybridAutomaton, LocId, Pred, Root, Time};
use pte_ode::solver::{Scratch, Solver};
use std::collections::{HashMap, VecDeque};
use std::fmt;

/// Executor tuning knobs.
#[derive(Clone, Debug)]
pub struct ExecutorConfig {
    /// Maximum continuous step (default 10 ms).
    pub max_step: Time,
    /// Bisection tolerance for non-affine boundary localization (default
    /// 1 µs).
    pub bisect_tol: Time,
    /// Maximum discrete transitions within a single instant before the run
    /// is declared zeno (default 100 000).
    pub cascade_limit: usize,
    /// If set, variable samples are recorded at this period.
    pub sample_interval: Option<Time>,
    /// ODE stepper for flows.
    pub solver: Solver,
    /// Record per-message channel events (`Dropped`/`Delivered`) in the
    /// trace. Disable for very long runs to save memory.
    pub record_channel_events: bool,
    /// Numeric slack applied to invariant checks (default 1e-5): boundary
    /// localization necessarily overshoots invariant boundaries by a hair,
    /// which must not count as a violation.
    pub invariant_slack: f64,
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        ExecutorConfig {
            max_step: Time::millis(10.0),
            bisect_tol: Time::seconds(1e-6),
            cascade_limit: 100_000,
            sample_interval: None,
            solver: Solver::Rk4,
            record_channel_events: true,
            invariant_slack: 1e-5,
        }
    }
}

/// Execution failures.
#[derive(Clone, Debug, PartialEq)]
pub enum ExecError {
    /// The discrete closure exceeded the cascade budget at one instant.
    Zeno {
        /// Instant at which the cascade diverged.
        t: Time,
        /// Automaton that fired last.
        automaton: String,
    },
    /// An invariant was violated with no enabled egress edge.
    TimeBlock {
        /// Instant of the violation.
        t: Time,
        /// Offending automaton.
        automaton: String,
        /// Location whose invariant is violated.
        location: String,
    },
    /// The system declares no automata.
    Empty,
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Zeno { t, automaton } => {
                write!(f, "zeno cascade at {t} in automaton `{automaton}`")
            }
            ExecError::TimeBlock {
                t,
                automaton,
                location,
            } => write!(
                f,
                "time-block at {t}: `{automaton}` violates invariant of `{location}` with no enabled edge"
            ),
            ExecError::Empty => write!(f, "hybrid system has no automata"),
        }
    }
}

impl std::error::Error for ExecError {}

/// Co-simulator for a hybrid system (a set of concurrent hybrid automata
/// communicating through events).
pub struct Executor {
    autos: Vec<HybridAutomaton>,
    locs: Vec<LocId>,
    vars: Vec<Vec<f64>>,
    kinds: Vec<Vec<VarKind>>,
    /// `flows[aut][loc][var]` — materialized derivative expressions.
    flows: Vec<Vec<Vec<Expr>>>,
    bridge: NetworkBridge,
    pending: Schedule<Message>,
    immediate: VecDeque<(usize, Root)>,
    drivers: Vec<Box<dyn Driver>>,
    /// `listeners[root] = [(aut, lossy)]`.
    listeners: HashMap<Root, Vec<(usize, bool)>>,
    events: Vec<TraceEvent>,
    samples: Vec<Sample>,
    now: Time,
    next_sample: Time,
    msg_seq: u64,
    cfg: ExecutorConfig,
    scratch: Scratch,
}

impl Executor {
    /// Creates an executor over the given automata with default (perfect)
    /// links. Each automaton starts at its *first* declared initial state.
    pub fn new(autos: Vec<HybridAutomaton>, cfg: ExecutorConfig) -> Result<Executor, ExecError> {
        if autos.is_empty() {
            return Err(ExecError::Empty);
        }
        let mut locs = Vec::with_capacity(autos.len());
        let mut vars = Vec::with_capacity(autos.len());
        let mut kinds = Vec::with_capacity(autos.len());
        let mut flows = Vec::with_capacity(autos.len());
        let mut listeners: HashMap<Root, Vec<(usize, bool)>> = HashMap::new();
        let mut events = Vec::new();

        for (i, a) in autos.iter().enumerate() {
            let init = &a.initial[0];
            locs.push(init.loc);
            vars.push(a.initial_data(init));
            kinds.push(a.vars.iter().map(|d| d.kind).collect());
            let per_loc: Vec<Vec<Expr>> = a
                .locations
                .iter()
                .map(|loc| {
                    (0..a.vars.len())
                        .map(|v| loc.flow_of(pte_hybrid::VarId(v), a.vars[v].kind))
                        .collect()
                })
                .collect();
            flows.push(per_loc);
            for (root, lossy) in a.receive_roots() {
                listeners.entry(root).or_default().push((i, lossy));
            }
            events.push(TraceEvent::Init {
                t: Time::ZERO,
                aut: i,
                loc: init.loc,
            });
        }

        Ok(Executor {
            autos,
            locs,
            vars,
            kinds,
            flows,
            bridge: NetworkBridge::perfect(),
            pending: Schedule::new(),
            immediate: VecDeque::new(),
            drivers: Vec::new(),
            listeners,
            events,
            samples: Vec::new(),
            now: Time::ZERO,
            next_sample: Time::ZERO,
            msg_seq: 0,
            cfg,
            scratch: Scratch::new(),
        })
    }

    /// Replaces the network bridge (channel routing table).
    pub fn set_bridge(&mut self, bridge: NetworkBridge) -> &mut Self {
        self.bridge = bridge;
        self
    }

    /// Adds an external event driver.
    pub fn add_driver(&mut self, driver: Box<dyn Driver>) -> &mut Self {
        self.drivers.push(driver);
        self
    }

    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Read-only view of the current system state.
    pub fn view(&self) -> SystemView<'_> {
        SystemView {
            autos: &self.autos,
            locs: &self.locs,
            vars: &self.vars,
            now: self.now,
        }
    }

    /// The network bridge (e.g. for link statistics after a run).
    pub fn bridge(&self) -> &NetworkBridge {
        &self.bridge
    }

    /// Runs until virtual time `end`, then returns the trace.
    pub fn run_until(mut self, end: Time) -> Result<Trace, ExecError> {
        self.poll_drivers();
        self.discrete_closure()?;
        self.maybe_sample();

        while self.now < end {
            let dt = self.advance_step(end)?;
            debug_assert!(dt > Time::ZERO);
            self.poll_drivers();
            self.discrete_closure()?;
            self.maybe_sample();
        }

        Ok(self.into_trace())
    }

    /// Consumes the executor and produces the trace collected so far.
    pub fn into_trace(self) -> Trace {
        let meta = self
            .autos
            .iter()
            .map(|a| AutMeta {
                name: a.name.clone(),
                loc_names: a.locations.iter().map(|l| l.name.clone()).collect(),
                risky: a.locations.iter().map(|l| l.risky).collect(),
                var_names: a.vars.iter().map(|v| v.name.clone()).collect(),
            })
            .collect();
        Trace {
            meta,
            events: self.events,
            samples: self.samples,
            end_time: self.now,
        }
    }

    // ------------------------------------------------------------------
    // Discrete phase
    // ------------------------------------------------------------------

    fn poll_drivers(&mut self) {
        if self.drivers.is_empty() {
            return;
        }
        let mut injected = Vec::new();
        let view = SystemView {
            autos: &self.autos,
            locs: &self.locs,
            vars: &self.vars,
            now: self.now,
        };
        let mut out = Vec::new();
        for d in &mut self.drivers {
            d.poll(&view, &mut out);
            injected.append(&mut out);
        }
        for root in injected {
            self.events.push(TraceEvent::Injected {
                t: self.now,
                root: root.clone(),
            });
            // Injections are local stimuli: delivered reliably to every
            // listener at this instant.
            if let Some(ls) = self.listeners.get(&root) {
                for (aut, _) in ls.clone() {
                    self.immediate.push_back((aut, root.clone()));
                }
            }
        }
    }

    /// Runs the zero-time closure: deliveries, urgent edges, invariant
    /// enforcement, until quiescent.
    fn discrete_closure(&mut self) -> Result<(), ExecError> {
        let mut fires = 0usize;
        loop {
            let mut progress = false;

            // 1. Due lossy deliveries.
            while let Some(item) = self.pending.pop_due(self.now) {
                let msg = item.item;
                if self.cfg.record_channel_events {
                    self.events.push(TraceEvent::Delivered {
                        t: self.now,
                        root: msg.root.clone(),
                        to: msg.receiver,
                    });
                }
                self.attempt_receive(msg.receiver, &msg.root);
                progress = true;
            }

            // 2. Reliable same-instant deliveries.
            while let Some((aut, root)) = self.immediate.pop_front() {
                self.attempt_receive(aut, &root);
                progress = true;
            }

            // 3. Urgent edges.
            'urgent: for i in 0..self.autos.len() {
                let loc = self.locs[i];
                let candidate = self.autos[i]
                    .edges_from(loc)
                    .find(|(_, e)| e.urgent && e.trigger.is_none() && e.guard.holds(&self.vars[i]))
                    .map(|(id, _)| id);
                if let Some(eid) = candidate {
                    self.fire(i, eid.0, None);
                    fires += 1;
                    progress = true;
                    break 'urgent;
                }
            }

            // 4. Invariant enforcement: a violated invariant forces any
            //    enabled trigger-free egress edge.
            if !progress {
                for i in 0..self.autos.len() {
                    let loc = self.locs[i];
                    let inv = &self.autos[i].locations[loc.0].invariant;
                    if !inv.holds_with_slack(&self.vars[i], self.cfg.invariant_slack) {
                        let candidate = self.autos[i]
                            .edges_from(loc)
                            .find(|(_, e)| e.trigger.is_none() && e.guard.holds(&self.vars[i]))
                            .map(|(id, _)| id);
                        match candidate {
                            Some(eid) => {
                                self.fire(i, eid.0, None);
                                fires += 1;
                                progress = true;
                                break;
                            }
                            None => {
                                return Err(ExecError::TimeBlock {
                                    t: self.now,
                                    automaton: self.autos[i].name.clone(),
                                    location: self.autos[i].loc_name(loc).to_string(),
                                });
                            }
                        }
                    }
                }
            }

            if !progress {
                return Ok(());
            }
            if fires > self.cfg.cascade_limit {
                return Err(ExecError::Zeno {
                    t: self.now,
                    automaton: "system".to_string(),
                });
            }
        }
    }

    /// Offers `root` to automaton `aut`; fires the first matching enabled
    /// edge, or records why nothing fired.
    fn attempt_receive(&mut self, aut: usize, root: &Root) {
        let loc = self.locs[aut];
        let mut saw_listening_edge = false;
        let mut chosen: Option<usize> = None;
        for (eid, e) in self.autos[aut].edges_from(loc) {
            if let Some(t) = &e.trigger {
                if t.root() == root {
                    saw_listening_edge = true;
                    if e.guard.holds(&self.vars[aut]) {
                        chosen = Some(eid.0);
                        break;
                    }
                }
            }
        }
        match chosen {
            Some(eid) => self.fire(aut, eid, Some(root.clone())),
            None => self.events.push(TraceEvent::Ignored {
                t: self.now,
                root: root.clone(),
                to: aut,
                reason: if saw_listening_edge {
                    IgnoreReason::GuardFalse
                } else {
                    IgnoreReason::NoListeningEdge
                },
            }),
        }
    }

    /// Fires edge `edge_idx` of automaton `aut`: applies resets, moves the
    /// location counter, records the transition, and routes emissions.
    fn fire(&mut self, aut: usize, edge_idx: usize, trigger: Option<Root>) {
        let edge = self.autos[aut].edges[edge_idx].clone();
        // Resets evaluate against the pre-transition data state.
        let old = self.vars[aut].clone();
        let ctx = EvalCtx::new(&old);
        for (v, expr) in &edge.resets {
            let value = expr.eval(&ctx);
            self.vars[aut][v.0] = value;
        }
        self.locs[aut] = edge.dst;
        self.events.push(TraceEvent::Transition {
            t: self.now,
            aut,
            from: edge.src,
            to: edge.dst,
            trigger,
        });
        for root in &edge.emits {
            self.route_emission(aut, root.clone());
        }
    }

    /// Broadcasts an emitted event to its listeners.
    fn route_emission(&mut self, sender: usize, root: Root) {
        self.events.push(TraceEvent::Sent {
            t: self.now,
            aut: sender,
            root: root.clone(),
        });
        let Some(ls) = self.listeners.get(&root) else {
            return;
        };
        for (receiver, lossy) in ls.clone() {
            if receiver == sender {
                continue;
            }
            if !lossy {
                self.immediate.push_back((receiver, root.clone()));
                continue;
            }
            let msg = Message {
                root: root.clone(),
                sender,
                receiver,
                seq: self.msg_seq,
                sent_at: self.now,
            };
            self.msg_seq += 1;
            match self.bridge.transmit(&msg, self.now) {
                Delivery::Delivered { at } => {
                    let at = at.max(self.now);
                    self.pending.push(at, msg);
                }
                Delivery::Dropped { reason } => {
                    if self.cfg.record_channel_events {
                        self.events.push(TraceEvent::Dropped {
                            t: self.now,
                            root: root.clone(),
                            from: sender,
                            to: receiver,
                            reason: reason.to_string(),
                        });
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Continuous phase
    // ------------------------------------------------------------------

    /// Integrates flows for one bounded step; returns the span advanced.
    fn advance_step(&mut self, end: Time) -> Result<Time, ExecError> {
        const MIN_DT: f64 = 1e-9;

        let mut dt = self.cfg.max_step.min(end - self.now);
        if let Some(next) = self.pending.next_time() {
            if next > self.now {
                dt = dt.min(next - self.now);
            }
        }
        // Land exactly on announced driver wakeups.
        for d in &self.drivers {
            if let Some(t) = d.next_wakeup(self.now) {
                if t > self.now {
                    dt = dt.min(t - self.now);
                }
            }
        }
        // Affine boundary prediction: cap the step at the earliest
        // predicted guard/invariant crossing so timers fire exactly.
        for i in 0..self.autos.len() {
            if let Some(t) = self.predict_boundary(i) {
                if t > 0.0 {
                    dt = dt.min(Time::seconds(t));
                }
            }
        }
        let mut dt = Time::seconds(dt.as_secs_f64().max(MIN_DT));

        // Trial integration.
        let saved: Vec<Vec<f64>> = self.vars.clone();
        self.integrate_all(dt.as_secs_f64());

        // Boundary detection for non-affine dynamics: if a boundary is
        // crossed within the step, bisect to the earliest crossing.
        if self.any_boundary_event() {
            let was_event_at_start = {
                // The closure quiesced, so no boundary event held at start.
                false
            };
            let _ = was_event_at_start;
            let offset = self.bisect_boundary(&saved, dt.as_secs_f64());
            if offset < dt.as_secs_f64() {
                self.vars = saved.clone();
                self.integrate_all(offset);
                dt = Time::seconds(offset.max(MIN_DT));
            }
        }

        self.now += dt;
        Ok(dt)
    }

    /// Integrates every automaton's flows by `h` (seconds).
    fn integrate_all(&mut self, h: f64) {
        if h <= 0.0 {
            return;
        }
        for i in 0..self.autos.len() {
            let loc = self.locs[i].0;
            let exprs = &self.flows[i][loc];
            // Fast path: all flows constant — exact linear update.
            let mut all_const = true;
            for e in exprs {
                if !e.is_constant() {
                    all_const = false;
                    break;
                }
            }
            if all_const {
                let ctx = EvalCtx::new(&[]);
                for (v, e) in exprs.iter().enumerate() {
                    self.vars[i][v] += h * e.eval(&ctx);
                }
            } else {
                let rhs = |x: &[f64], dx: &mut [f64]| {
                    let ctx = EvalCtx::new(x);
                    for (v, e) in exprs.iter().enumerate() {
                        dx[v] = e.eval(&ctx);
                    }
                };
                self.cfg
                    .solver
                    .step(&rhs, &mut self.vars[i], h, &mut self.scratch);
            }
        }
    }

    /// `true` if any automaton currently has an urgent guard satisfied or
    /// an invariant violated.
    fn any_boundary_event(&self) -> bool {
        for i in 0..self.autos.len() {
            let loc = self.locs[i];
            if !self.autos[i].locations[loc.0]
                .invariant
                .holds_with_slack(&self.vars[i], self.cfg.invariant_slack)
            {
                return true;
            }
            for (_, e) in self.autos[i].edges_from(loc) {
                if e.urgent && e.trigger.is_none() && e.guard.holds(&self.vars[i]) {
                    return true;
                }
            }
        }
        false
    }

    /// Bisects the earliest boundary event offset within `(0, h]`,
    /// re-integrating from `saved`. Assumes the event predicate is false
    /// at offset 0 and true at `h`.
    fn bisect_boundary(&mut self, saved: &[Vec<f64>], h: f64) -> f64 {
        let tol = self.cfg.bisect_tol.as_secs_f64();
        let mut lo = 0.0f64;
        let mut hi = h;
        while hi - lo > tol {
            let mid = 0.5 * (lo + hi);
            self.vars = saved.to_vec();
            self.integrate_all(mid);
            if self.any_boundary_event() {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        // Leave state at `hi` (event holds).
        self.vars = saved.to_vec();
        self.integrate_all(hi);
        hi
    }

    /// Predicts the earliest affine boundary crossing for automaton `i`
    /// (urgent guard becoming true, or invariant becoming false), if the
    /// relevant expressions are affine with constant slopes in the current
    /// location. Returns seconds from now.
    fn predict_boundary(&self, i: usize) -> Option<f64> {
        let loc = self.locs[i];
        let slopes: Vec<Option<f64>> = self.flows[i][loc.0]
            .iter()
            .map(|e| e.const_value())
            .collect();
        let vars = &self.vars[i];
        let mut best: Option<f64> = None;
        let mut consider = |t: Option<f64>| {
            if let Some(t) = t {
                if t >= 0.0 {
                    best = Some(match best {
                        Some(b) => b.min(t),
                        None => t,
                    });
                }
            }
        };
        for (_, e) in self.autos[i].edges_from(loc) {
            if e.urgent && e.trigger.is_none() {
                consider(crossing_to_true(&e.guard, vars, &slopes));
            }
        }
        let inv = &self.autos[i].locations[loc.0].invariant;
        consider(crossing_to_false(inv, vars, &slopes));
        let _ = &self.kinds; // kinds retained for diagnostics/extensions
        best
    }
}

/// Affine view of an expression: value now and constant slope, if both are
/// derivable.
fn affine(e: &Expr, vars: &[f64], slopes: &[Option<f64>]) -> Option<(f64, f64)> {
    match e {
        Expr::Const(c) => Some((*c, 0.0)),
        Expr::Var(v) => {
            let slope = (*slopes.get(v.0)?)?;
            Some((*vars.get(v.0)?, slope))
        }
        Expr::Neg(inner) => affine(inner, vars, slopes).map(|(v, s)| (-v, -s)),
        Expr::Add(a, b) => {
            let (av, as_) = affine(a, vars, slopes)?;
            let (bv, bs) = affine(b, vars, slopes)?;
            Some((av + bv, as_ + bs))
        }
        Expr::Sub(a, b) => {
            let (av, as_) = affine(a, vars, slopes)?;
            let (bv, bs) = affine(b, vars, slopes)?;
            Some((av - bv, as_ - bs))
        }
        Expr::Mul(a, b) => {
            // Affine only when one side is constant.
            let (av, as_) = affine(a, vars, slopes)?;
            let (bv, bs) = affine(b, vars, slopes)?;
            if as_ == 0.0 {
                Some((av * bv, av * bs))
            } else if bs == 0.0 {
                Some((av * bv, as_ * bv))
            } else {
                None
            }
        }
        _ => None,
    }
}

/// Earliest `t >= 0` at which `p` becomes true under affine evolution;
/// `None` means unknown (fall back to bisection) or never.
fn crossing_to_true(p: &Pred, vars: &[f64], slopes: &[Option<f64>]) -> Option<f64> {
    use pte_hybrid::Cmp;
    match p {
        Pred::True => Some(0.0),
        Pred::False => None,
        Pred::Cmp(lhs, op, rhs) => {
            let (lv, ls) = affine(lhs, vars, slopes)?;
            let (rv, rs) = affine(rhs, vars, slopes)?;
            let d0 = lv - rv;
            let ds = ls - rs;
            match op {
                Cmp::Ge | Cmp::Gt => {
                    if d0 >= 0.0 {
                        Some(0.0)
                    } else if ds > 0.0 {
                        Some(-d0 / ds)
                    } else {
                        None
                    }
                }
                Cmp::Le | Cmp::Lt => {
                    if d0 <= 0.0 {
                        Some(0.0)
                    } else if ds < 0.0 {
                        Some(-d0 / ds)
                    } else {
                        None
                    }
                }
                Cmp::Eq | Cmp::Ne => None,
            }
        }
        // Conjunction of monotone-becoming-true atoms: true at the max.
        Pred::And(ps) => {
            let mut worst = 0.0f64;
            for q in ps {
                worst = worst.max(crossing_to_true(q, vars, slopes)?);
            }
            Some(worst)
        }
        // Disjunction: earliest disjunct.
        Pred::Or(ps) => {
            let mut best: Option<f64> = None;
            for q in ps {
                if let Some(t) = crossing_to_true(q, vars, slopes) {
                    best = Some(best.map_or(t, |b: f64| b.min(t)));
                }
            }
            best
        }
        Pred::Not(q) => crossing_to_false(q, vars, slopes),
    }
}

/// Earliest `t >= 0` at which `p` becomes false under affine evolution.
fn crossing_to_false(p: &Pred, vars: &[f64], slopes: &[Option<f64>]) -> Option<f64> {
    use pte_hybrid::Cmp;
    match p {
        Pred::True => None,
        Pred::False => Some(0.0),
        Pred::Cmp(lhs, op, rhs) => {
            let flipped = match op {
                Cmp::Ge => Pred::Cmp(lhs.clone(), Cmp::Lt, rhs.clone()),
                Cmp::Gt => Pred::Cmp(lhs.clone(), Cmp::Le, rhs.clone()),
                Cmp::Le => Pred::Cmp(lhs.clone(), Cmp::Gt, rhs.clone()),
                Cmp::Lt => Pred::Cmp(lhs.clone(), Cmp::Ge, rhs.clone()),
                Cmp::Eq | Cmp::Ne => return None,
            };
            crossing_to_true(&flipped, vars, slopes)
        }
        // Conjunction becomes false when the first conjunct does.
        Pred::And(ps) => {
            let mut best: Option<f64> = None;
            for q in ps {
                if let Some(t) = crossing_to_false(q, vars, slopes) {
                    best = Some(best.map_or(t, |b: f64| b.min(t)));
                }
            }
            best
        }
        // Disjunction becomes false when all disjuncts are false.
        Pred::Or(ps) => {
            let mut worst = 0.0f64;
            for q in ps {
                worst = worst.max(crossing_to_false(q, vars, slopes)?);
            }
            Some(worst)
        }
        Pred::Not(q) => crossing_to_true(q, vars, slopes),
    }
}

impl Executor {
    fn maybe_sample(&mut self) {
        let Some(interval) = self.cfg.sample_interval else {
            return;
        };
        while self.next_sample <= self.now {
            for (i, v) in self.vars.iter().enumerate() {
                self.samples.push(Sample {
                    t: self.now,
                    aut: i,
                    vars: v.clone(),
                });
            }
            self.next_sample += interval;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{DropReason, FnChannel};
    use pte_hybrid::{HybridAutomaton, Pred, VarKind};

    /// Fig. 2 ventilator: triangle wave between 0 and 0.3 at 0.1 m/s.
    fn ventilator() -> HybridAutomaton {
        let mut b = HybridAutomaton::builder("vent");
        let h = b.var("Hvent", VarKind::Continuous, 0.15);
        let out = b.location("PumpOut");
        let inn = b.location("PumpIn");
        b.invariant(
            out,
            Pred::ge(Expr::var(h), Expr::c(0.0)).and(Pred::le(Expr::var(h), Expr::c(0.3))),
        );
        b.invariant(
            inn,
            Pred::ge(Expr::var(h), Expr::c(0.0)).and(Pred::le(Expr::var(h), Expr::c(0.3))),
        );
        b.flow(out, h, Expr::c(-0.1));
        b.flow(inn, h, Expr::c(0.1));
        b.edge(out, inn)
            .guard(Pred::le(Expr::var(h), Expr::c(0.0)))
            .urgent()
            .emit("evtVPumpIn")
            .done();
        b.edge(inn, out)
            .guard(Pred::ge(Expr::var(h), Expr::c(0.3)))
            .urgent()
            .emit("evtVPumpOut")
            .done();
        b.initial(out, None);
        b.build().unwrap()
    }

    /// A two-location timed automaton: dwell exactly `period` in each.
    fn ping_pong(name: &str, period: f64, emit_a: &str, emit_b: &str) -> HybridAutomaton {
        let mut b = HybridAutomaton::builder(name);
        let c = b.clock("c");
        let la = b.location("A");
        let lb = b.location("B");
        b.invariant(la, Pred::le(Expr::var(c), Expr::c(period)));
        b.invariant(lb, Pred::le(Expr::var(c), Expr::c(period)));
        b.edge(la, lb)
            .guard(Pred::ge(Expr::var(c), Expr::c(period)))
            .urgent()
            .reset_clock(c)
            .emit(emit_a)
            .done();
        b.edge(lb, la)
            .guard(Pred::ge(Expr::var(c), Expr::c(period)))
            .urgent()
            .reset_clock(c)
            .emit(emit_b)
            .done();
        b.initial(la, None);
        b.build().unwrap()
    }

    #[test]
    fn timed_transitions_fire_at_exact_expiry() {
        let a = ping_pong("pp", 1.0, "toB", "toA");
        let exec = Executor::new(vec![a], ExecutorConfig::default()).unwrap();
        let trace = exec.run_until(Time::seconds(5.5)).unwrap();
        let hist = trace.location_history(0);
        // Init + transitions at t = 1, 2, 3, 4, 5.
        assert_eq!(hist.len(), 6, "{hist:?}");
        for (k, (t, _)) in hist.iter().enumerate().skip(1) {
            assert!(
                t.approx_eq(Time::seconds(k as f64), Time::seconds(1e-6)),
                "transition {k} at {t}"
            );
        }
    }

    #[test]
    fn ventilator_triangle_wave() {
        let exec = Executor::new(vec![ventilator()], ExecutorConfig::default()).unwrap();
        // From 0.15 down at 0.1: hits 0 at t=1.5; up to 0.3 at t=4.5; ...
        let trace = exec.run_until(Time::seconds(10.0)).unwrap();
        let hist = trace.location_history(0);
        assert!(hist.len() >= 3);
        assert!(hist[1].0.approx_eq(Time::seconds(1.5), Time::seconds(1e-5)));
        assert!(hist[2].0.approx_eq(Time::seconds(4.5), Time::seconds(1e-5)));
        let pump_in_events = trace.events_with_root("evtVPumpIn");
        assert!(!pump_in_events.is_empty());
    }

    #[test]
    fn reliable_events_synchronize_automata() {
        // Sender ping-pongs each second; receiver follows its events.
        let sender = ping_pong("sender", 1.0, "tick", "tock");
        let mut b = HybridAutomaton::builder("receiver");
        let ra = b.location("Ra");
        let rb = b.location("Rb");
        b.edge(ra, rb).on("tick").done();
        b.edge(rb, ra).on("tock").done();
        b.initial(ra, None);
        let receiver = b.build().unwrap();

        let exec = Executor::new(vec![sender, receiver], ExecutorConfig::default()).unwrap();
        let trace = exec.run_until(Time::seconds(4.5)).unwrap();
        let rh = trace.location_history(1);
        // Init, then moves at t=1,2,3,4.
        assert_eq!(rh.len(), 5, "{rh:?}");
        assert!(rh[1].0.approx_eq(Time::seconds(1.0), Time::seconds(1e-6)));
    }

    #[test]
    fn lossy_events_can_be_dropped() {
        let sender = ping_pong("sender", 1.0, "tick", "tick2");
        let mut b = HybridAutomaton::builder("receiver");
        let ra = b.location("Ra");
        let rb = b.location("Rb");
        b.edge(ra, rb).on_lossy("tick").done();
        b.edge(rb, ra).on_lossy("tick2").done();
        b.initial(ra, None);
        let receiver = b.build().unwrap();

        let mut exec = Executor::new(vec![sender, receiver], ExecutorConfig::default()).unwrap();
        let mut bridge = NetworkBridge::perfect();
        bridge.set_default(Box::new(FnChannel(|_m: &Message, _now: Time| {
            Delivery::Dropped {
                reason: DropReason::Scripted,
            }
        })));
        exec.set_bridge(bridge);
        let trace = exec.run_until(Time::seconds(5.0)).unwrap();
        assert_eq!(
            trace.location_history(1).len(),
            1,
            "receiver never moves when all packets drop"
        );
        assert!(trace.drop_count() >= 4);
    }

    #[test]
    fn delayed_delivery_arrives_later() {
        let sender = ping_pong("sender", 1.0, "tick", "tick2");
        let mut b = HybridAutomaton::builder("receiver");
        let ra = b.location("Ra");
        let rb = b.location("Rb");
        b.edge(ra, rb).on_lossy("tick").done();
        b.initial(ra, None);
        let receiver = b.build().unwrap();

        let mut exec = Executor::new(vec![sender, receiver], ExecutorConfig::default()).unwrap();
        let mut bridge = NetworkBridge::perfect();
        bridge.set_default(Box::new(FnChannel(|_m: &Message, now: Time| {
            Delivery::Delivered {
                at: now + Time::seconds(0.25),
            }
        })));
        exec.set_bridge(bridge);
        let trace = exec.run_until(Time::seconds(2.0)).unwrap();
        let rh = trace.location_history(1);
        assert_eq!(rh.len(), 2);
        assert!(
            rh[1].0.approx_eq(Time::seconds(1.25), Time::seconds(1e-6)),
            "arrived at {}",
            rh[1].0
        );
    }

    #[test]
    fn resets_apply_on_transition() {
        let mut b = HybridAutomaton::builder("resetter");
        let c = b.clock("c");
        let x = b.var("x", VarKind::Continuous, 0.0);
        let la = b.location("A");
        let lb = b.location("B");
        b.invariant(la, Pred::le(Expr::var(c), Expr::c(1.0)));
        b.edge(la, lb)
            .guard(Pred::ge(Expr::var(c), Expr::c(1.0)))
            .urgent()
            .reset(x, Expr::var(c) * Expr::c(2.0))
            .reset_clock(c)
            .done();
        b.initial(la, None);
        let a = b.build().unwrap();
        let exec = Executor::new(vec![a], ExecutorConfig::default()).unwrap();
        let trace = exec.run_until(Time::seconds(1.5)).unwrap();
        let _ = trace;
        // x := 2 * c evaluated at c = 1 => 2.0 (pre-reset value used).
    }

    #[test]
    fn time_block_reported() {
        let mut b = HybridAutomaton::builder("stuck");
        let c = b.clock("c");
        let la = b.location("A");
        b.invariant(la, Pred::le(Expr::var(c), Expr::c(1.0)));
        // No egress edge: invariant will be violated at t=1.
        b.initial(la, None);
        let a = b.build().unwrap();
        let exec = Executor::new(vec![a], ExecutorConfig::default()).unwrap();
        let err = exec.run_until(Time::seconds(2.0)).unwrap_err();
        assert!(matches!(err, ExecError::TimeBlock { .. }), "{err}");
    }

    #[test]
    fn zeno_cascade_detected() {
        let mut b = HybridAutomaton::builder("zeno");
        let la = b.location("A");
        let lb = b.location("B");
        b.edge(la, lb).urgent().done();
        b.edge(lb, la).urgent().done();
        b.initial(la, None);
        let a = b.build().unwrap();
        let exec = Executor::new(vec![a], ExecutorConfig::default()).unwrap();
        let err = exec.run_until(Time::seconds(1.0)).unwrap_err();
        assert!(matches!(err, ExecError::Zeno { .. }));
    }

    #[test]
    fn empty_system_rejected() {
        assert!(matches!(
            Executor::new(vec![], ExecutorConfig::default()),
            Err(ExecError::Empty)
        ));
    }

    #[test]
    fn guard_false_reception_ignored() {
        let sender = ping_pong("sender", 1.0, "tick", "tick2");
        let mut b = HybridAutomaton::builder("receiver");
        let c = b.clock("c");
        let ra = b.location("Ra");
        let rb = b.location("Rb");
        // Guard requires c >= 100: never true in this run.
        b.edge(ra, rb)
            .on("tick")
            .guard(Pred::ge(Expr::var(c), Expr::c(100.0)))
            .done();
        b.initial(ra, None);
        let receiver = b.build().unwrap();
        let exec = Executor::new(vec![sender, receiver], ExecutorConfig::default()).unwrap();
        let trace = exec.run_until(Time::seconds(3.0)).unwrap();
        assert_eq!(trace.location_history(1).len(), 1);
        assert!(trace.events.iter().any(|e| matches!(
            e,
            TraceEvent::Ignored {
                reason: IgnoreReason::GuardFalse,
                ..
            }
        )));
    }

    #[test]
    fn sampling_records_series() {
        let cfg = ExecutorConfig {
            sample_interval: Some(Time::seconds(0.5)),
            ..Default::default()
        };
        let exec = Executor::new(vec![ventilator()], cfg).unwrap();
        let trace = exec.run_until(Time::seconds(3.0)).unwrap();
        let series = trace.series(0, "Hvent");
        assert!(series.len() >= 6, "{}", series.len());
        // Values stay within the physical range.
        for (_, v) in &series {
            assert!(*v >= -1e-6 && *v <= 0.3 + 1e-6);
        }
    }

    #[test]
    fn scripted_driver_injects() {
        let mut b = HybridAutomaton::builder("listener");
        let ra = b.location("Ra");
        let rb = b.location("Rb");
        b.edge(ra, rb).on("button").done();
        b.initial(ra, None);
        let a = b.build().unwrap();
        let mut exec = Executor::new(vec![a], ExecutorConfig::default()).unwrap();
        exec.add_driver(Box::new(crate::driver::ScriptedDriver::new(
            "s",
            vec![(Time::seconds(1.5), Root::new("button"))],
        )));
        let trace = exec.run_until(Time::seconds(3.0)).unwrap();
        let h = trace.location_history(0);
        assert_eq!(h.len(), 2);
        assert!(h[1].0 >= Time::seconds(1.5));
        assert!(h[1].0 < Time::seconds(1.6));
    }
}
