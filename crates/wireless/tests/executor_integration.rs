//! Integration: wireless links (loss + delay + acceptance window) driving
//! a real executor run.

use pte_hybrid::{Expr, HybridAutomaton, Pred, Time};
use pte_sim::executor::{Executor, ExecutorConfig};
use pte_sim::network::NetworkBridge;
use pte_wireless::delay::DelayModel;
use pte_wireless::link::WirelessLink;
use pte_wireless::loss::{BernoulliLoss, ScriptedLoss};

/// Sender beacons every second; receiver counts receptions via location
/// parity.
fn beacon() -> HybridAutomaton {
    let mut b = HybridAutomaton::builder("beacon");
    let c = b.clock("c");
    let l = b.location("L");
    b.invariant(l, Pred::le(Expr::var(c), Expr::c(1.0)));
    b.edge(l, l)
        .guard(Pred::ge(Expr::var(c), Expr::c(1.0)))
        .urgent()
        .reset_clock(c)
        .emit("tick")
        .done();
    b.initial(l, None);
    b.build().unwrap()
}

fn counter() -> HybridAutomaton {
    let mut b = HybridAutomaton::builder("counter");
    let n = b.var("n", pte_hybrid::VarKind::Continuous, 0.0);
    let l = b.location("L");
    b.edge(l, l)
        .on_lossy("tick")
        .reset(n, Expr::var(n) + Expr::c(1.0))
        .done();
    b.initial(l, None);
    b.build().unwrap()
}

fn run_with_link(link: WirelessLink, secs: f64) -> f64 {
    let mut exec = Executor::new(vec![beacon(), counter()], ExecutorConfig::default()).unwrap();
    let mut bridge = NetworkBridge::perfect();
    bridge.set_link(0, 1, Box::new(link));
    exec.set_bridge(bridge);
    let trace = exec.run_until(Time::seconds(secs)).unwrap();
    // Read the final counter value from the last transition-free state:
    // easiest is to re-derive from delivered events.
    trace
        .events
        .iter()
        .filter(|e| matches!(e, pte_sim::trace::TraceEvent::Delivered { .. }))
        .count() as f64
}

#[test]
fn lossless_link_delivers_every_beacon() {
    let link = WirelessLink::new(Box::new(ScriptedLoss::deliver_all()));
    let received = run_with_link(link, 100.5);
    assert_eq!(received, 100.0);
}

#[test]
fn bernoulli_link_thins_the_stream() {
    let link = WirelessLink::new(Box::new(BernoulliLoss::new(0.5, 42)));
    let received = run_with_link(link, 400.5);
    assert!(
        (received - 200.0).abs() < 40.0,
        "~half of 400 beacons: {received}"
    );
}

#[test]
fn delayed_link_shifts_delivery_times() {
    let link = WirelessLink::new(Box::new(ScriptedLoss::deliver_all()))
        .with_delay(DelayModel::Constant(Time::millis(250.0)), 7);
    let mut exec = Executor::new(vec![beacon(), counter()], ExecutorConfig::default()).unwrap();
    let mut bridge = NetworkBridge::perfect();
    bridge.set_link(0, 1, Box::new(link));
    exec.set_bridge(bridge);
    let trace = exec.run_until(Time::seconds(5.5)).unwrap();
    let deliveries: Vec<Time> = trace
        .events
        .iter()
        .filter_map(|e| match e {
            pte_sim::trace::TraceEvent::Delivered { t, .. } => Some(*t),
            _ => None,
        })
        .collect();
    assert!(!deliveries.is_empty());
    for (k, t) in deliveries.iter().enumerate() {
        let expected = Time::seconds((k + 1) as f64) + Time::millis(250.0);
        assert!(
            t.approx_eq(expected, Time::seconds(1e-6)),
            "delivery {k} at {t}, expected {expected}"
        );
    }
}

#[test]
fn acceptance_window_drops_late_messages() {
    // Exponential delay with mean 0.4 s, window 0.2 s: about
    // 1 - e^{-0.5} ≈ 39% arrive in time.
    let link = WirelessLink::new(Box::new(ScriptedLoss::deliver_all()))
        .with_delay(
            DelayModel::Exponential {
                mean: Time::millis(400.0),
                cap: Time::seconds(5.0),
            },
            13,
        )
        .with_acceptance_window(Time::millis(200.0));
    let received = run_with_link(link, 1000.5);
    let expected = 1000.0 * (1.0 - (-0.5f64).exp());
    assert!(
        (received - expected).abs() < 60.0,
        "received {received}, expected ≈ {expected}"
    );
}
