//! Packet-loss models.
//!
//! Theorem 1 holds under *arbitrary* loss, so any loss process is a valid
//! test load; the models here span the useful space:
//!
//! * [`BernoulliLoss`] — i.i.d. loss with probability `p`;
//! * [`GilbertElliott`] — two-state Markov bursty loss (the classic
//!   wireless channel abstraction);
//! * [`Interferer`] — a duty-cycled broadband interferer: alternating
//!   exponential busy/idle periods, with distinct collision probabilities,
//!   reproducing the "802.11g interferer 2 m from the supervisor"
//!   arrangement of the paper's emulation (Fig. 7(b));
//! * [`BitError`] — flips bits with a given BER in the encoded frame and
//!   lets the CRC discard corrupted packets (the receiver-side discard
//!   path of the fault model);
//! * [`ScriptedLoss`] — deterministic drop/deliver decisions, used by the
//!   bounded-exhaustive explorer and the adversarial strategies in
//!   `pte-verify`.
//!
//! All models are seedable and own their RNG, keeping runs reproducible.

use crate::packet::Packet;
use pte_hybrid::Time;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A loss decision process: decides whether the packet sent at `now`
/// survives.
pub trait LossModel: Send {
    /// `true` if the packet is lost.
    fn is_lost(&mut self, now: Time) -> bool;

    /// Short description for reports.
    fn describe(&self) -> String;
}

/// Independent (i.i.d.) loss with fixed probability.
#[derive(Clone, Debug)]
pub struct BernoulliLoss {
    /// Loss probability in `[0, 1]`.
    pub p: f64,
    rng: StdRng,
}

impl BernoulliLoss {
    /// Creates a Bernoulli loss process with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn new(p: f64, seed: u64) -> BernoulliLoss {
        assert!((0.0..=1.0).contains(&p), "loss probability out of range");
        BernoulliLoss {
            p,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl LossModel for BernoulliLoss {
    fn is_lost(&mut self, _now: Time) -> bool {
        self.rng.random::<f64>() < self.p
    }

    fn describe(&self) -> String {
        format!("bernoulli(p={})", self.p)
    }
}

/// Two-state Markov (Gilbert–Elliott) bursty loss.
///
/// The channel alternates between a Good and a Bad state with per-packet
/// transition probabilities; each state has its own loss rate.
#[derive(Clone, Debug)]
pub struct GilbertElliott {
    /// P(Good → Bad) per packet.
    pub p_gb: f64,
    /// P(Bad → Good) per packet.
    pub p_bg: f64,
    /// Loss probability in the Good state.
    pub loss_good: f64,
    /// Loss probability in the Bad state.
    pub loss_bad: f64,
    in_bad: bool,
    rng: StdRng,
}

impl GilbertElliott {
    /// Creates a Gilbert–Elliott channel starting in the Good state.
    pub fn new(p_gb: f64, p_bg: f64, loss_good: f64, loss_bad: f64, seed: u64) -> GilbertElliott {
        for p in [p_gb, p_bg, loss_good, loss_bad] {
            assert!((0.0..=1.0).contains(&p), "probability out of range");
        }
        GilbertElliott {
            p_gb,
            p_bg,
            loss_good,
            loss_bad,
            in_bad: false,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The long-run average loss rate of the chain.
    pub fn steady_state_loss(&self) -> f64 {
        let denom = self.p_gb + self.p_bg;
        if denom == 0.0 {
            return self.loss_good;
        }
        let pi_bad = self.p_gb / denom;
        pi_bad * self.loss_bad + (1.0 - pi_bad) * self.loss_good
    }
}

impl LossModel for GilbertElliott {
    fn is_lost(&mut self, _now: Time) -> bool {
        // State transition first, then loss draw in the new state.
        let flip: f64 = self.rng.random();
        if self.in_bad {
            if flip < self.p_bg {
                self.in_bad = false;
            }
        } else if flip < self.p_gb {
            self.in_bad = true;
        }
        let p = if self.in_bad {
            self.loss_bad
        } else {
            self.loss_good
        };
        self.rng.random::<f64>() < p
    }

    fn describe(&self) -> String {
        format!(
            "gilbert-elliott(p_gb={}, p_bg={}, loss={}/{})",
            self.p_gb, self.p_bg, self.loss_good, self.loss_bad
        )
    }
}

/// A duty-cycled broadband interferer.
///
/// The interferer alternates busy (transmitting) and idle periods with
/// exponential durations; a packet sent during a busy period collides with
/// probability `p_collision`, and with `p_background` otherwise. With the
/// defaults this approximates a WiFi broadcaster at ~3 Mbps overlapping a
/// ZigBee band (the paper's interference source).
#[derive(Clone, Debug)]
pub struct Interferer {
    /// Mean busy-period duration.
    pub mean_busy: Time,
    /// Mean idle-period duration.
    pub mean_idle: Time,
    /// Loss probability while the interferer is busy.
    pub p_collision: f64,
    /// Loss probability while the interferer is idle.
    pub p_background: f64,
    /// Time at which the current period ends.
    period_end: Time,
    busy: bool,
    rng: StdRng,
}

impl Interferer {
    /// Creates an interferer with the given duty-cycle parameters.
    pub fn new(
        mean_busy: Time,
        mean_idle: Time,
        p_collision: f64,
        p_background: f64,
        seed: u64,
    ) -> Interferer {
        assert!((0.0..=1.0).contains(&p_collision));
        assert!((0.0..=1.0).contains(&p_background));
        Interferer {
            mean_busy,
            mean_idle,
            p_collision,
            p_background,
            period_end: Time::ZERO,
            busy: false,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The paper's emulation conditions: a constant nearby WiFi source
    /// overlapping the ZigBee band. Busy ~40 ms / idle ~260 ms bursts with
    /// an 80% collision probability inside a burst yield ≈12% average
    /// *event* loss — the effective per-event loss after the motes'
    /// MAC-layer retransmissions, not the raw per-frame collision rate.
    pub fn paper_conditions(seed: u64) -> Interferer {
        Interferer::new(Time::millis(40.0), Time::millis(260.0), 0.80, 0.01, seed)
    }

    fn exp_sample(&mut self, mean: Time) -> Time {
        let u: f64 = self.rng.random();
        Time::seconds(-mean.as_secs_f64() * (1.0 - u).ln())
    }

    /// Advances the busy/idle alternation up to `now`.
    fn advance_to(&mut self, now: Time) {
        while self.period_end <= now {
            self.busy = !self.busy;
            let mean = if self.busy {
                self.mean_busy
            } else {
                self.mean_idle
            };
            let span = self.exp_sample(mean);
            self.period_end += span;
        }
    }

    /// Expected long-run loss rate (duty-cycle weighted).
    pub fn expected_loss(&self) -> f64 {
        let b = self.mean_busy.as_secs_f64();
        let i = self.mean_idle.as_secs_f64();
        let duty = b / (b + i);
        duty * self.p_collision + (1.0 - duty) * self.p_background
    }
}

impl LossModel for Interferer {
    fn is_lost(&mut self, now: Time) -> bool {
        self.advance_to(now);
        let p = if self.busy {
            self.p_collision
        } else {
            self.p_background
        };
        self.rng.random::<f64>() < p
    }

    fn describe(&self) -> String {
        format!(
            "interferer(busy={}, idle={}, p={}/{})",
            self.mean_busy, self.mean_idle, self.p_collision, self.p_background
        )
    }
}

/// Bit-error loss: flips each bit of the encoded frame independently with
/// probability `ber`; the packet is lost iff the CRC then fails
/// (which, for CRC-32 at these frame sizes, is whenever ≥1 bit flipped).
#[derive(Clone, Debug)]
pub struct BitError {
    /// Per-bit error probability.
    pub ber: f64,
    frame_bits: usize,
    rng: StdRng,
}

impl BitError {
    /// Creates a bit-error process for frames of `frame_bytes` bytes.
    pub fn new(ber: f64, frame_bytes: usize, seed: u64) -> BitError {
        assert!((0.0..=1.0).contains(&ber));
        BitError {
            ber,
            frame_bits: frame_bytes * 8,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Simulates corruption of a concrete packet frame and the receiver's
    /// CRC check. Returns `true` if the frame is *discarded*.
    pub fn corrupts(&mut self, packet: &Packet) -> bool {
        let frame = packet.encode();
        let mut data = frame.to_vec();
        let mut flipped = false;
        for byte in data.iter_mut() {
            for bit in 0..8 {
                if self.rng.random::<f64>() < self.ber {
                    *byte ^= 1 << bit;
                    flipped = true;
                }
            }
        }
        if !flipped {
            return false;
        }
        !Packet::verify(&data)
    }
}

impl LossModel for BitError {
    fn is_lost(&mut self, _now: Time) -> bool {
        // P(any bit flips) = 1 - (1-ber)^bits; CRC catches all such frames.
        let p_clean = (1.0 - self.ber).powi(self.frame_bits as i32);
        self.rng.random::<f64>() >= p_clean
    }

    fn describe(&self) -> String {
        format!("bit-error(ber={}, bits={})", self.ber, self.frame_bits)
    }
}

/// Deterministic, scripted loss: a sequence of drop decisions consumed one
/// per packet (then a default). The exhaustive explorer and adversarial
/// strategies drive channels through this model.
#[derive(Clone, Debug)]
pub struct ScriptedLoss {
    decisions: Vec<bool>,
    cursor: usize,
    /// Decision applied once the script is exhausted.
    pub default_lost: bool,
}

impl ScriptedLoss {
    /// Creates a scripted loss process (`true` = drop).
    pub fn new(decisions: Vec<bool>, default_lost: bool) -> ScriptedLoss {
        ScriptedLoss {
            decisions,
            cursor: 0,
            default_lost,
        }
    }

    /// A process that drops everything.
    pub fn drop_all() -> ScriptedLoss {
        ScriptedLoss::new(Vec::new(), true)
    }

    /// A process that delivers everything.
    pub fn deliver_all() -> ScriptedLoss {
        ScriptedLoss::new(Vec::new(), false)
    }
}

impl LossModel for ScriptedLoss {
    fn is_lost(&mut self, _now: Time) -> bool {
        let d = self
            .decisions
            .get(self.cursor)
            .copied()
            .unwrap_or(self.default_lost);
        self.cursor += 1;
        d
    }

    fn describe(&self) -> String {
        format!(
            "scripted({} decisions, default_lost={})",
            self.decisions.len(),
            self.default_lost
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rate<L: LossModel>(model: &mut L, n: usize) -> f64 {
        let mut lost = 0usize;
        for k in 0..n {
            if model.is_lost(Time::seconds(k as f64 * 0.01)) {
                lost += 1;
            }
        }
        lost as f64 / n as f64
    }

    #[test]
    fn bernoulli_matches_probability() {
        let mut m = BernoulliLoss::new(0.3, 7);
        let r = rate(&mut m, 100_000);
        assert!((r - 0.3).abs() < 0.01, "empirical {r}");
    }

    #[test]
    fn bernoulli_extremes() {
        assert!(!BernoulliLoss::new(0.0, 1).is_lost(Time::ZERO));
        assert!(BernoulliLoss::new(1.0, 1).is_lost(Time::ZERO));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bernoulli_rejects_bad_probability() {
        let _ = BernoulliLoss::new(1.5, 0);
    }

    #[test]
    fn gilbert_elliott_matches_steady_state() {
        let mut m = GilbertElliott::new(0.1, 0.3, 0.02, 0.7, 11);
        let expected = m.steady_state_loss();
        let r = rate(&mut m, 200_000);
        assert!((r - expected).abs() < 0.02, "empirical {r} vs {expected}");
    }

    #[test]
    fn gilbert_elliott_bursty() {
        // Bad state sticky => losses cluster. Measure burst lengths.
        let mut m = GilbertElliott::new(0.05, 0.2, 0.0, 1.0, 5);
        let mut bursts = Vec::new();
        let mut run = 0usize;
        for k in 0..50_000 {
            if m.is_lost(Time::seconds(k as f64 * 0.01)) {
                run += 1;
            } else if run > 0 {
                bursts.push(run);
                run = 0;
            }
        }
        let mean_burst: f64 = bursts.iter().sum::<usize>() as f64 / bursts.len() as f64;
        assert!(mean_burst > 2.0, "bursty channel mean burst {mean_burst}");
    }

    #[test]
    fn interferer_duty_cycle_loss() {
        let mut m = Interferer::paper_conditions(42);
        let expected = m.expected_loss();
        let r = rate(&mut m, 200_000);
        assert!(
            (r - expected).abs() < 0.05,
            "empirical {r} vs expected {expected}"
        );
        assert!(r > 0.05 && r < 0.3, "paper-conditions loss plausible: {r}");
    }

    #[test]
    fn interferer_time_dependence() {
        // Packets within one busy burst share fate more often than not:
        // measure correlation of adjacent sends (1 ms apart) vs far sends.
        let mut m = Interferer::new(Time::millis(50.0), Time::millis(50.0), 1.0, 0.0, 3);
        let mut same = 0;
        let mut total = 0;
        let mut prev = m.is_lost(Time::ZERO);
        for k in 1..20_000 {
            let cur = m.is_lost(Time::millis(k as f64));
            if cur == prev {
                same += 1;
            }
            total += 1;
            prev = cur;
        }
        let corr = same as f64 / total as f64;
        assert!(corr > 0.8, "adjacent packets correlated: {corr}");
    }

    #[test]
    fn bit_error_rate_consistent_with_crc() {
        let frame_bytes = Packet::event(0, 1, 0, "evtReq").encode().len();
        let mut m = BitError::new(1e-3, frame_bytes, 9);
        let expected = 1.0 - (1.0f64 - 1e-3).powi((frame_bytes * 8) as i32);
        let r = rate(&mut m, 100_000);
        assert!((r - expected).abs() < 0.01, "empirical {r} vs {expected}");
    }

    #[test]
    fn bit_error_corrupts_concrete_frames() {
        let mut m = BitError::new(0.01, 0, 13);
        let p = Packet::event(0, 1, 5, "evtAbort");
        let mut discarded = 0;
        for _ in 0..1000 {
            if m.corrupts(&p) {
                discarded += 1;
            }
        }
        // Frame ~20 bytes => ~80% chance of >=1 flip at BER 1e-2.
        assert!(
            discarded > 500,
            "CRC discards corrupted frames: {discarded}"
        );
    }

    #[test]
    fn scripted_sequence_consumed_in_order() {
        let mut m = ScriptedLoss::new(vec![true, false, true], false);
        assert!(m.is_lost(Time::ZERO));
        assert!(!m.is_lost(Time::ZERO));
        assert!(m.is_lost(Time::ZERO));
        assert!(!m.is_lost(Time::ZERO), "default after script");
    }

    #[test]
    fn scripted_extremes() {
        assert!(ScriptedLoss::drop_all().is_lost(Time::ZERO));
        assert!(!ScriptedLoss::deliver_all().is_lost(Time::ZERO));
    }

    #[test]
    fn determinism_same_seed_same_sequence() {
        let mut a = BernoulliLoss::new(0.5, 123);
        let mut b = BernoulliLoss::new(0.5, 123);
        for k in 0..1000 {
            let t = Time::seconds(k as f64);
            assert_eq!(a.is_lost(t), b.is_lost(t));
        }
    }
}
