//! Propagation/queueing delay models for wireless links.
//!
//! The paper's fault model treats excessive downlink delay as loss ("the
//! remote entities locally specify delays as acceptable or as
//! lost-messages"); [`DelayModel::sample`] produces the delay and
//! [`WirelessLink`](crate::link::WirelessLink) converts delays beyond the
//! receiver's acceptance window into drops.

use pte_hybrid::Time;
use rand::rngs::StdRng;
use rand::Rng;
#[cfg(test)]
use rand::SeedableRng;

/// A per-packet delay process.
#[derive(Clone, Debug, Default)]
pub enum DelayModel {
    /// No delay (events arrive at the send instant).
    #[default]
    None,
    /// Fixed delay.
    Constant(Time),
    /// Uniform delay in `[lo, hi]`.
    Uniform {
        /// Lower bound.
        lo: Time,
        /// Upper bound.
        hi: Time,
    },
    /// Exponential delay with the given mean, truncated at `cap`.
    Exponential {
        /// Mean delay.
        mean: Time,
        /// Hard truncation (samples are clamped here).
        cap: Time,
    },
}

impl DelayModel {
    /// Samples one delay.
    pub fn sample(&self, rng: &mut StdRng) -> Time {
        match self {
            DelayModel::None => Time::ZERO,
            DelayModel::Constant(d) => *d,
            DelayModel::Uniform { lo, hi } => {
                let u: f64 = rng.random();
                *lo + (*hi - *lo) * u
            }
            DelayModel::Exponential { mean, cap } => {
                let u: f64 = rng.random();
                let d = Time::seconds(-mean.as_secs_f64() * (1.0 - u).ln());
                d.min(*cap)
            }
        }
    }

    /// The worst-case delay the model can produce.
    pub fn max_delay(&self) -> Time {
        match self {
            DelayModel::None => Time::ZERO,
            DelayModel::Constant(d) => *d,
            DelayModel::Uniform { hi, .. } => *hi,
            DelayModel::Exponential { cap, .. } => *cap,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    #[test]
    fn none_is_zero() {
        assert_eq!(DelayModel::None.sample(&mut rng()), Time::ZERO);
        assert_eq!(DelayModel::None.max_delay(), Time::ZERO);
    }

    #[test]
    fn constant_is_constant() {
        let m = DelayModel::Constant(Time::millis(5.0));
        let mut r = rng();
        for _ in 0..10 {
            assert_eq!(m.sample(&mut r), Time::millis(5.0));
        }
    }

    #[test]
    fn uniform_within_bounds() {
        let m = DelayModel::Uniform {
            lo: Time::millis(1.0),
            hi: Time::millis(3.0),
        };
        let mut r = rng();
        let mut min = Time::INFINITY;
        let mut max = Time::ZERO;
        for _ in 0..10_000 {
            let d = m.sample(&mut r);
            assert!(d >= Time::millis(1.0) && d <= Time::millis(3.0));
            min = min.min(d);
            max = max.max(d);
        }
        assert!(min < Time::millis(1.2), "covers low end");
        assert!(max > Time::millis(2.8), "covers high end");
        assert_eq!(m.max_delay(), Time::millis(3.0));
    }

    #[test]
    fn exponential_mean_and_cap() {
        let m = DelayModel::Exponential {
            mean: Time::millis(10.0),
            cap: Time::millis(100.0),
        };
        let mut r = rng();
        let mut sum = 0.0;
        for _ in 0..100_000 {
            let d = m.sample(&mut r);
            assert!(d <= Time::millis(100.0));
            sum += d.as_secs_f64();
        }
        let mean = sum / 100_000.0;
        assert!((mean - 0.01).abs() < 0.001, "mean {mean}");
    }
}
