//! # pte-wireless
//!
//! Wireless communication substrate implementing the paper's fault model
//! (Section II-B): a sink-based star topology in which every packet sent
//! over a wireless up/downlink "can be arbitrarily lost — not received at
//! all, or discarded at the receiver due to checksum errors".
//!
//! The paper's emulation used ZigBee TMote-Sky motes under constant
//! IEEE 802.11g interference; we substitute seedable channel models that
//! exercise the same code path (event loss on `??` links):
//!
//! * [`packet`] — wire encoding with a CRC32 checksum; the
//!   receiver-discard path of the fault model;
//! * [`loss`] — Bernoulli (i.i.d.) loss, Gilbert–Elliott bursty loss, a
//!   duty-cycled [`loss::Interferer`] reproducing the WiFi-interferer
//!   setup of Fig. 7(b), bit-error loss through the CRC, and scripted
//!   (adversarial) loss;
//! * [`delay`] — constant/uniform/exponential propagation delays;
//! * [`link`] — a [`link::WirelessLink`] combining loss + delay into a
//!   `pte_sim::Channel`;
//! * [`topology`] — the star (base station + N remotes) wiring helper,
//!   enforcing "no direct wireless links between remote entities".

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod delay;
pub mod link;
pub mod loss;
pub mod packet;
pub mod topology;

pub use delay::DelayModel;
pub use link::WirelessLink;
pub use loss::{BernoulliLoss, GilbertElliott, Interferer, LossModel, ScriptedLoss};
pub use packet::{crc32, Packet};
pub use topology::StarTopology;
