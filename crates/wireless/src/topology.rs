//! Sink-based star topology (Section II-B).
//!
//! A distributed sink-based wireless CPS consists of a base station `ξ0`
//! and `N ≥ 2` remote entities `ξ1 … ξN`. Links exist only between the
//! base station and remotes (uplinks and downlinks); there are **no direct
//! wireless links between remote entities** — [`StarTopology::wire`]
//! installs dead channels on those pairs so a mis-wired model fails
//! loudly (events silently never arrive) rather than cheating.

use crate::link::WirelessLink;
use crate::loss::LossModel;
use pte_hybrid::Time;
use pte_sim::network::{NetworkBridge, NoLinkChannel};
use std::fmt;

/// Description of a star topology over automaton indices.
///
/// Index `base` is the base station (Supervisor); all other listed indices
/// are remote entities.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StarTopology {
    /// Automaton index of the base station.
    pub base: usize,
    /// Automaton indices of the remote entities, in PTE order `ξ1 … ξN`.
    pub remotes: Vec<usize>,
}

impl StarTopology {
    /// Creates a star with base station `base` and the given remotes.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 2 remotes are given (the paper requires
    /// `N ≥ 2`) or if `base` also appears among the remotes.
    pub fn new(base: usize, remotes: Vec<usize>) -> StarTopology {
        assert!(remotes.len() >= 2, "the paper's model requires N >= 2");
        assert!(!remotes.contains(&base), "base station cannot be a remote");
        StarTopology { base, remotes }
    }

    /// Number of remote entities `N`.
    pub fn n_remotes(&self) -> usize {
        self.remotes.len()
    }

    /// All (sender, receiver) wireless link pairs: uplinks and downlinks.
    pub fn links(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::with_capacity(self.remotes.len() * 2);
        for &r in &self.remotes {
            out.push((self.base, r)); // downlink
            out.push((r, self.base)); // uplink
        }
        out
    }

    /// Wires a [`NetworkBridge`]: each up/downlink gets a fresh
    /// [`WirelessLink`] produced by `make_loss` (seeded per link), and
    /// every remote-to-remote pair gets a dead [`NoLinkChannel`].
    ///
    /// `make_loss(sender, receiver, link_seed)` builds the loss process for
    /// one directed link.
    pub fn wire<F>(&self, base_seed: u64, mut make_loss: F) -> NetworkBridge
    where
        F: FnMut(usize, usize, u64) -> Box<dyn LossModel>,
    {
        let mut bridge = NetworkBridge::perfect();
        for (k, (from, to)) in self.links().into_iter().enumerate() {
            let seed = base_seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(k as u64 + 1);
            let link = WirelessLink::new(make_loss(from, to, seed));
            bridge.set_link(from, to, Box::new(link));
        }
        // Forbid direct remote-to-remote communication.
        for &a in &self.remotes {
            for &b in &self.remotes {
                if a != b {
                    bridge.set_link(a, b, Box::new(NoLinkChannel));
                }
            }
        }
        bridge
    }

    /// ASCII rendering of the layout (the Fig. 7 regenerator).
    pub fn render(&self, names: &[String]) -> String {
        let name = |i: usize| -> String {
            names
                .get(i)
                .cloned()
                .unwrap_or_else(|| format!("entity{i}"))
        };
        let mut out = String::new();
        out.push_str(&format!(
            "base station (Supervisor): [{}] (index {})\n",
            name(self.base),
            self.base
        ));
        for (k, &r) in self.remotes.iter().enumerate() {
            out.push_str(&format!(
                "  xi_{}: [{}] (index {})  <== downlink ==  [{}]  == uplink ==>\n",
                k + 1,
                name(r),
                r,
                name(self.base)
            ));
        }
        out.push_str("no direct wireless links between remote entities\n");
        out
    }
}

impl fmt::Display for StarTopology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "star(base={}, remotes={:?})", self.base, self.remotes)
    }
}

/// Convenience: a uniform-Bernoulli star wiring (every link gets the same
/// i.i.d. loss probability, independently seeded).
pub fn bernoulli_star(topology: &StarTopology, p: f64, base_seed: u64) -> NetworkBridge {
    topology.wire(base_seed, |_, _, seed| {
        Box::new(crate::loss::BernoulliLoss::new(p, seed))
    })
}

/// Convenience: the paper's interference conditions on every link.
pub fn interferer_star(topology: &StarTopology, base_seed: u64) -> NetworkBridge {
    topology.wire(base_seed, |_, _, seed| {
        Box::new(crate::loss::Interferer::paper_conditions(seed))
    })
}

/// A placeholder so `max_delay` of links remains discoverable in docs.
pub const TYPICAL_ZIGBEE_SLOT: Time = Time::ZERO;

#[cfg(test)]
mod tests {
    use super::*;
    use pte_hybrid::Root;
    use pte_sim::network::{Delivery, Message};

    fn msg(from: usize, to: usize) -> Message {
        Message {
            root: Root::new("evt"),
            sender: from,
            receiver: to,
            seq: 0,
            sent_at: Time::ZERO,
        }
    }

    #[test]
    fn links_enumerated() {
        let t = StarTopology::new(0, vec![1, 2]);
        let links = t.links();
        assert_eq!(links.len(), 4);
        assert!(links.contains(&(0, 1)));
        assert!(links.contains(&(1, 0)));
        assert!(links.contains(&(0, 2)));
        assert!(links.contains(&(2, 0)));
        assert_eq!(t.n_remotes(), 2);
    }

    #[test]
    #[should_panic(expected = "N >= 2")]
    fn rejects_single_remote() {
        let _ = StarTopology::new(0, vec![1]);
    }

    #[test]
    #[should_panic(expected = "cannot be a remote")]
    fn rejects_base_in_remotes() {
        let _ = StarTopology::new(0, vec![0, 1]);
    }

    #[test]
    fn remote_to_remote_blocked() {
        let t = StarTopology::new(0, vec![1, 2]);
        let mut bridge = bernoulli_star(&t, 0.0, 1);
        assert!(matches!(
            bridge.transmit(&msg(1, 2), Time::ZERO),
            Delivery::Dropped { .. }
        ));
        assert!(matches!(
            bridge.transmit(&msg(2, 1), Time::ZERO),
            Delivery::Dropped { .. }
        ));
        // Up/downlinks with p=0 always deliver.
        assert!(matches!(
            bridge.transmit(&msg(0, 1), Time::ZERO),
            Delivery::Delivered { .. }
        ));
        assert!(matches!(
            bridge.transmit(&msg(2, 0), Time::ZERO),
            Delivery::Delivered { .. }
        ));
    }

    #[test]
    fn per_link_seeds_differ() {
        let t = StarTopology::new(0, vec![1, 2]);
        let mut bridge = bernoulli_star(&t, 0.5, 7);
        // Sample both downlinks; with independent seeds they should not be
        // perfectly correlated over many draws.
        let mut same = 0;
        for _ in 0..1000 {
            let a = matches!(
                bridge.transmit(&msg(0, 1), Time::ZERO),
                Delivery::Dropped { .. }
            );
            let b = matches!(
                bridge.transmit(&msg(0, 2), Time::ZERO),
                Delivery::Dropped { .. }
            );
            if a == b {
                same += 1;
            }
        }
        assert!(same < 950, "links independent: {same}/1000 equal");
    }

    #[test]
    fn interferer_star_loses_packets() {
        let t = StarTopology::new(0, vec![1, 2]);
        let mut bridge = interferer_star(&t, 3);
        let mut dropped = 0;
        for k in 0..2000 {
            if matches!(
                bridge.transmit(&msg(0, 1), Time::millis(k as f64 * 10.0)),
                Delivery::Dropped { .. }
            ) {
                dropped += 1;
            }
        }
        assert!(dropped > 100, "interference causes loss: {dropped}");
        assert!(dropped < 1500, "but not total loss: {dropped}");
    }

    #[test]
    fn render_layout() {
        let t = StarTopology::new(0, vec![1, 2]);
        let names = vec![
            "supervisor".to_string(),
            "ventilator".to_string(),
            "laser-scalpel".to_string(),
        ];
        let r = t.render(&names);
        assert!(r.contains("supervisor"));
        assert!(r.contains("ventilator"));
        assert!(r.contains("no direct wireless links"));
        assert_eq!(format!("{t}"), "star(base=0, remotes=[1, 2])");
    }
}
