//! A wireless link: loss model + delay model as a `pte_sim` channel.

use crate::delay::DelayModel;
use crate::loss::LossModel;
use pte_hybrid::Time;
use pte_sim::network::{Channel, Delivery, DropReason, Message};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A unidirectional wireless link combining a [`LossModel`] with a
/// [`DelayModel`], with an optional receiver-side acceptance window:
/// deliveries later than `max_acceptable_delay` are treated as lost,
/// mirroring the fault model's "remote entities locally specify delays as
/// acceptable or as lost-messages".
pub struct WirelessLink {
    loss: Box<dyn LossModel>,
    delay: DelayModel,
    /// Deliveries beyond this delay are counted as losses; `None` accepts
    /// any delay the model produces.
    pub max_acceptable_delay: Option<Time>,
    rng: StdRng,
}

impl WirelessLink {
    /// Creates a link with the given loss process and no delay.
    pub fn new(loss: Box<dyn LossModel>) -> WirelessLink {
        WirelessLink {
            loss,
            delay: DelayModel::None,
            max_acceptable_delay: None,
            rng: StdRng::seed_from_u64(0),
        }
    }

    /// Sets the delay model (with its RNG seed).
    pub fn with_delay(mut self, delay: DelayModel, seed: u64) -> WirelessLink {
        self.delay = delay;
        self.rng = StdRng::seed_from_u64(seed);
        self
    }

    /// Sets the receiver-side acceptance window.
    pub fn with_acceptance_window(mut self, window: Time) -> WirelessLink {
        self.max_acceptable_delay = Some(window);
        self
    }
}

impl Channel for WirelessLink {
    fn transmit(&mut self, _msg: &Message, now: Time) -> Delivery {
        if self.loss.is_lost(now) {
            return Delivery::Dropped {
                reason: DropReason::Erasure,
            };
        }
        let delay = self.delay.sample(&mut self.rng);
        if let Some(window) = self.max_acceptable_delay {
            if delay > window {
                return Delivery::Dropped {
                    reason: DropReason::Erasure,
                };
            }
        }
        Delivery::Delivered { at: now + delay }
    }

    fn describe(&self) -> String {
        format!("wireless[{}]", self.loss.describe())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::{BernoulliLoss, ScriptedLoss};
    use pte_hybrid::Root;

    fn msg() -> Message {
        Message {
            root: Root::new("evt"),
            sender: 0,
            receiver: 1,
            seq: 0,
            sent_at: Time::ZERO,
        }
    }

    #[test]
    fn lossless_link_delivers() {
        let mut link = WirelessLink::new(Box::new(ScriptedLoss::deliver_all()));
        assert!(matches!(
            link.transmit(&msg(), Time::seconds(1.0)),
            Delivery::Delivered { at } if at == Time::seconds(1.0)
        ));
    }

    #[test]
    fn lossy_link_drops() {
        let mut link = WirelessLink::new(Box::new(ScriptedLoss::drop_all()));
        assert!(matches!(
            link.transmit(&msg(), Time::ZERO),
            Delivery::Dropped { .. }
        ));
    }

    #[test]
    fn delay_applies() {
        let mut link = WirelessLink::new(Box::new(ScriptedLoss::deliver_all()))
            .with_delay(DelayModel::Constant(Time::millis(20.0)), 1);
        match link.transmit(&msg(), Time::seconds(1.0)) {
            Delivery::Delivered { at } => {
                assert!(at.approx_eq(Time::seconds(1.02), Time::seconds(1e-9)))
            }
            other => panic!("expected delivery, got {other:?}"),
        }
    }

    #[test]
    fn acceptance_window_converts_delay_to_loss() {
        let mut link = WirelessLink::new(Box::new(ScriptedLoss::deliver_all()))
            .with_delay(DelayModel::Constant(Time::millis(50.0)), 1)
            .with_acceptance_window(Time::millis(10.0));
        assert!(matches!(
            link.transmit(&msg(), Time::ZERO),
            Delivery::Dropped { .. }
        ));
    }

    #[test]
    fn empirical_loss_rate_carries_through() {
        let mut link = WirelessLink::new(Box::new(BernoulliLoss::new(0.25, 77)));
        let mut dropped = 0;
        let n = 100_000;
        for k in 0..n {
            if matches!(
                link.transmit(&msg(), Time::seconds(k as f64 * 0.001)),
                Delivery::Dropped { .. }
            ) {
                dropped += 1;
            }
        }
        let rate = dropped as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.01, "rate {rate}");
    }
}
