//! Packet encoding and checksums.
//!
//! The fault model assumes "each packet's checksum is strong enough to
//! detect any bit error(s); a packet with bit error(s) is discarded at the
//! receiver". This module provides that mechanism concretely: events are
//! serialized into framed packets protected by CRC-32 (IEEE 802.3
//! polynomial), and [`Packet::verify`] implements the receiver-side
//! discard decision. The bit-error channel in [`crate::loss`] flips bits
//! in the encoded frame and relies on this check.

use bytes::{BufMut, Bytes, BytesMut};

/// CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`).
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &byte in data {
        crc ^= byte as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// A framed wireless packet: header, payload, trailing CRC-32.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Packet {
    /// Sender entity index.
    pub sender: u16,
    /// Receiver entity index.
    pub receiver: u16,
    /// Sequence number.
    pub seq: u32,
    /// Payload (the event root, UTF-8).
    pub payload: Bytes,
}

impl Packet {
    /// Frame header magic.
    pub const MAGIC: u16 = 0x50E5;

    /// Creates a packet carrying an event root.
    pub fn event(sender: u16, receiver: u16, seq: u32, root: &str) -> Packet {
        Packet {
            sender,
            receiver,
            seq,
            payload: Bytes::copy_from_slice(root.as_bytes()),
        }
    }

    /// Serializes the packet, appending the CRC-32 of everything before it.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(16 + self.payload.len());
        buf.put_u16(Self::MAGIC);
        buf.put_u16(self.sender);
        buf.put_u16(self.receiver);
        buf.put_u32(self.seq);
        buf.put_u16(self.payload.len() as u16);
        buf.put_slice(&self.payload);
        let crc = crc32(&buf);
        buf.put_u32(crc);
        buf.freeze()
    }

    /// Checks the trailing CRC of an encoded frame — the receiver's
    /// discard decision. Returns `true` if the frame is intact.
    pub fn verify(frame: &[u8]) -> bool {
        if frame.len() < 16 {
            return false;
        }
        let (body, trailer) = frame.split_at(frame.len() - 4);
        let expected = u32::from_be_bytes([trailer[0], trailer[1], trailer[2], trailer[3]]);
        crc32(body) == expected
    }

    /// Parses a verified frame back into a packet. Returns `None` on
    /// malformed or corrupt frames.
    pub fn decode(frame: &[u8]) -> Option<Packet> {
        if !Packet::verify(frame) {
            return None;
        }
        let body = &frame[..frame.len() - 4];
        if body.len() < 12 {
            return None;
        }
        let magic = u16::from_be_bytes([body[0], body[1]]);
        if magic != Self::MAGIC {
            return None;
        }
        let sender = u16::from_be_bytes([body[2], body[3]]);
        let receiver = u16::from_be_bytes([body[4], body[5]]);
        let seq = u32::from_be_bytes([body[6], body[7], body[8], body[9]]);
        let len = u16::from_be_bytes([body[10], body[11]]) as usize;
        if body.len() != 12 + len {
            return None;
        }
        Some(Packet {
            sender,
            receiver,
            seq,
            payload: Bytes::copy_from_slice(&body[12..]),
        })
    }

    /// The payload interpreted as an event root.
    pub fn root(&self) -> Option<&str> {
        std::str::from_utf8(&self.payload).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn encode_decode_round_trip() {
        let p = Packet::event(0, 2, 42, "evtReq");
        let frame = p.encode();
        assert!(Packet::verify(&frame));
        let q = Packet::decode(&frame).unwrap();
        assert_eq!(p, q);
        assert_eq!(q.root(), Some("evtReq"));
    }

    #[test]
    fn single_bit_flip_always_detected() {
        let p = Packet::event(1, 0, 7, "evtLeaseApprove");
        let frame = p.encode();
        for byte in 0..frame.len() {
            for bit in 0..8 {
                let mut corrupted = frame.to_vec();
                corrupted[byte] ^= 1 << bit;
                assert!(
                    !Packet::verify(&corrupted),
                    "bit flip at {byte}:{bit} not detected"
                );
            }
        }
    }

    #[test]
    fn short_frames_rejected() {
        assert!(!Packet::verify(&[]));
        assert!(!Packet::verify(&[0u8; 15]));
        assert!(Packet::decode(&[0u8; 15]).is_none());
    }

    #[test]
    fn wrong_magic_rejected() {
        let p = Packet::event(0, 1, 1, "x");
        let frame = p.encode().to_vec();
        let mut forged = frame.clone();
        forged[0] = 0x00;
        forged[1] = 0x00;
        // Fix up the CRC so only the magic check fails.
        let body_len = forged.len() - 4;
        let crc = crc32(&forged[..body_len]);
        forged[body_len..].copy_from_slice(&crc.to_be_bytes());
        assert!(Packet::verify(&forged));
        assert!(Packet::decode(&forged).is_none());
    }

    proptest! {
        #[test]
        fn round_trip_arbitrary(sender in 0u16..8, receiver in 0u16..8,
                                seq in 0u32..1_000_000,
                                root in "[a-zA-Z0-9]{0,64}") {
            let p = Packet::event(sender, receiver, seq, &root);
            let frame = p.encode();
            let q = Packet::decode(&frame).unwrap();
            prop_assert_eq!(p, q);
        }

        #[test]
        fn random_corruption_detected(root in "[a-z]{1,32}", flips in 1usize..4,
                                       seed in 0u64..1000) {
            // Flip `flips` distinct bits pseudo-randomly; CRC-32 detects all
            // 1-3 bit errors at these frame sizes.
            let p = Packet::event(0, 1, 9, &root);
            let frame = p.encode().to_vec();
            let nbits = frame.len() * 8;
            let mut corrupted = frame.clone();
            let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            let mut chosen = std::collections::HashSet::new();
            while chosen.len() < flips {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                chosen.insert((state >> 33) as usize % nbits);
            }
            for bit in chosen {
                corrupted[bit / 8] ^= 1 << (bit % 8);
            }
            prop_assert!(!Packet::verify(&corrupted));
        }
    }
}
