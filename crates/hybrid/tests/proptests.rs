//! Property-based tests for the hybrid automaton substrate: evaluator
//! algebra, shift invariance (the substitution elaboration relies on),
//! and structural properties of elaboration on randomized automata.

use proptest::prelude::*;
use pte_hybrid::automaton::VarKind;
use pte_hybrid::elaboration::elaborate;
use pte_hybrid::independence::{is_simple, not_simple_reasons};
use pte_hybrid::validate::validate;
use pte_hybrid::{Cmp, EvalCtx, Expr, HybridAutomaton, LocId, Pred, VarId};

/// Strategy: a random expression over `nvars` variables, bounded depth.
fn exprs(nvars: usize) -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-100.0f64..100.0).prop_map(Expr::Const),
        (0..nvars).prop_map(|i| Expr::Var(VarId(i))),
    ];
    leaf.prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a + b),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a - b),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a * b),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.min(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.max(b)),
            inner.clone().prop_map(|a| -a),
            inner.prop_map(|a| a.abs()),
        ]
    })
}

/// Strategy: a random atomic-or-compound predicate over `nvars` variables.
fn preds(nvars: usize) -> impl Strategy<Value = Pred> {
    let cmp = prop_oneof![Just(Cmp::Lt), Just(Cmp::Le), Just(Cmp::Gt), Just(Cmp::Ge),];
    let atom = (exprs(nvars), cmp, exprs(nvars)).prop_map(|(l, op, r)| Pred::Cmp(l, op, r));
    atom.prop_recursive(2, 12, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            inner.prop_map(|a| a.not()),
        ]
    })
}

proptest! {
    /// Shifting variable indices commutes with evaluation under a
    /// correspondingly shifted valuation — the algebraic fact elaboration
    /// depends on when it concatenates variable vectors.
    #[test]
    fn expr_shift_invariance(e in exprs(3), vars in proptest::collection::vec(-50.0f64..50.0, 3), offset in 0usize..5) {
        let direct = e.eval(&EvalCtx::new(&vars));
        let mut padded = vec![0.0; offset];
        padded.extend_from_slice(&vars);
        let shifted = e.shift_vars(offset).eval(&EvalCtx::new(&padded));
        // NaN-safe comparison (0*inf etc. can produce NaN on both sides).
        prop_assert!(
            direct == shifted || (direct.is_nan() && shifted.is_nan()),
            "{direct} != {shifted}"
        );
    }

    #[test]
    fn pred_shift_invariance(p in preds(3), vars in proptest::collection::vec(-50.0f64..50.0, 3), offset in 0usize..5) {
        let direct = p.eval(&EvalCtx::new(&vars));
        let mut padded = vec![0.0; offset];
        padded.extend_from_slice(&vars);
        let shifted = p.shift_vars(offset).eval(&EvalCtx::new(&padded));
        prop_assert_eq!(direct, shifted);
    }

    /// `eval_slack` is monotone in the slack parameter: a larger slack
    /// accepts a superset of states.
    #[test]
    fn eval_slack_monotone(p in preds(2), vars in proptest::collection::vec(-50.0f64..50.0, 2), s1 in 0.0f64..1.0, s2 in 0.0f64..1.0) {
        let (lo, hi) = if s1 <= s2 { (s1, s2) } else { (s2, s1) };
        let ctx = EvalCtx::new(&vars);
        if p.eval_slack(&ctx, lo) {
            prop_assert!(p.eval_slack(&ctx, hi), "slack {hi} must accept what {lo} accepts");
        }
    }

    /// Strict evaluation agrees with zero-slack evaluation.
    #[test]
    fn eval_slack_zero_is_strict(p in preds(2), vars in proptest::collection::vec(-50.0f64..50.0, 2)) {
        let ctx = EvalCtx::new(&vars);
        prop_assert_eq!(p.eval(&ctx), p.eval_slack(&ctx, 0.0));
    }

    /// Variable collection is sound: evaluation only depends on collected
    /// variables (changing any other coordinate doesn't change the value).
    #[test]
    fn collected_vars_are_sufficient(e in exprs(3), vars in proptest::collection::vec(-50.0f64..50.0, 3), noise in -100.0f64..100.0) {
        let used = e.vars();
        let direct = e.eval(&EvalCtx::new(&vars));
        let mut altered = vars.clone();
        for (i, slot) in altered.iter_mut().enumerate() {
            if !used.contains(&VarId(i)) {
                *slot = noise;
            }
        }
        let after = e.eval(&EvalCtx::new(&altered));
        prop_assert!(direct == after || (direct.is_nan() && after.is_nan()));
    }
}

/// Builds a random simple child automaton: `k` locations in a cycle with
/// one continuous variable, a shared invariant, zero initial data.
fn simple_child(k: usize, flow: f64) -> HybridAutomaton {
    let mut b = HybridAutomaton::builder("child");
    let x = b.var("child_x", VarKind::Continuous, 0.0);
    let inv = Pred::ge(Expr::var(x), Expr::c(-1e6)).and(Pred::le(Expr::var(x), Expr::c(1e6)));
    let locs: Vec<LocId> = (0..k).map(|i| b.location(format!("C{i}"))).collect();
    for (i, l) in locs.iter().enumerate() {
        b.invariant(*l, inv.clone());
        b.flow(*l, x, Expr::c(flow));
        b.edge(*l, locs[(i + 1) % k])
            .on(format!("child_evt{i}"))
            .done();
    }
    b.initial(locs[0], None);
    b.build().expect("child builds")
}

/// Builds a random host with `k` locations in a line plus a back edge.
fn host(k: usize) -> HybridAutomaton {
    let mut b = HybridAutomaton::builder("host");
    let c = b.clock("host_clk");
    let locs: Vec<LocId> = (0..k)
        .map(|i| {
            if i % 2 == 1 {
                b.risky_location(format!("H{i}"))
            } else {
                b.location(format!("H{i}"))
            }
        })
        .collect();
    for w in locs.windows(2) {
        b.edge(w[0], w[1]).on_lossy(format!("go{}", w[0].0)).done();
    }
    b.edge(*locs.last().unwrap(), locs[0])
        .guard(Pred::ge(Expr::var(c), Expr::c(1.0)))
        .urgent()
        .reset_clock(c)
        .done();
    b.initial(locs[0], None);
    b.build().expect("host builds")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Elaboration preserves structural counts and the projection maps
    /// every new location onto the host.
    #[test]
    fn elaboration_structure(hk in 2usize..6, ck in 1usize..5, v in 0usize..6, flow in -2.0f64..2.0) {
        let h = host(hk);
        let child = simple_child(ck, flow);
        prop_assume!(v < h.locations.len());
        let el = elaborate(&h, LocId(v), &child).expect("elaborates");
        let a = &el.automaton;

        // Locations: host − 1 + child.
        prop_assert_eq!(a.locations.len(), hk - 1 + ck);
        // Variables concatenated.
        prop_assert_eq!(a.dimension(), h.dimension() + child.dimension());
        // Projection total and onto host ids.
        prop_assert_eq!(el.projection.len(), a.locations.len());
        for p in &el.projection {
            prop_assert!(p.0 < hk);
        }
        // Risky classification preserved through the projection.
        for (i, loc) in a.locations.iter().enumerate() {
            prop_assert_eq!(loc.risky, h.locations[el.projection[i].0].risky);
        }
        // Edge count: host edges expand by child location/initial
        // multiplicity; child edges appear once each.
        let ingress = h.edges.iter().filter(|e| e.dst == LocId(v) && e.src != LocId(v)).count();
        let egress = h.edges.iter().filter(|e| e.src == LocId(v) && e.dst != LocId(v)).count();
        let selfloops = h.edges.iter().filter(|e| e.src == LocId(v) && e.dst == LocId(v)).count();
        let unchanged = h.edges.len() - ingress - egress - selfloops;
        let expected = unchanged
            + ingress * child.initial_locations().len()
            + egress * ck
            + selfloops * ck
            + child.edges.len();
        prop_assert_eq!(a.edges.len(), expected);
        // The result still validates (modulo findings inherited from the
        // host, which validates cleanly by construction).
        prop_assert!(validate(a).is_clean(), "{}", validate(a));
    }

    /// Simplicity detection matches its definition on generated children.
    #[test]
    fn generated_children_are_simple(ck in 1usize..6, flow in -2.0f64..2.0) {
        let child = simple_child(ck, flow);
        prop_assert!(is_simple(&child), "{:?}", not_simple_reasons(&child));
    }
}
