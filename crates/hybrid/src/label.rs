//! Synchronization labels (Section II-A, item 8).
//!
//! A synchronization label consists of a **root** (the event) and a
//! **prefix** describing the automaton's role for that event:
//!
//! * `!root`  — the automaton *sends* (broadcasts) the event;
//! * `?root`  — the automaton *receives* the event over a reliable link
//!   (e.g. the wired SpO2 sensor of the case study);
//! * `??root` — the automaton *receives* the event over an unreliable
//!   (wireless) link: the event may be arbitrarily lost (fault model,
//!   Section II-B);
//! * a bare root — an *internal* event with no receiver.
//!
//! Labels with different prefixes or roots are distinct labels (`!l`, `?l`
//! and `??l` are three different labels relating to the same event `l`).

use serde::{Deserialize, Serialize};
use std::fmt;

/// The root of a synchronization label: the event name, shared between the
/// `!`-labelled sender edge and the `?`/`??`-labelled receiver edges.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Root(String);

impl Root {
    /// Creates an event root from a name.
    pub fn new(name: impl Into<String>) -> Root {
        Root(name.into())
    }

    /// The event name.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Debug for Root {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Display for Root {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<&str> for Root {
    fn from(s: &str) -> Root {
        Root::new(s)
    }
}

impl From<String> for Root {
    fn from(s: String) -> Root {
        Root::new(s)
    }
}

/// A synchronization label: event root plus role prefix.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum SyncLabel {
    /// `!root`: this edge broadcasts the event.
    Send(Root),
    /// `?root`: this edge is triggered by reliably receiving the event.
    Recv(Root),
    /// `??root`: this edge is triggered by receiving the event over an
    /// unreliable (lossy) link.
    RecvLossy(Root),
    /// Internal event without receivers; the `!` prefix is omitted.
    Internal(Root),
}

impl SyncLabel {
    /// The label's event root.
    pub fn root(&self) -> &Root {
        match self {
            SyncLabel::Send(r)
            | SyncLabel::Recv(r)
            | SyncLabel::RecvLossy(r)
            | SyncLabel::Internal(r) => r,
        }
    }

    /// `true` for `?root` and `??root` labels.
    pub fn is_receive(&self) -> bool {
        matches!(self, SyncLabel::Recv(_) | SyncLabel::RecvLossy(_))
    }

    /// `true` for `!root` labels.
    pub fn is_send(&self) -> bool {
        matches!(self, SyncLabel::Send(_))
    }

    /// `true` for `??root` labels (wireless reception; may be lost).
    pub fn is_lossy(&self) -> bool {
        matches!(self, SyncLabel::RecvLossy(_))
    }
}

impl fmt::Display for SyncLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SyncLabel::Send(r) => write!(f, "!{r}"),
            SyncLabel::Recv(r) => write!(f, "?{r}"),
            SyncLabel::RecvLossy(r) => write!(f, "??{r}"),
            SyncLabel::Internal(r) => write!(f, "{r}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roots_compare_by_name() {
        assert_eq!(Root::new("evtA"), Root::from("evtA"));
        assert_ne!(Root::new("evtA"), Root::new("evtB"));
    }

    #[test]
    fn prefixes_distinguish_labels() {
        let l = Root::new("l");
        let send = SyncLabel::Send(l.clone());
        let recv = SyncLabel::Recv(l.clone());
        let lossy = SyncLabel::RecvLossy(l.clone());
        assert_ne!(send, recv);
        assert_ne!(recv, lossy);
        assert_eq!(send.root(), recv.root());
    }

    #[test]
    fn role_predicates() {
        let l = Root::new("l");
        assert!(SyncLabel::Send(l.clone()).is_send());
        assert!(SyncLabel::Recv(l.clone()).is_receive());
        assert!(SyncLabel::RecvLossy(l.clone()).is_receive());
        assert!(SyncLabel::RecvLossy(l.clone()).is_lossy());
        assert!(!SyncLabel::Recv(l.clone()).is_lossy());
        assert!(!SyncLabel::Internal(l).is_receive());
    }

    #[test]
    fn display_uses_paper_notation() {
        let l = Root::new("evtVPumpIn");
        assert_eq!(format!("{}", SyncLabel::Send(l.clone())), "!evtVPumpIn");
        assert_eq!(format!("{}", SyncLabel::Recv(l.clone())), "?evtVPumpIn");
        assert_eq!(
            format!("{}", SyncLabel::RecvLossy(l.clone())),
            "??evtVPumpIn"
        );
        assert_eq!(format!("{}", SyncLabel::Internal(l)), "evtVPumpIn");
    }
}
