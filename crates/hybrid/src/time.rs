//! Virtual time.
//!
//! The executor and all timing parameters of the lease design pattern use a
//! single notion of time: seconds since the start of the trajectory, stored
//! as a finite `f64`. [`Time`] is a thin newtype that (a) forbids NaN so a
//! total order exists (needed by the event queue), and (b) keeps instants
//! from being confused with raw floats at API boundaries.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// An instant (or span) of virtual time, in seconds.
///
/// `Time` is totally ordered ([`Ord`] is implemented via
/// [`f64::total_cmp`]); constructors reject NaN in debug builds. Arithmetic
/// is closed over `Time` — the paper's configuration constants
/// (`T^max_wait`, `T^max_run,i`, …) are spans and its trajectory timestamps
/// are instants, and both occur in the same closed-form inequalities
/// (conditions c1–c7), so a single type keeps that algebra direct.
#[derive(Clone, Copy, Default, Serialize, Deserialize)]
pub struct Time(f64);

impl Time {
    /// The origin of virtual time (also the zero span).
    pub const ZERO: Time = Time(0.0);

    /// A span/instant so large it compares greater than any reachable time.
    pub const INFINITY: Time = Time(f64::INFINITY);

    /// Creates a `Time` from seconds.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `secs` is NaN.
    #[inline]
    pub fn seconds(secs: f64) -> Time {
        debug_assert!(!secs.is_nan(), "Time must not be NaN");
        Time(secs)
    }

    /// Creates a `Time` from milliseconds.
    #[inline]
    pub fn millis(ms: f64) -> Time {
        Time::seconds(ms / 1_000.0)
    }

    /// The number of seconds as a raw `f64`.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0
    }

    /// Whether this time is finite (not `Time::INFINITY`).
    #[inline]
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, other: Time) -> Time {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, other: Time) -> Time {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Clamps into `[lo, hi]`.
    #[inline]
    pub fn clamp(self, lo: Time, hi: Time) -> Time {
        self.max(lo).min(hi)
    }

    /// Absolute value (useful for tolerance comparisons on spans).
    #[inline]
    pub fn abs(self) -> Time {
        Time(self.0.abs())
    }

    /// `true` if `self` is within `tol` of `other`.
    #[inline]
    pub fn approx_eq(self, other: Time, tol: Time) -> bool {
        (self - other).abs() <= tol
    }
}

impl PartialEq for Time {
    fn eq(&self, other: &Self) -> bool {
        self.0.total_cmp(&other.0) == std::cmp::Ordering::Equal
    }
}
impl Eq for Time {}

impl PartialOrd for Time {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Time {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl Add for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: Time) -> Time {
        Time::seconds(self.0 + rhs.0)
    }
}
impl AddAssign for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Time) {
        *self = *self + rhs;
    }
}
impl Sub for Time {
    type Output = Time;
    #[inline]
    fn sub(self, rhs: Time) -> Time {
        Time::seconds(self.0 - rhs.0)
    }
}
impl SubAssign for Time {
    #[inline]
    fn sub_assign(&mut self, rhs: Time) {
        *self = *self - rhs;
    }
}
impl Neg for Time {
    type Output = Time;
    #[inline]
    fn neg(self) -> Time {
        Time::seconds(-self.0)
    }
}
impl Mul<f64> for Time {
    type Output = Time;
    #[inline]
    fn mul(self, rhs: f64) -> Time {
        Time::seconds(self.0 * rhs)
    }
}
impl Div<f64> for Time {
    type Output = Time;
    #[inline]
    fn div(self, rhs: f64) -> Time {
        Time::seconds(self.0 / rhs)
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}s", self.0)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(prec) = f.precision() {
            write!(f, "{:.*}s", prec, self.0)
        } else {
            write!(f, "{:.3}s", self.0)
        }
    }
}

impl From<f64> for Time {
    fn from(secs: f64) -> Time {
        Time::seconds(secs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_total() {
        let a = Time::seconds(1.0);
        let b = Time::seconds(2.0);
        assert!(a < b);
        assert!(b > a);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        assert!(Time::INFINITY > Time::seconds(1e300));
    }

    #[test]
    fn arithmetic_round_trips() {
        let a = Time::seconds(1.5);
        let b = Time::seconds(0.25);
        assert_eq!((a + b).as_secs_f64(), 1.75);
        assert_eq!((a - b).as_secs_f64(), 1.25);
        assert_eq!((a * 2.0).as_secs_f64(), 3.0);
        assert_eq!((a / 2.0).as_secs_f64(), 0.75);
        assert_eq!((-b).as_secs_f64(), -0.25);
    }

    #[test]
    fn millis_constructor() {
        assert_eq!(Time::millis(250.0), Time::seconds(0.25));
    }

    #[test]
    fn clamp_and_abs() {
        assert_eq!(
            Time::seconds(5.0).clamp(Time::ZERO, Time::seconds(2.0)),
            Time::seconds(2.0)
        );
        assert_eq!(Time::seconds(-3.0).abs(), Time::seconds(3.0));
    }

    #[test]
    fn approx_eq_with_tolerance() {
        assert!(Time::seconds(1.0).approx_eq(Time::seconds(1.0 + 1e-12), Time::seconds(1e-9)));
        assert!(!Time::seconds(1.0).approx_eq(Time::seconds(1.1), Time::seconds(1e-9)));
    }

    #[test]
    fn display_formats_seconds() {
        assert_eq!(format!("{}", Time::seconds(1.25)), "1.250s");
        assert_eq!(format!("{:.1}", Time::seconds(1.25)), "1.2s");
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        let _ = Time::seconds(f64::NAN);
    }
}
