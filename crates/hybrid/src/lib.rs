//! # pte-hybrid
//!
//! Hybrid automaton formalism for Proper-Temporal-Embedding (PTE) wireless
//! cyber-physical systems, reproducing the model of Tan et al.,
//! *"Guaranteeing Proper-Temporal-Embedding Safety Rules in Wireless CPS: A
//! Hybrid Formal Modeling Approach"* (DSN 2013), Section II.
//!
//! A hybrid automaton `A = (x(t), V, inv, F, E, g, R, L, syn, Φ0)` couples
//!
//! * a vector of continuous **data state variables** `x(t)` (see [`expr`]),
//! * a finite set of **locations** `V` with **invariants** `inv(v)` and
//!   **flows** `F` (differential equations, one per variable per location),
//! * **edges** `E` with **guards** `g(e)`, **resets** `R`, and
//!   **synchronization labels** `syn(e)` (see [`label`]) that model reliable
//!   (`?`) and lossy wireless (`??`) event reception.
//!
//! The crate additionally provides the paper's Section IV-C machinery:
//!
//! * [`independence`] — Definition 2 (hybrid automata independence) and
//!   Definition 3 (simple hybrid automaton);
//! * [`elaboration`] — atomic elaboration `E(A, v, A′)` and parallel
//!   elaboration, by which design-pattern automata are refined into concrete
//!   CPS designs without disturbing their PTE safety guarantees (Theorem 2);
//! * [`dot`] — Graphviz export used to regenerate the paper's automata
//!   figures (Figs. 2, 3, 5, 6).
//!
//! The execution semantics (trajectories) live in the `pte-sim` crate; this
//! crate is purely the model.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod automaton;
pub mod dot;
pub mod elaboration;
pub mod expr;
pub mod independence;
pub mod label;
pub mod pred;
pub mod time;
pub mod validate;

pub use automaton::{
    AutomatonBuilder, BuildError, Edge, EdgeId, HybridAutomaton, InitialState, LocId, Location,
    Trigger, VarDecl, VarKind,
};
pub use expr::{EvalCtx, Expr, VarId};
pub use label::{Root, SyncLabel};
pub use pred::{Cmp, Pred};
pub use time::Time;
