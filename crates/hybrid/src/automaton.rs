//! The hybrid automaton model and its builder.
//!
//! This module implements the tuple
//! `A = (x(t), V, inv, F, E, g, R, L, syn, Φ0)` of Section II-A:
//!
//! * `x(t)` — [`VarDecl`]s (the data state variables vector);
//! * `V` — [`Location`]s, partitioned into safe and risky locations
//!   (Section III) via [`Location::risky`];
//! * `inv` — [`Location::invariant`];
//! * `F` — [`Location::flows`], one derivative expression per variable;
//! * `E`, `g`, `R` — [`Edge`]s with guards and resets;
//! * `L`, `syn` — synchronization labels: an edge may carry a receive
//!   [`Trigger`] (`?l` / `??l`) and a list of emitted roots (`!l`).
//!   Footnote 2 of the paper notes that a receive-then-send step formally
//!   passes through an intermediate location of zero dwelling time; we
//!   flatten that pattern into a single edge carrying both the trigger and
//!   the emissions, and [`Edge::labels`] reports the full label multiset;
//! * `Φ0` — [`InitialState`]s.
//!
//! Timed behaviour ("dwell in `v` for exactly `T`, then transit") is
//! expressed with explicit **clock variables** ([`VarKind::Clock`], slope 1
//! by default) guarded by `clock >= T`, an invariant `clock <= T`, and the
//! [`Edge::urgent`] flag, which the executor honors by firing the edge at
//! the exact expiry instant.

use crate::expr::{Expr, VarId};
use crate::label::{Root, SyncLabel};
use crate::pred::Pred;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Index of a location within an automaton.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LocId(pub usize);

impl fmt::Debug for LocId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Index of an edge within an automaton.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EdgeId(pub usize);

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// The kind of a data state variable, controlling its default flow.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum VarKind {
    /// A clock: default derivative `1` in every location. The design
    /// pattern's dwelling timers and leases are clocks.
    Clock,
    /// A general continuous state: default derivative `0` (value holds)
    /// unless a location overrides its flow. Physical-world quantities
    /// (cylinder height, SpO2, …) are of this kind.
    Continuous,
}

/// Declaration of one data state variable.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct VarDecl {
    /// Variable name, local to the automaton.
    pub name: String,
    /// Kind (controls the default flow).
    pub kind: VarKind,
    /// Initial value (the design pattern requires all-zero initial data).
    pub init: f64,
}

/// A location `v ∈ V` with its invariant and flow map.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct Location {
    /// Location name, local to the automaton.
    pub name: String,
    /// Invariant set `inv(v)`: the data state must satisfy this predicate
    /// while the automaton dwells here.
    pub invariant: Pred,
    /// Flow overrides: `var -> dvar/dt` expression. Variables not listed
    /// flow at their kind's default (clocks at 1, continuous at 0).
    pub flows: Vec<(VarId, Expr)>,
    /// `true` iff `v ∈ V^risky` (Section III partition).
    pub risky: bool,
}

impl Location {
    /// The effective derivative expression of variable `var` in this
    /// location, considering the kind default.
    pub fn flow_of(&self, var: VarId, kind: VarKind) -> Expr {
        for (v, e) in &self.flows {
            if *v == var {
                return e.clone();
            }
        }
        match kind {
            VarKind::Clock => Expr::one(),
            VarKind::Continuous => Expr::zero(),
        }
    }
}

/// The receive trigger of an edge (its `?`/`??` synchronization label).
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Trigger {
    /// `?root`: reliable reception (wired or intra-entity).
    Reliable(Root),
    /// `??root`: unreliable wireless reception; deliveries may be lost.
    Lossy(Root),
}

impl Trigger {
    /// The trigger's event root.
    pub fn root(&self) -> &Root {
        match self {
            Trigger::Reliable(r) | Trigger::Lossy(r) => r,
        }
    }

    /// The equivalent synchronization label.
    pub fn label(&self) -> SyncLabel {
        match self {
            Trigger::Reliable(r) => SyncLabel::Recv(r.clone()),
            Trigger::Lossy(r) => SyncLabel::RecvLossy(r.clone()),
        }
    }
}

/// A discrete transition `e ∈ E`.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct Edge {
    /// Source location `src(e)`.
    pub src: LocId,
    /// Destination location `des(e)`.
    pub dst: LocId,
    /// Guard set `g(e)`: the transition may fire only when the data state
    /// satisfies this predicate.
    pub guard: Pred,
    /// Optional receive trigger. `None` means the edge fires spontaneously
    /// (subject to guard/urgency); `Some` means it fires only upon event
    /// reception (and only if the guard holds at that instant).
    pub trigger: Option<Trigger>,
    /// If `true`, the edge must fire as soon as its guard holds (used for
    /// exact-expiry timed transitions). Urgent edges must have no trigger.
    pub urgent: bool,
    /// Reset function `r_e`: assignments `var := expr` applied atomically
    /// when the edge fires; unlisted variables are unchanged (identity).
    pub resets: Vec<(VarId, Expr)>,
    /// Events broadcast (with `!` labels) when the edge fires.
    pub emits: Vec<Root>,
}

impl Edge {
    /// The full multiset of synchronization labels carried by this edge
    /// (receive trigger first, then emissions). An edge with both a trigger
    /// and emissions formally corresponds to two consecutive transitions
    /// through an intermediate zero-dwell location (paper, footnote 2).
    pub fn labels(&self) -> Vec<SyncLabel> {
        let mut out = Vec::new();
        if let Some(t) = &self.trigger {
            out.push(t.label());
        }
        for r in &self.emits {
            out.push(SyncLabel::Send(r.clone()));
        }
        out
    }
}

/// One element of `Φ0`: an initial location plus initial data state.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct InitialState {
    /// The initial location.
    pub loc: LocId,
    /// The initial data state; `None` means "use the declared per-variable
    /// [`VarDecl::init`] values" (the design pattern initializes all data
    /// state variables to zero).
    pub data: Option<Vec<f64>>,
}

/// A hybrid automaton `A = (x(t), V, inv, F, E, g, R, L, syn, Φ0)`.
///
/// Construct via [`AutomatonBuilder`]; the builder enforces referential
/// well-formedness (every id in range, urgent edges trigger-free, at least
/// one initial state, …). Deeper semantic checks live in
/// [`crate::validate`].
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct HybridAutomaton {
    /// Automaton name (the entity it models, e.g. `"ventilator"`).
    pub name: String,
    /// The data state variables vector `x(t)`.
    pub vars: Vec<VarDecl>,
    /// The location set `V`.
    pub locations: Vec<Location>,
    /// The edge set `E`.
    pub edges: Vec<Edge>,
    /// The initial state set `Φ0`.
    pub initial: Vec<InitialState>,
}

impl HybridAutomaton {
    /// Starts building an automaton with the given name.
    pub fn builder(name: impl Into<String>) -> AutomatonBuilder {
        AutomatonBuilder::new(name)
    }

    /// The dimension `n` of the automaton (number of data state variables).
    pub fn dimension(&self) -> usize {
        self.vars.len()
    }

    /// Looks up a location by name.
    pub fn loc_by_name(&self, name: &str) -> Option<LocId> {
        self.locations
            .iter()
            .position(|l| l.name == name)
            .map(LocId)
    }

    /// Looks up a variable by name.
    pub fn var_by_name(&self, name: &str) -> Option<VarId> {
        self.vars.iter().position(|v| v.name == name).map(VarId)
    }

    /// The name of location `loc`.
    pub fn loc_name(&self, loc: LocId) -> &str {
        &self.locations[loc.0].name
    }

    /// Whether location `loc` is risky (`∈ V^risky`).
    pub fn is_risky(&self, loc: LocId) -> bool {
        self.locations[loc.0].risky
    }

    /// Iterator over the ids of all risky locations (`V^risky`).
    pub fn risky_locations(&self) -> impl Iterator<Item = LocId> + '_ {
        self.locations
            .iter()
            .enumerate()
            .filter(|(_, l)| l.risky)
            .map(|(i, _)| LocId(i))
    }

    /// Outgoing edges of a location.
    pub fn edges_from(&self, loc: LocId) -> impl Iterator<Item = (EdgeId, &Edge)> + '_ {
        self.edges
            .iter()
            .enumerate()
            .filter(move |(_, e)| e.src == loc)
            .map(|(i, e)| (EdgeId(i), e))
    }

    /// Incoming edges of a location.
    pub fn edges_to(&self, loc: LocId) -> impl Iterator<Item = (EdgeId, &Edge)> + '_ {
        self.edges
            .iter()
            .enumerate()
            .filter(move |(_, e)| e.dst == loc)
            .map(|(i, e)| (EdgeId(i), e))
    }

    /// The projection `Φ0|V` of the initial state set on the location set.
    pub fn initial_locations(&self) -> Vec<LocId> {
        let mut locs: Vec<LocId> = self.initial.iter().map(|i| i.loc).collect();
        locs.sort();
        locs.dedup();
        locs
    }

    /// The initial data state of `init`, materializing declared defaults.
    pub fn initial_data(&self, init: &InitialState) -> Vec<f64> {
        match &init.data {
            Some(d) => d.clone(),
            None => self.vars.iter().map(|v| v.init).collect(),
        }
    }

    /// Every event root this automaton can receive, with its reliability.
    pub fn receive_roots(&self) -> Vec<(Root, bool)> {
        let mut seen: HashMap<Root, bool> = HashMap::new();
        for e in &self.edges {
            if let Some(t) = &e.trigger {
                let lossy = matches!(t, Trigger::Lossy(_));
                // If a root is received both reliably and lossily somewhere,
                // record it as lossy (the weaker delivery assumption).
                let entry = seen.entry(t.root().clone()).or_insert(lossy);
                *entry = *entry || lossy;
            }
        }
        let mut v: Vec<(Root, bool)> = seen.into_iter().collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }

    /// Every event root this automaton can emit.
    pub fn emit_roots(&self) -> Vec<Root> {
        let mut out: Vec<Root> = self
            .edges
            .iter()
            .flat_map(|e| e.emits.iter().cloned())
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// The set `L` of synchronization labels appearing in the automaton.
    pub fn labels(&self) -> Vec<SyncLabel> {
        let mut out: Vec<SyncLabel> = self.edges.iter().flat_map(|e| e.labels()).collect();
        out.sort_by_key(|l| format!("{l}"));
        out.dedup();
        out
    }
}

/// Errors detected while building an automaton.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum BuildError {
    /// A location name was declared twice.
    DuplicateLocation(String),
    /// A variable name was declared twice.
    DuplicateVariable(String),
    /// An edge referenced an unknown location name.
    UnknownLocation(String),
    /// An expression/predicate referenced an unknown variable name.
    UnknownVariable(String),
    /// An urgent edge carried a receive trigger.
    UrgentWithTrigger {
        /// Source location of the offending edge.
        src: String,
        /// Destination location of the offending edge.
        dst: String,
    },
    /// No initial state was declared.
    NoInitialState,
    /// The automaton has no locations.
    NoLocations,
    /// An initial data vector had the wrong dimension.
    InitialDimensionMismatch {
        /// Declared dimension of the automaton.
        expected: usize,
        /// Dimension of the offending initial data vector.
        got: usize,
    },
    /// An edge id was out of range (internal misuse).
    IdOutOfRange(String),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::DuplicateLocation(n) => write!(f, "duplicate location `{n}`"),
            BuildError::DuplicateVariable(n) => write!(f, "duplicate variable `{n}`"),
            BuildError::UnknownLocation(n) => write!(f, "unknown location `{n}`"),
            BuildError::UnknownVariable(n) => write!(f, "unknown variable `{n}`"),
            BuildError::UrgentWithTrigger { src, dst } => {
                write!(f, "urgent edge {src} -> {dst} must not carry a trigger")
            }
            BuildError::NoInitialState => write!(f, "automaton declares no initial state"),
            BuildError::NoLocations => write!(f, "automaton declares no locations"),
            BuildError::InitialDimensionMismatch { expected, got } => write!(
                f,
                "initial data state has dimension {got}, automaton has {expected}"
            ),
            BuildError::IdOutOfRange(what) => write!(f, "id out of range: {what}"),
        }
    }
}

impl std::error::Error for BuildError {}

/// Fluent builder for [`HybridAutomaton`].
///
/// ```
/// use pte_hybrid::{HybridAutomaton, Pred, Expr, VarKind};
///
/// // The stand-alone ventilator of Fig. 2.
/// let mut b = HybridAutomaton::builder("ventilator");
/// let h = b.var("Hvent", VarKind::Continuous, 0.15);
/// let out = b.location("PumpOut");
/// let inn = b.location("PumpIn");
/// b.invariant(out, Pred::gt(Expr::var(h), 0.0).and(Pred::le(Expr::var(h), 0.3)));
/// b.invariant(inn, Pred::ge(Expr::var(h), 0.0).and(Pred::lt(Expr::var(h), 0.3)));
/// b.flow(out, h, Expr::c(-0.1));
/// b.flow(inn, h, Expr::c(0.1));
/// b.edge(out, inn).guard(Pred::le(Expr::var(h), 0.0)).urgent()
///     .emit("evtVPumpIn").done();
/// b.edge(inn, out).guard(Pred::ge(Expr::var(h), 0.3)).urgent()
///     .emit("evtVPumpOut").done();
/// b.initial(out, None);
/// let vent = b.build().unwrap();
/// assert_eq!(vent.dimension(), 1);
/// ```
#[derive(Debug)]
pub struct AutomatonBuilder {
    name: String,
    vars: Vec<VarDecl>,
    locations: Vec<Location>,
    edges: Vec<Edge>,
    initial: Vec<InitialState>,
    errors: Vec<BuildError>,
}

impl AutomatonBuilder {
    /// Starts a new builder.
    pub fn new(name: impl Into<String>) -> AutomatonBuilder {
        AutomatonBuilder {
            name: name.into(),
            vars: Vec::new(),
            locations: Vec::new(),
            edges: Vec::new(),
            initial: Vec::new(),
            errors: Vec::new(),
        }
    }

    /// Declares a data state variable and returns its id.
    pub fn var(&mut self, name: impl Into<String>, kind: VarKind, init: f64) -> VarId {
        let name = name.into();
        if self.vars.iter().any(|v| v.name == name) {
            self.errors
                .push(BuildError::DuplicateVariable(name.clone()));
        }
        self.vars.push(VarDecl { name, kind, init });
        VarId(self.vars.len() - 1)
    }

    /// Declares a clock variable (initial value 0, slope 1).
    pub fn clock(&mut self, name: impl Into<String>) -> VarId {
        self.var(name, VarKind::Clock, 0.0)
    }

    /// Declares a (safe) location and returns its id.
    pub fn location(&mut self, name: impl Into<String>) -> LocId {
        self.push_location(name, false)
    }

    /// Declares a risky location (`∈ V^risky`) and returns its id.
    pub fn risky_location(&mut self, name: impl Into<String>) -> LocId {
        self.push_location(name, true)
    }

    fn push_location(&mut self, name: impl Into<String>, risky: bool) -> LocId {
        let name = name.into();
        if self.locations.iter().any(|l| l.name == name) {
            self.errors
                .push(BuildError::DuplicateLocation(name.clone()));
        }
        self.locations.push(Location {
            name,
            invariant: Pred::True,
            flows: Vec::new(),
            risky,
        });
        LocId(self.locations.len() - 1)
    }

    /// Sets the invariant of a location (replacing any previous one).
    pub fn invariant(&mut self, loc: LocId, inv: Pred) -> &mut Self {
        if loc.0 >= self.locations.len() {
            self.errors
                .push(BuildError::IdOutOfRange(format!("location {loc:?}")));
            return self;
        }
        self.locations[loc.0].invariant = inv;
        self
    }

    /// Conjoins `inv` onto the location's existing invariant.
    pub fn also_invariant(&mut self, loc: LocId, inv: Pred) -> &mut Self {
        if loc.0 >= self.locations.len() {
            self.errors
                .push(BuildError::IdOutOfRange(format!("location {loc:?}")));
            return self;
        }
        let old = std::mem::take(&mut self.locations[loc.0].invariant);
        self.locations[loc.0].invariant = old.and(inv);
        self
    }

    /// Sets the flow `d var / dt = expr` in a location.
    pub fn flow(&mut self, loc: LocId, var: VarId, expr: Expr) -> &mut Self {
        if loc.0 >= self.locations.len() {
            self.errors
                .push(BuildError::IdOutOfRange(format!("location {loc:?}")));
            return self;
        }
        if var.0 >= self.vars.len() {
            self.errors
                .push(BuildError::IdOutOfRange(format!("variable {var:?}")));
            return self;
        }
        let flows = &mut self.locations[loc.0].flows;
        if let Some(slot) = flows.iter_mut().find(|(v, _)| *v == var) {
            slot.1 = expr;
        } else {
            flows.push((var, expr));
        }
        self
    }

    /// Begins building an edge from `src` to `dst`.
    pub fn edge(&mut self, src: LocId, dst: LocId) -> EdgeBuilder<'_> {
        EdgeBuilder {
            parent: self,
            edge: Edge {
                src,
                dst,
                guard: Pred::True,
                trigger: None,
                urgent: false,
                resets: Vec::new(),
                emits: Vec::new(),
            },
        }
    }

    /// Declares an initial state. `data = None` uses declared variable
    /// initial values.
    pub fn initial(&mut self, loc: LocId, data: Option<Vec<f64>>) -> &mut Self {
        if loc.0 >= self.locations.len() {
            self.errors
                .push(BuildError::IdOutOfRange(format!("location {loc:?}")));
            return self;
        }
        self.initial.push(InitialState { loc, data });
        self
    }

    /// Finishes the build, returning the automaton or the first error.
    pub fn build(self) -> Result<HybridAutomaton, BuildError> {
        if let Some(err) = self.errors.into_iter().next() {
            return Err(err);
        }
        if self.locations.is_empty() {
            return Err(BuildError::NoLocations);
        }
        if self.initial.is_empty() {
            return Err(BuildError::NoInitialState);
        }
        for e in &self.edges {
            if e.src.0 >= self.locations.len() || e.dst.0 >= self.locations.len() {
                return Err(BuildError::IdOutOfRange(format!(
                    "edge {:?} -> {:?}",
                    e.src, e.dst
                )));
            }
            if e.urgent && e.trigger.is_some() {
                return Err(BuildError::UrgentWithTrigger {
                    src: self.locations[e.src.0].name.clone(),
                    dst: self.locations[e.dst.0].name.clone(),
                });
            }
        }
        for init in &self.initial {
            if let Some(data) = &init.data {
                if data.len() != self.vars.len() {
                    return Err(BuildError::InitialDimensionMismatch {
                        expected: self.vars.len(),
                        got: data.len(),
                    });
                }
            }
        }
        Ok(HybridAutomaton {
            name: self.name,
            vars: self.vars,
            locations: self.locations,
            edges: self.edges,
            initial: self.initial,
        })
    }
}

/// Builder for a single edge; call [`EdgeBuilder::done`] to commit.
#[derive(Debug)]
pub struct EdgeBuilder<'a> {
    parent: &'a mut AutomatonBuilder,
    edge: Edge,
}

impl<'a> EdgeBuilder<'a> {
    /// Sets the guard predicate.
    pub fn guard(mut self, guard: Pred) -> Self {
        self.edge.guard = guard;
        self
    }

    /// Attaches a reliable receive trigger (`?root`).
    pub fn on(mut self, root: impl Into<Root>) -> Self {
        self.edge.trigger = Some(Trigger::Reliable(root.into()));
        self
    }

    /// Attaches a lossy (wireless) receive trigger (`??root`).
    pub fn on_lossy(mut self, root: impl Into<Root>) -> Self {
        self.edge.trigger = Some(Trigger::Lossy(root.into()));
        self
    }

    /// Marks the edge urgent (fires at the instant its guard holds).
    pub fn urgent(mut self) -> Self {
        self.edge.urgent = true;
        self
    }

    /// Adds a reset `var := expr`.
    pub fn reset(mut self, var: VarId, expr: impl Into<Expr>) -> Self {
        self.edge.resets.push((var, expr.into()));
        self
    }

    /// Adds a reset `var := 0` (the common clock reset).
    pub fn reset_clock(self, var: VarId) -> Self {
        self.reset(var, Expr::zero())
    }

    /// Adds an emitted event (`!root`).
    pub fn emit(mut self, root: impl Into<Root>) -> Self {
        self.edge.emits.push(root.into());
        self
    }

    /// Commits the edge to the automaton and returns its id.
    pub fn done(self) -> EdgeId {
        self.parent.edges.push(self.edge);
        EdgeId(self.parent.edges.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;

    fn two_loc() -> AutomatonBuilder {
        let mut b = HybridAutomaton::builder("t");
        let a = b.location("A");
        let r = b.risky_location("R");
        let c = b.clock("c");
        b.edge(a, r)
            .guard(Pred::ge(Expr::var(c), Expr::c(1.0)))
            .urgent()
            .reset_clock(c)
            .done();
        b.edge(r, a).on_lossy("evtBack").reset_clock(c).done();
        b.initial(a, None);
        b
    }

    #[test]
    fn builds_and_queries() {
        let a = two_loc().build().unwrap();
        assert_eq!(a.dimension(), 1);
        assert_eq!(a.loc_by_name("A"), Some(LocId(0)));
        assert_eq!(a.loc_by_name("R"), Some(LocId(1)));
        assert_eq!(a.loc_by_name("missing"), None);
        assert_eq!(a.var_by_name("c"), Some(VarId(0)));
        assert!(a.is_risky(LocId(1)));
        assert!(!a.is_risky(LocId(0)));
        assert_eq!(a.risky_locations().collect::<Vec<_>>(), vec![LocId(1)]);
        assert_eq!(a.edges_from(LocId(0)).count(), 1);
        assert_eq!(a.edges_to(LocId(0)).count(), 1);
        assert_eq!(a.initial_locations(), vec![LocId(0)]);
    }

    #[test]
    fn receive_and_emit_roots() {
        let b = two_loc();
        let a = b.build().unwrap();
        let recv = a.receive_roots();
        assert_eq!(recv.len(), 1);
        assert_eq!(recv[0].0.as_str(), "evtBack");
        assert!(recv[0].1, "evtBack is lossy");
        assert!(a.emit_roots().is_empty());
    }

    #[test]
    fn duplicate_location_rejected() {
        let mut b = HybridAutomaton::builder("d");
        b.location("X");
        b.location("X");
        b.initial(LocId(0), None);
        assert!(matches!(
            b.build(),
            Err(BuildError::DuplicateLocation(n)) if n == "X"
        ));
    }

    #[test]
    fn duplicate_variable_rejected() {
        let mut b = HybridAutomaton::builder("d");
        b.location("X");
        b.clock("c");
        b.clock("c");
        b.initial(LocId(0), None);
        assert!(matches!(b.build(), Err(BuildError::DuplicateVariable(_))));
    }

    #[test]
    fn urgent_trigger_conflict_rejected() {
        let mut b = HybridAutomaton::builder("u");
        let a = b.location("A");
        let c = b.location("B");
        // Build an urgent edge and then force a trigger through the raw
        // struct path: the builder API cannot express this, so emulate the
        // invalid state via two builder calls.
        b.edge(a, c).urgent().done();
        b.edges.last_mut().unwrap().trigger = Some(Trigger::Reliable(Root::new("x")));
        b.initial(a, None);
        assert!(matches!(
            b.build(),
            Err(BuildError::UrgentWithTrigger { .. })
        ));
    }

    #[test]
    fn missing_initial_rejected() {
        let mut b = HybridAutomaton::builder("n");
        b.location("A");
        assert_eq!(b.build().unwrap_err(), BuildError::NoInitialState);
    }

    #[test]
    fn empty_automaton_rejected() {
        let b = HybridAutomaton::builder("e");
        assert_eq!(b.build().unwrap_err(), BuildError::NoLocations);
    }

    #[test]
    fn initial_dimension_checked() {
        let mut b = HybridAutomaton::builder("dim");
        let a = b.location("A");
        b.clock("c");
        b.initial(a, Some(vec![0.0, 1.0]));
        assert!(matches!(
            b.build(),
            Err(BuildError::InitialDimensionMismatch {
                expected: 1,
                got: 2
            })
        ));
    }

    #[test]
    fn flow_defaults_by_kind() {
        let mut b = HybridAutomaton::builder("f");
        let l = b.location("A");
        let clk = b.clock("c");
        let x = b.var("x", VarKind::Continuous, 0.0);
        b.flow(l, x, Expr::c(2.5));
        b.initial(l, None);
        let a = b.build().unwrap();
        assert_eq!(a.locations[0].flow_of(clk, VarKind::Clock), Expr::one());
        assert_eq!(a.locations[0].flow_of(x, VarKind::Continuous), Expr::c(2.5));
    }

    #[test]
    fn flow_override_replaces() {
        let mut b = HybridAutomaton::builder("f2");
        let l = b.location("A");
        let x = b.var("x", VarKind::Continuous, 0.0);
        b.flow(l, x, Expr::c(1.0));
        b.flow(l, x, Expr::c(-1.0));
        b.initial(l, None);
        let a = b.build().unwrap();
        assert_eq!(a.locations[0].flows.len(), 1);
        assert_eq!(
            a.locations[0].flow_of(x, VarKind::Continuous),
            Expr::c(-1.0)
        );
    }

    #[test]
    fn edge_labels_flatten_footnote_2() {
        let mut b = HybridAutomaton::builder("l");
        let a = b.location("A");
        let c = b.location("B");
        b.edge(a, c).on_lossy("req").emit("grant").done();
        b.initial(a, None);
        let auto = b.build().unwrap();
        let labels = auto.edges[0].labels();
        assert_eq!(labels.len(), 2);
        assert_eq!(format!("{}", labels[0]), "??req");
        assert_eq!(format!("{}", labels[1]), "!grant");
    }

    #[test]
    fn initial_data_materializes_defaults() {
        let mut b = HybridAutomaton::builder("i");
        let l = b.location("A");
        b.var("x", VarKind::Continuous, 0.25);
        b.initial(l, None);
        let a = b.build().unwrap();
        assert_eq!(a.initial_data(&a.initial[0]), vec![0.25]);
    }

    #[test]
    fn doc_example_ventilator() {
        // Mirrors the doc-test to keep it covered under `cargo test --lib`.
        let mut b = HybridAutomaton::builder("ventilator");
        let h = b.var("Hvent", VarKind::Continuous, 0.15);
        let out = b.location("PumpOut");
        let inn = b.location("PumpIn");
        b.invariant(
            out,
            Pred::gt(Expr::var(h), Expr::c(0.0)).and(Pred::le(Expr::var(h), Expr::c(0.3))),
        );
        b.flow(out, h, Expr::c(-0.1));
        b.flow(inn, h, Expr::c(0.1));
        b.edge(out, inn)
            .guard(Pred::le(Expr::var(h), Expr::c(0.0)))
            .urgent()
            .emit("evtVPumpIn")
            .done();
        b.edge(inn, out)
            .guard(Pred::ge(Expr::var(h), Expr::c(0.3)))
            .urgent()
            .emit("evtVPumpOut")
            .done();
        b.initial(out, None);
        let vent = b.build().unwrap();
        assert_eq!(vent.dimension(), 1);
        assert_eq!(vent.emit_roots().len(), 2);
    }
}
