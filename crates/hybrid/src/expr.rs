//! Arithmetic expressions over data state variables.
//!
//! Flows (`F`), resets (`R`), and the arithmetic halves of guards/invariants
//! are all expressions over the automaton's data state variables vector
//! `x(t)`. Keeping them as a small AST (rather than opaque closures) makes
//! automata serializable, structurally comparable (needed by the *simple
//! hybrid automaton* check of Definition 3), printable in DOT exports, and
//! amenable to the syntactic analyses used by validation.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// Index of a data state variable within an automaton's variable vector.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct VarId(pub usize);

impl fmt::Debug for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// An arithmetic expression over the data state variables vector.
///
/// Expressions evaluate against an [`EvalCtx`] holding the current
/// valuation of `x(t)`.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// A constant.
    Const(f64),
    /// The current value of a data state variable.
    Var(VarId),
    /// Negation `-e`.
    Neg(Box<Expr>),
    /// Sum `a + b`.
    Add(Box<Expr>, Box<Expr>),
    /// Difference `a - b`.
    Sub(Box<Expr>, Box<Expr>),
    /// Product `a * b`.
    Mul(Box<Expr>, Box<Expr>),
    /// Quotient `a / b`.
    Div(Box<Expr>, Box<Expr>),
    /// Pointwise minimum `min(a, b)`.
    Min(Box<Expr>, Box<Expr>),
    /// Pointwise maximum `max(a, b)`.
    Max(Box<Expr>, Box<Expr>),
    /// Absolute value `|e|`.
    Abs(Box<Expr>),
}

/// Evaluation context: the current valuation of the data state variables.
#[derive(Clone, Copy, Debug)]
pub struct EvalCtx<'a> {
    /// Current values of the data state variables, indexed by [`VarId`].
    pub vars: &'a [f64],
}

impl<'a> EvalCtx<'a> {
    /// Creates a context over a variable valuation.
    pub fn new(vars: &'a [f64]) -> Self {
        EvalCtx { vars }
    }
}

impl Expr {
    /// Shorthand for [`Expr::Const`].
    pub fn c(value: f64) -> Expr {
        Expr::Const(value)
    }

    /// Shorthand for [`Expr::Var`].
    pub fn var(id: VarId) -> Expr {
        Expr::Var(id)
    }

    /// The constant zero expression.
    pub fn zero() -> Expr {
        Expr::Const(0.0)
    }

    /// The constant one expression.
    pub fn one() -> Expr {
        Expr::Const(1.0)
    }

    /// Pointwise minimum of two expressions.
    pub fn min(self, other: Expr) -> Expr {
        Expr::Min(Box::new(self), Box::new(other))
    }

    /// Pointwise maximum of two expressions.
    pub fn max(self, other: Expr) -> Expr {
        Expr::Max(Box::new(self), Box::new(other))
    }

    /// Absolute value of an expression.
    pub fn abs(self) -> Expr {
        Expr::Abs(Box::new(self))
    }

    /// Evaluates the expression against a variable valuation.
    ///
    /// Out-of-range variable references evaluate to 0.0; validation
    /// ([`crate::validate`]) rejects such automata before execution, so this
    /// is only reachable for hand-constructed, unvalidated expressions.
    pub fn eval(&self, ctx: &EvalCtx<'_>) -> f64 {
        match self {
            Expr::Const(c) => *c,
            Expr::Var(v) => ctx.vars.get(v.0).copied().unwrap_or(0.0),
            Expr::Neg(e) => -e.eval(ctx),
            Expr::Add(a, b) => a.eval(ctx) + b.eval(ctx),
            Expr::Sub(a, b) => a.eval(ctx) - b.eval(ctx),
            Expr::Mul(a, b) => a.eval(ctx) * b.eval(ctx),
            Expr::Div(a, b) => a.eval(ctx) / b.eval(ctx),
            Expr::Min(a, b) => a.eval(ctx).min(b.eval(ctx)),
            Expr::Max(a, b) => a.eval(ctx).max(b.eval(ctx)),
            Expr::Abs(e) => e.eval(ctx).abs(),
        }
    }

    /// `true` if the expression references no variables (is a constant fold).
    pub fn is_constant(&self) -> bool {
        match self {
            Expr::Const(_) => true,
            Expr::Var(_) => false,
            Expr::Neg(e) | Expr::Abs(e) => e.is_constant(),
            Expr::Add(a, b)
            | Expr::Sub(a, b)
            | Expr::Mul(a, b)
            | Expr::Div(a, b)
            | Expr::Min(a, b)
            | Expr::Max(a, b) => a.is_constant() && b.is_constant(),
        }
    }

    /// Collects every variable referenced by the expression into `out`.
    pub fn collect_vars(&self, out: &mut Vec<VarId>) {
        match self {
            Expr::Const(_) => {}
            Expr::Var(v) => {
                if !out.contains(v) {
                    out.push(*v);
                }
            }
            Expr::Neg(e) | Expr::Abs(e) => e.collect_vars(out),
            Expr::Add(a, b)
            | Expr::Sub(a, b)
            | Expr::Mul(a, b)
            | Expr::Div(a, b)
            | Expr::Min(a, b)
            | Expr::Max(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
        }
    }

    /// The set of variables referenced by the expression.
    pub fn vars(&self) -> Vec<VarId> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out
    }

    /// Returns a copy of the expression with every variable index shifted by
    /// `offset`. Used by elaboration, which concatenates the variable
    /// vectors of the host and child automata.
    pub fn shift_vars(&self, offset: usize) -> Expr {
        match self {
            Expr::Const(c) => Expr::Const(*c),
            Expr::Var(v) => Expr::Var(VarId(v.0 + offset)),
            Expr::Neg(e) => Expr::Neg(Box::new(e.shift_vars(offset))),
            Expr::Abs(e) => Expr::Abs(Box::new(e.shift_vars(offset))),
            Expr::Add(a, b) => Expr::Add(
                Box::new(a.shift_vars(offset)),
                Box::new(b.shift_vars(offset)),
            ),
            Expr::Sub(a, b) => Expr::Sub(
                Box::new(a.shift_vars(offset)),
                Box::new(b.shift_vars(offset)),
            ),
            Expr::Mul(a, b) => Expr::Mul(
                Box::new(a.shift_vars(offset)),
                Box::new(b.shift_vars(offset)),
            ),
            Expr::Div(a, b) => Expr::Div(
                Box::new(a.shift_vars(offset)),
                Box::new(b.shift_vars(offset)),
            ),
            Expr::Min(a, b) => Expr::Min(
                Box::new(a.shift_vars(offset)),
                Box::new(b.shift_vars(offset)),
            ),
            Expr::Max(a, b) => Expr::Max(
                Box::new(a.shift_vars(offset)),
                Box::new(b.shift_vars(offset)),
            ),
        }
    }

    /// Best-effort constant folding; returns `Some(c)` if the expression is
    /// closed and evaluates to `c`.
    pub fn const_value(&self) -> Option<f64> {
        if self.is_constant() {
            Some(self.eval(&EvalCtx::new(&[])))
        } else {
            None
        }
    }
}

impl From<f64> for Expr {
    fn from(value: f64) -> Expr {
        Expr::Const(value)
    }
}

impl From<VarId> for Expr {
    fn from(value: VarId) -> Expr {
        Expr::Var(value)
    }
}

impl Add for Expr {
    type Output = Expr;
    fn add(self, rhs: Expr) -> Expr {
        Expr::Add(Box::new(self), Box::new(rhs))
    }
}
impl Sub for Expr {
    type Output = Expr;
    fn sub(self, rhs: Expr) -> Expr {
        Expr::Sub(Box::new(self), Box::new(rhs))
    }
}
impl Mul for Expr {
    type Output = Expr;
    fn mul(self, rhs: Expr) -> Expr {
        Expr::Mul(Box::new(self), Box::new(rhs))
    }
}
impl Div for Expr {
    type Output = Expr;
    fn div(self, rhs: Expr) -> Expr {
        Expr::Div(Box::new(self), Box::new(rhs))
    }
}
impl Neg for Expr {
    type Output = Expr;
    fn neg(self) -> Expr {
        Expr::Neg(Box::new(self))
    }
}

impl fmt::Debug for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Const(c) => write!(f, "{c}"),
            Expr::Var(v) => write!(f, "x{}", v.0),
            Expr::Neg(e) => write!(f, "-({e})"),
            Expr::Add(a, b) => write!(f, "({a} + {b})"),
            Expr::Sub(a, b) => write!(f, "({a} - {b})"),
            Expr::Mul(a, b) => write!(f, "({a} * {b})"),
            Expr::Div(a, b) => write!(f, "({a} / {b})"),
            Expr::Min(a, b) => write!(f, "min({a}, {b})"),
            Expr::Max(a, b) => write!(f, "max({a}, {b})"),
            Expr::Abs(e) => write!(f, "|{e}|"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx3() -> Vec<f64> {
        vec![1.0, 2.0, -3.0]
    }

    #[test]
    fn eval_basic_arithmetic() {
        let vars = ctx3();
        let ctx = EvalCtx::new(&vars);
        let e = Expr::var(VarId(0)) + Expr::var(VarId(1)) * Expr::c(4.0);
        assert_eq!(e.eval(&ctx), 9.0);
        let d = (Expr::var(VarId(1)) - Expr::c(0.5)) / Expr::c(3.0);
        assert_eq!(d.eval(&ctx), 0.5);
    }

    #[test]
    fn eval_min_max_abs_neg() {
        let vars = ctx3();
        let ctx = EvalCtx::new(&vars);
        assert_eq!(Expr::var(VarId(2)).abs().eval(&ctx), 3.0);
        assert_eq!(Expr::var(VarId(0)).min(Expr::var(VarId(1))).eval(&ctx), 1.0);
        assert_eq!(Expr::var(VarId(0)).max(Expr::var(VarId(1))).eval(&ctx), 2.0);
        assert_eq!((-Expr::var(VarId(1))).eval(&ctx), -2.0);
    }

    #[test]
    fn out_of_range_var_is_zero() {
        let vars = vec![1.0];
        let ctx = EvalCtx::new(&vars);
        assert_eq!(Expr::var(VarId(7)).eval(&ctx), 0.0);
    }

    #[test]
    fn constant_detection() {
        assert!(Expr::c(1.0).is_constant());
        assert!((Expr::c(1.0) + Expr::c(2.0)).is_constant());
        assert!(!(Expr::c(1.0) + Expr::var(VarId(0))).is_constant());
        assert_eq!((Expr::c(2.0) * Expr::c(3.0)).const_value(), Some(6.0));
        assert_eq!(Expr::var(VarId(0)).const_value(), None);
    }

    #[test]
    fn collect_vars_dedups() {
        let e = Expr::var(VarId(1)) + Expr::var(VarId(1)) * Expr::var(VarId(0));
        let vars = e.vars();
        assert_eq!(vars.len(), 2);
        assert!(vars.contains(&VarId(0)));
        assert!(vars.contains(&VarId(1)));
    }

    #[test]
    fn shift_vars_offsets_every_reference() {
        let e = Expr::var(VarId(0)).min(Expr::var(VarId(2)) + Expr::c(1.0));
        let shifted = e.shift_vars(10);
        let vars = shifted.vars();
        assert!(vars.contains(&VarId(10)));
        assert!(vars.contains(&VarId(12)));
        assert!(!vars.contains(&VarId(0)));
    }

    #[test]
    fn display_is_readable() {
        let e = Expr::var(VarId(0)) + Expr::c(1.0);
        assert_eq!(format!("{e}"), "(x0 + 1)");
    }

    #[test]
    fn structural_equality() {
        let a = Expr::var(VarId(0)) + Expr::c(1.0);
        let b = Expr::var(VarId(0)) + Expr::c(1.0);
        let c = Expr::var(VarId(0)) + Expr::c(2.0);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
