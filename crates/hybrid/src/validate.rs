//! Semantic well-formedness checks beyond what the builder enforces.
//!
//! The builder ([`crate::automaton::AutomatonBuilder`]) guarantees
//! referential integrity; this module checks the *model-level* conditions
//! assumed by the paper's definitions:
//!
//! * every initial state satisfies its location's invariant
//!   (`Φ0 ⊆ {(v, s) | s ∈ inv(v)}`, Section II-A item 9);
//! * guards and resets reference declared variables only;
//! * every location is reachable in the location graph from some initial
//!   location (unreachable locations usually indicate a wiring bug in a
//!   generated pattern automaton);
//! * urgent edges have a satisfiable-looking guard (not literally `False`);
//! * emitted/received event roots are consistent (a root both emitted and
//!   received by the *same* automaton is flagged — the paper's systems
//!   communicate events across automata).

use crate::automaton::{HybridAutomaton, LocId};
use crate::expr::EvalCtx;
use std::collections::{HashSet, VecDeque};
use std::fmt;

/// A single validation finding.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Finding {
    /// An initial state violates its location invariant.
    InitialViolatesInvariant {
        /// Offending location name.
        location: String,
    },
    /// A guard/reset/flow/invariant references an undeclared variable.
    UndeclaredVariable {
        /// Where the reference occurs (human-readable).
        site: String,
        /// The out-of-range index.
        index: usize,
    },
    /// A location is unreachable from every initial location.
    UnreachableLocation {
        /// Offending location name.
        location: String,
    },
    /// An urgent edge has guard `False` (it can never fire, so the location
    /// invariant may time-block).
    UrgentGuardFalse {
        /// Source location name.
        src: String,
        /// Destination location name.
        dst: String,
    },
    /// The automaton both emits and receives the same root.
    SelfCommunication {
        /// The event root.
        root: String,
    },
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Finding::InitialViolatesInvariant { location } => {
                write!(f, "initial state violates invariant of `{location}`")
            }
            Finding::UndeclaredVariable { site, index } => {
                write!(f, "undeclared variable x{index} referenced at {site}")
            }
            Finding::UnreachableLocation { location } => {
                write!(f, "location `{location}` is unreachable")
            }
            Finding::UrgentGuardFalse { src, dst } => {
                write!(f, "urgent edge `{src}` -> `{dst}` has guard false")
            }
            Finding::SelfCommunication { root } => {
                write!(f, "root `{root}` is both emitted and received locally")
            }
        }
    }
}

/// Result of validating an automaton: a list of findings (empty = clean).
#[derive(Clone, Debug, Default)]
pub struct ValidationReport {
    /// All findings, in detection order.
    pub findings: Vec<Finding>,
}

impl ValidationReport {
    /// `true` if no findings were raised.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

impl fmt::Display for ValidationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            return write!(f, "ok");
        }
        for finding in &self.findings {
            writeln!(f, "- {finding}")?;
        }
        Ok(())
    }
}

/// Validates an automaton, returning every finding.
pub fn validate(a: &HybridAutomaton) -> ValidationReport {
    let mut findings = Vec::new();
    let dim = a.dimension();

    // 1. Initial states satisfy invariants.
    for init in &a.initial {
        let data = a.initial_data(init);
        if data.len() == dim {
            let inv = &a.locations[init.loc.0].invariant;
            if !inv.eval(&EvalCtx::new(&data)) {
                findings.push(Finding::InitialViolatesInvariant {
                    location: a.loc_name(init.loc).to_string(),
                });
            }
        }
    }

    // 2. Variable references in range.
    let check_vars = |vars: Vec<crate::expr::VarId>, site: String, findings: &mut Vec<Finding>| {
        for v in vars {
            if v.0 >= dim {
                findings.push(Finding::UndeclaredVariable {
                    site: site.clone(),
                    index: v.0,
                });
            }
        }
    };
    for (i, loc) in a.locations.iter().enumerate() {
        check_vars(
            loc.invariant.vars(),
            format!("invariant of `{}`", loc.name),
            &mut findings,
        );
        for (v, e) in &loc.flows {
            if v.0 >= dim {
                findings.push(Finding::UndeclaredVariable {
                    site: format!("flow target in `{}`", loc.name),
                    index: v.0,
                });
            }
            check_vars(
                e.vars(),
                format!("flow expr in `{}`", loc.name),
                &mut findings,
            );
        }
        let _ = i;
    }
    for (i, e) in a.edges.iter().enumerate() {
        check_vars(e.guard.vars(), format!("guard of edge e{i}"), &mut findings);
        for (v, expr) in &e.resets {
            if v.0 >= dim {
                findings.push(Finding::UndeclaredVariable {
                    site: format!("reset target of edge e{i}"),
                    index: v.0,
                });
            }
            check_vars(
                expr.vars(),
                format!("reset expr of edge e{i}"),
                &mut findings,
            );
        }
    }

    // 3. Reachability over the location graph.
    let mut reachable: HashSet<usize> = HashSet::new();
    let mut queue: VecDeque<usize> = a.initial_locations().iter().map(|l| l.0).collect();
    for l in &queue {
        reachable.insert(*l);
    }
    while let Some(v) = queue.pop_front() {
        for (_, e) in a.edges_from(LocId(v)) {
            if reachable.insert(e.dst.0) {
                queue.push_back(e.dst.0);
            }
        }
    }
    for (i, loc) in a.locations.iter().enumerate() {
        if !reachable.contains(&i) {
            findings.push(Finding::UnreachableLocation {
                location: loc.name.clone(),
            });
        }
    }

    // 4. Urgent guards not literally false.
    for e in &a.edges {
        if e.urgent && e.guard == crate::pred::Pred::False {
            findings.push(Finding::UrgentGuardFalse {
                src: a.loc_name(e.src).to_string(),
                dst: a.loc_name(e.dst).to_string(),
            });
        }
    }

    // 5. Self-communication.
    let emitted: HashSet<String> = a
        .emit_roots()
        .into_iter()
        .map(|r| r.as_str().to_string())
        .collect();
    for (root, _) in a.receive_roots() {
        if emitted.contains(root.as_str()) {
            findings.push(Finding::SelfCommunication {
                root: root.as_str().to_string(),
            });
        }
    }

    ValidationReport { findings }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::HybridAutomaton;
    use crate::expr::Expr;
    use crate::pred::Pred;

    #[test]
    fn clean_automaton_validates() {
        let mut b = HybridAutomaton::builder("ok");
        let a = b.location("A");
        let r = b.risky_location("R");
        let c = b.clock("c");
        b.invariant(r, Pred::le(Expr::var(c), Expr::c(2.0)));
        b.edge(a, r)
            .guard(Pred::ge(Expr::var(c), Expr::c(1.0)))
            .reset_clock(c)
            .done();
        b.edge(r, a)
            .guard(Pred::ge(Expr::var(c), Expr::c(2.0)))
            .urgent()
            .reset_clock(c)
            .done();
        b.initial(a, None);
        let auto = b.build().unwrap();
        let report = validate(&auto);
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn initial_invariant_violation_detected() {
        let mut b = HybridAutomaton::builder("bad-init");
        let a = b.location("A");
        let x = b.var("x", crate::automaton::VarKind::Continuous, -1.0);
        b.invariant(a, Pred::ge(Expr::var(x), Expr::c(0.0)));
        b.initial(a, None);
        let auto = b.build().unwrap();
        let report = validate(&auto);
        assert!(matches!(
            report.findings[0],
            Finding::InitialViolatesInvariant { .. }
        ));
    }

    #[test]
    fn unreachable_location_detected() {
        let mut b = HybridAutomaton::builder("island");
        let a = b.location("A");
        let _island = b.location("Island");
        b.initial(a, None);
        let auto = b.build().unwrap();
        let report = validate(&auto);
        assert!(report.findings.iter().any(
            |f| matches!(f, Finding::UnreachableLocation { location } if location == "Island")
        ));
    }

    #[test]
    fn undeclared_variable_detected() {
        let mut b = HybridAutomaton::builder("oov");
        let a = b.location("A");
        b.invariant(a, Pred::ge(Expr::var(crate::expr::VarId(9)), Expr::c(0.0)));
        b.initial(a, None);
        let auto = b.build().unwrap();
        let report = validate(&auto);
        assert!(report
            .findings
            .iter()
            .any(|f| matches!(f, Finding::UndeclaredVariable { index: 9, .. })));
    }

    #[test]
    fn urgent_false_guard_detected() {
        let mut b = HybridAutomaton::builder("uf");
        let a = b.location("A");
        let c = b.location("B");
        b.edge(a, c).guard(Pred::False).urgent().done();
        b.initial(a, None);
        let auto = b.build().unwrap();
        let report = validate(&auto);
        assert!(report
            .findings
            .iter()
            .any(|f| matches!(f, Finding::UrgentGuardFalse { .. })));
    }

    #[test]
    fn self_communication_detected() {
        let mut b = HybridAutomaton::builder("selfcomm");
        let a = b.location("A");
        let c = b.location("B");
        b.edge(a, c).emit("ping").done();
        b.edge(c, a).on("ping").done();
        b.initial(a, None);
        let auto = b.build().unwrap();
        let report = validate(&auto);
        assert!(report
            .findings
            .iter()
            .any(|f| matches!(f, Finding::SelfCommunication { root } if root == "ping")));
    }

    #[test]
    fn report_display() {
        let report = ValidationReport::default();
        assert_eq!(format!("{report}"), "ok");
    }
}
