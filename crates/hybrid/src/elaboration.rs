//! Atomic and parallel elaboration of hybrid automata (Section IV-C).
//!
//! `E(A, v, A′)` replaces location `v` of a host automaton `A` with a
//! *simple*, *independent* child automaton `A′`, per the paper's five
//! intuitions:
//!
//! 1. location `v` is replaced by the whole of `A′`;
//! 2. former ingress edges to `v` become ingress edges to `A′`'s initial
//!    locations;
//! 3. former egress edges from `v` become egress edges from every `A′`
//!    location;
//! 4. inside `A′`, the host variables keep the continuous behaviour they
//!    had in `v` (flows copied from `v`, host clocks keep running);
//! 5. outside `A′`, the child variables are frozen (derivative 0) and keep
//!    their values until the next visit.
//!
//! The child locations **inherit the risky flag of `v`** — from the PTE
//! monitor's perspective, dwelling anywhere inside the child automaton *is*
//! dwelling in `v`. The returned [`Elaborated`] carries the projection from
//! result locations back to host locations; this projection is exactly the
//! trace-mapping used in Theorem 2's proof (every trajectory of the
//! elaborated design projects to a trajectory of the pattern).
//!
//! Self-loops at `v` (e.g. a sensor-sampling reset edge) are mapped to
//! stay-in-place self-loops on every child location. The paper does not
//! treat this case explicitly; keeping the child's progress intact is the
//! only interpretation under which intuition 4 (host variables unaffected)
//! extends to host *edges* that do not leave `v`, and it preserves the
//! projection property.

use crate::automaton::{Edge, HybridAutomaton, InitialState, LocId, Location};
use crate::expr::Expr;
use crate::independence::{
    dependence_reasons, not_simple_reasons, DependenceReason, NotSimpleReason,
};
use std::fmt;

/// Errors raised by elaboration.
#[derive(Clone, PartialEq, Debug)]
pub enum ElaborationError {
    /// Host and child are not independent (Definition 2).
    NotIndependent(Vec<DependenceReason>),
    /// The child is not a simple hybrid automaton (Definition 3).
    ChildNotSimple(Vec<NotSimpleReason>),
    /// The named/indexed location does not exist in the host.
    UnknownLocation(String),
    /// Parallel elaboration listed the same host location twice.
    DuplicateTarget(String),
    /// The children of a parallel elaboration are not mutually independent.
    ChildrenNotIndependent(Vec<DependenceReason>),
}

impl fmt::Display for ElaborationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ElaborationError::NotIndependent(rs) => {
                write!(f, "host and child not independent: ")?;
                for r in rs {
                    write!(f, "{r}; ")?;
                }
                Ok(())
            }
            ElaborationError::ChildNotSimple(rs) => {
                write!(f, "child not a simple hybrid automaton: ")?;
                for r in rs {
                    write!(f, "{r}; ")?;
                }
                Ok(())
            }
            ElaborationError::UnknownLocation(n) => write!(f, "unknown location `{n}`"),
            ElaborationError::DuplicateTarget(n) => {
                write!(f, "location `{n}` elaborated twice")
            }
            ElaborationError::ChildrenNotIndependent(rs) => {
                write!(f, "children not mutually independent: ")?;
                for r in rs {
                    write!(f, "{r}; ")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for ElaborationError {}

/// The result of an elaboration: the new automaton plus the projection from
/// its locations back to the host's locations (child locations project to
/// the elaborated host location).
#[derive(Clone, Debug)]
pub struct Elaborated {
    /// The elaborated automaton `A″ = E(A, v, A′)`.
    pub automaton: HybridAutomaton,
    /// `projection[new_loc.0] = host_loc`: Theorem 2's trace projection at
    /// the location level.
    pub projection: Vec<LocId>,
}

/// Atomic elaboration `E(A, v, A′)` (Section IV-C).
///
/// Fails unless `A` and `child` are independent and `child` is simple.
pub fn elaborate(
    host: &HybridAutomaton,
    v: LocId,
    child: &HybridAutomaton,
) -> Result<Elaborated, ElaborationError> {
    if v.0 >= host.locations.len() {
        return Err(ElaborationError::UnknownLocation(format!("{v:?}")));
    }
    let deps = dependence_reasons(host, child);
    if !deps.is_empty() {
        return Err(ElaborationError::NotIndependent(deps));
    }
    let simple = not_simple_reasons(child);
    if !simple.is_empty() {
        return Err(ElaborationError::ChildNotSimple(simple));
    }

    let n_host_vars = host.vars.len();
    let host_loc_count = host.locations.len();
    let elaborated_loc = &host.locations[v.0];

    // --- Variables: host ++ child (child ids shifted). -------------------
    let mut vars = host.vars.clone();
    vars.extend(child.vars.iter().cloned());

    // --- Locations. -------------------------------------------------------
    // Host locations keep their indices (slot v is replaced by the child's
    // first location); remaining child locations are appended. This keeps
    // host LocIds stable, which keeps the projection and parallel
    // elaboration simple.
    //
    // map_child[j] = new id of child location j.
    let mut map_child: Vec<LocId> = Vec::with_capacity(child.locations.len());
    for j in 0..child.locations.len() {
        if j == 0 {
            map_child.push(v);
        } else {
            map_child.push(LocId(host_loc_count + j - 1));
        }
    }

    let make_child_loc = |j: usize| -> Location {
        let cl = &child.locations[j];
        // Invariant: inv_A(v) ∧ inv_A′(u), child vars shifted.
        let invariant = elaborated_loc
            .invariant
            .clone()
            .and(cl.invariant.shift_vars(n_host_vars));
        // Flows: host vars behave as in v; child vars as in u (shifted).
        let mut flows: Vec<(crate::expr::VarId, Expr)> = elaborated_loc.flows.clone();
        for (cv, ce) in &cl.flows {
            flows.push((
                crate::expr::VarId(cv.0 + n_host_vars),
                ce.shift_vars(n_host_vars),
            ));
        }
        Location {
            name: cl.name.clone(),
            invariant,
            flows,
            // Child locations inherit the host location's risky flag.
            risky: elaborated_loc.risky,
        }
    };

    let mut locations: Vec<Location> = Vec::with_capacity(host_loc_count + child.locations.len());
    let mut projection: Vec<LocId> = Vec::new();
    for (i, loc) in host.locations.iter().enumerate() {
        if i == v.0 {
            locations.push(make_child_loc(0));
        } else {
            // Freeze child variables in host locations (intuition 5):
            // explicit zero flows override the clock default of 1.
            let mut loc = loc.clone();
            for (j, decl) in child.vars.iter().enumerate() {
                let _ = decl;
                loc.flows
                    .push((crate::expr::VarId(n_host_vars + j), Expr::zero()));
            }
            locations.push(loc);
        }
        projection.push(LocId(i));
    }
    for j in 1..child.locations.len() {
        locations.push(make_child_loc(j));
        projection.push(v);
    }

    // --- Edges. ------------------------------------------------------------
    let child_initials: Vec<LocId> = child
        .initial_locations()
        .iter()
        .map(|u| map_child[u.0])
        .collect();
    let all_child_locs: Vec<LocId> = map_child.clone();

    let mut edges: Vec<Edge> = Vec::new();
    for e in &host.edges {
        let from_v = e.src == v;
        let to_v = e.dst == v;
        match (from_v, to_v) {
            (false, false) => edges.push(e.clone()),
            // Ingress: redirect to every child initial location. The child's
            // first location already occupies slot v; if it is initial the
            // original edge is reproduced unchanged, plus copies for other
            // initials.
            (false, true) => {
                for dst in &child_initials {
                    let mut e2 = e.clone();
                    e2.dst = *dst;
                    edges.push(e2);
                }
            }
            // Egress: copy from every child location.
            (true, false) => {
                for src in &all_child_locs {
                    let mut e2 = e.clone();
                    e2.src = *src;
                    edges.push(e2);
                }
            }
            // Self-loop at v: stay-in-place loop on every child location
            // (see module docs).
            (true, true) => {
                for lc in &all_child_locs {
                    let mut e2 = e.clone();
                    e2.src = *lc;
                    e2.dst = *lc;
                    edges.push(e2);
                }
            }
        }
    }
    for e in &child.edges {
        let mut e2 = e.clone();
        e2.src = map_child[e.src.0];
        e2.dst = map_child[e.dst.0];
        e2.guard = e.guard.shift_vars(n_host_vars);
        e2.resets = e
            .resets
            .iter()
            .map(|(cv, ce)| {
                (
                    crate::expr::VarId(cv.0 + n_host_vars),
                    ce.shift_vars(n_host_vars),
                )
            })
            .collect();
        edges.push(e2);
    }

    // --- Initial states. ----------------------------------------------------
    let child_defaults: Vec<f64> = child.vars.iter().map(|d| d.init).collect();
    let mut initial: Vec<InitialState> = Vec::new();
    for init in &host.initial {
        if init.loc == v {
            // Host initially at v: start at each child initial location,
            // with host initial data ++ child defaults (zero for simple
            // children).
            for u in child.initial_locations() {
                let data = init.data.as_ref().map(|d| {
                    let mut combined = d.clone();
                    combined.extend_from_slice(&child_defaults);
                    combined
                });
                initial.push(InitialState {
                    loc: map_child[u.0],
                    data,
                });
            }
        } else {
            let data = init.data.as_ref().map(|d| {
                let mut combined = d.clone();
                combined.extend_from_slice(&child_defaults);
                combined
            });
            initial.push(InitialState {
                loc: init.loc,
                data,
            });
        }
    }

    Ok(Elaborated {
        automaton: HybridAutomaton {
            name: host.name.clone(),
            vars,
            locations,
            edges,
            initial,
        },
        projection,
    })
}

/// Parallel elaboration
/// `E(A, (v1, …, vk), (A1, …, Ak))` by host-location *name* (names are
/// stable across the intermediate steps, unlike indices).
///
/// Children must be mutually independent and each independent of the host.
pub fn elaborate_parallel(
    host: &HybridAutomaton,
    substitutions: &[(&str, &HybridAutomaton)],
) -> Result<Elaborated, ElaborationError> {
    // Duplicate target check.
    for (i, (name, _)) in substitutions.iter().enumerate() {
        if substitutions[..i].iter().any(|(n, _)| n == name) {
            return Err(ElaborationError::DuplicateTarget((*name).to_string()));
        }
    }
    // Mutual independence of children.
    for i in 0..substitutions.len() {
        for j in (i + 1)..substitutions.len() {
            let deps = dependence_reasons(substitutions[i].1, substitutions[j].1);
            if !deps.is_empty() {
                return Err(ElaborationError::ChildrenNotIndependent(deps));
            }
        }
    }

    let mut current = Elaborated {
        automaton: host.clone(),
        projection: (0..host.locations.len()).map(LocId).collect(),
    };
    for (name, child) in substitutions {
        let v = current
            .automaton
            .loc_by_name(name)
            .ok_or_else(|| ElaborationError::UnknownLocation((*name).to_string()))?;
        let step = elaborate(&current.automaton, v, child)?;
        // Compose projections: step.projection maps new -> current ids,
        // current.projection maps current -> original host ids.
        let composed: Vec<LocId> = step
            .projection
            .iter()
            .map(|mid| current.projection[mid.0])
            .collect();
        current = Elaborated {
            automaton: step.automaton,
            projection: composed,
        };
    }
    Ok(current)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::{HybridAutomaton, VarKind};
    use crate::expr::{Expr, VarId};
    use crate::pred::Pred;
    use crate::validate::validate;

    /// The host automaton of Fig. 6 (a): Fall-Back <-> Risky with one
    /// continuous variable `x`.
    fn fig6_host() -> HybridAutomaton {
        let mut b = HybridAutomaton::builder("host");
        let x = b.var("x", VarKind::Continuous, 0.0);
        let fb = b.location("Fall-Back");
        let risky = b.risky_location("Risky");
        b.flow(fb, x, Expr::c(1.0));
        b.flow(risky, x, Expr::c(-2.0));
        b.edge(fb, risky)
            .guard(Pred::ge(Expr::var(x), Expr::c(5.0)))
            .on_lossy("go")
            .done();
        b.edge(risky, fb)
            .guard(Pred::le(Expr::var(x), Expr::c(0.0)))
            .urgent()
            .done();
        b.initial(fb, None);
        b.build().unwrap()
    }

    /// The ventilator `A′vent` of Fig. 2 (simple, independent of the host).
    fn fig2_vent() -> HybridAutomaton {
        let mut b = HybridAutomaton::builder("vent");
        let h = b.var("Hvent", VarKind::Continuous, 0.0);
        let inv = Pred::ge(Expr::var(h), Expr::c(0.0)).and(Pred::le(Expr::var(h), Expr::c(0.3)));
        let out = b.location("PumpOut");
        let inn = b.location("PumpIn");
        b.invariant(out, inv.clone());
        b.invariant(inn, inv);
        b.flow(out, h, Expr::c(-0.1));
        b.flow(inn, h, Expr::c(0.1));
        b.edge(out, inn)
            .guard(Pred::le(Expr::var(h), Expr::c(0.0)))
            .urgent()
            .emit("evtVPumpIn")
            .done();
        b.edge(inn, out)
            .guard(Pred::ge(Expr::var(h), Expr::c(0.3)))
            .urgent()
            .emit("evtVPumpOut")
            .done();
        b.initial(out, None);
        b.build().unwrap()
    }

    #[test]
    fn fig6_structure() {
        let host = fig6_host();
        let vent = fig2_vent();
        let fb = host.loc_by_name("Fall-Back").unwrap();
        let el = elaborate(&host, fb, &vent).unwrap();
        let a = &el.automaton;

        // Locations: Risky + PumpOut + PumpIn.
        assert_eq!(a.locations.len(), 3);
        assert!(a.loc_by_name("PumpOut").is_some());
        assert!(a.loc_by_name("PumpIn").is_some());
        assert!(a.loc_by_name("Fall-Back").is_none());
        // Variables concatenated.
        assert_eq!(a.dimension(), 2);
        assert!(a.var_by_name("Hvent").is_some());

        // Ingress edge Risky -> Fall-Back becomes Risky -> PumpOut only
        // (PumpIn is not initial — the paper calls this out explicitly).
        let risky = a.loc_by_name("Risky").unwrap();
        let pump_in = a.loc_by_name("PumpIn").unwrap();
        let pump_out = a.loc_by_name("PumpOut").unwrap();
        let ingress: Vec<_> = a
            .edges
            .iter()
            .filter(|e| e.src == risky && e.trigger.is_none())
            .collect();
        assert_eq!(ingress.len(), 1);
        assert_eq!(ingress[0].dst, pump_out);

        // Egress `go` edges from both child locations.
        let egress: Vec<_> = a
            .edges
            .iter()
            .filter(|e| e.dst == risky && e.trigger.is_some())
            .collect();
        assert_eq!(egress.len(), 2);
        assert!(egress.iter().any(|e| e.src == pump_in));
        assert!(egress.iter().any(|e| e.src == pump_out));

        // Projection: child locations project to the old Fall-Back slot.
        assert_eq!(el.projection[pump_out.0], fb);
        assert_eq!(el.projection[pump_in.0], fb);
        assert_eq!(el.projection[risky.0], risky);

        assert!(validate(a).is_clean(), "{}", validate(a));
    }

    #[test]
    fn host_vars_flow_as_in_v_inside_child() {
        let host = fig6_host();
        let vent = fig2_vent();
        let fb = host.loc_by_name("Fall-Back").unwrap();
        let el = elaborate(&host, fb, &vent).unwrap();
        let a = &el.automaton;
        let pump_in = a.loc_by_name("PumpIn").unwrap();
        // x (host var 0) must flow at +1 (its Fall-Back rate) inside PumpIn.
        let flow = a.locations[pump_in.0].flow_of(VarId(0), VarKind::Continuous);
        assert_eq!(flow, Expr::c(1.0));
        // Hvent must flow at +0.1 in PumpIn (child rate, shifted id 1).
        let hflow = a.locations[pump_in.0].flow_of(VarId(1), VarKind::Continuous);
        assert_eq!(hflow, Expr::c(0.1));
    }

    #[test]
    fn child_vars_frozen_outside() {
        let host = fig6_host();
        let vent = fig2_vent();
        let fb = host.loc_by_name("Fall-Back").unwrap();
        let el = elaborate(&host, fb, &vent).unwrap();
        let a = &el.automaton;
        let risky = a.loc_by_name("Risky").unwrap();
        let hflow = a.locations[risky.0].flow_of(VarId(1), VarKind::Continuous);
        assert_eq!(hflow, Expr::zero());
    }

    #[test]
    fn child_clock_frozen_outside() {
        // A child with a clock: outside the child, the clock must NOT run.
        let host = fig6_host();
        let mut b = HybridAutomaton::builder("clocked");
        let c = b.clock("child_clk");
        let l0 = b.location("C0");
        let l1 = b.location("C1");
        b.edge(l0, l1)
            .guard(Pred::ge(Expr::var(c), Expr::c(1.0)))
            .urgent()
            .done();
        b.initial(l0, None);
        let child = b.build().unwrap();
        let fb = host.loc_by_name("Fall-Back").unwrap();
        let el = elaborate(&host, fb, &child).unwrap();
        let a = &el.automaton;
        let risky = a.loc_by_name("Risky").unwrap();
        // Child clock is var 1 after shift; in Risky it must be frozen.
        let flow = a.locations[risky.0].flow_of(VarId(1), VarKind::Clock);
        assert_eq!(flow, Expr::zero());
        // Inside the child it runs at its default slope 1.
        let c0 = a.loc_by_name("C0").unwrap();
        let flow_in = a.locations[c0.0].flow_of(VarId(1), VarKind::Clock);
        assert_eq!(flow_in, Expr::one());
    }

    #[test]
    fn risky_flag_inherited() {
        let host = fig6_host();
        let vent = fig2_vent();
        let risky_loc = host.loc_by_name("Risky").unwrap();
        let el = elaborate(&host, risky_loc, &vent).unwrap();
        let a = &el.automaton;
        assert!(a.is_risky(a.loc_by_name("PumpOut").unwrap()));
        assert!(a.is_risky(a.loc_by_name("PumpIn").unwrap()));
        assert!(!a.is_risky(a.loc_by_name("Fall-Back").unwrap()));
    }

    #[test]
    fn dependent_child_rejected() {
        let host = fig6_host();
        let mut b = HybridAutomaton::builder("dep");
        let _x = b.var("x", VarKind::Continuous, 0.0); // collides with host
        let l = b.location("L");
        b.initial(l, None);
        let child = b.build().unwrap();
        let fb = host.loc_by_name("Fall-Back").unwrap();
        assert!(matches!(
            elaborate(&host, fb, &child),
            Err(ElaborationError::NotIndependent(_))
        ));
    }

    #[test]
    fn non_simple_child_rejected() {
        let host = fig6_host();
        let mut b = HybridAutomaton::builder("ns");
        let y = b.var("y", VarKind::Continuous, 0.5); // nonzero init
        let l = b.location("L");
        b.invariant(l, Pred::ge(Expr::var(y), Expr::c(0.0)));
        b.initial(l, None);
        let child = b.build().unwrap();
        let fb = host.loc_by_name("Fall-Back").unwrap();
        assert!(matches!(
            elaborate(&host, fb, &child),
            Err(ElaborationError::ChildNotSimple(_))
        ));
    }

    #[test]
    fn self_loop_becomes_stay_in_place() {
        let mut b = HybridAutomaton::builder("hostloop");
        let x = b.var("x", VarKind::Continuous, 0.0);
        let fb = b.location("Fall-Back");
        b.edge(fb, fb).on("sample").reset(x, Expr::c(0.0)).done();
        b.initial(fb, None);
        let host = b.build().unwrap();
        let vent = fig2_vent();
        let el = elaborate(&host, LocId(0), &vent).unwrap();
        let a = &el.automaton;
        let loops: Vec<_> = a
            .edges
            .iter()
            .filter(|e| e.trigger.is_some() && e.src == e.dst)
            .collect();
        assert_eq!(loops.len(), 2, "one stay-in-place loop per child location");
    }

    #[test]
    fn parallel_elaboration_composes_projection() {
        let mut b = HybridAutomaton::builder("host2");
        let _x = b.var("x", VarKind::Continuous, 0.0);
        let fb = b.location("Fall-Back");
        let rk = b.risky_location("Risky");
        b.edge(fb, rk).on_lossy("go").done();
        b.edge(rk, fb).on_lossy("back").done();
        b.initial(fb, None);
        let host = b.build().unwrap();

        let vent = fig2_vent();
        let mut b2 = HybridAutomaton::builder("lamp");
        let l = b2.var("Lum", VarKind::Continuous, 0.0);
        let inv = Pred::ge(Expr::var(l), Expr::c(0.0));
        let off = b2.location("Off");
        let on = b2.location("On");
        b2.invariant(off, inv.clone());
        b2.invariant(on, inv);
        b2.edge(off, on).on("toggle").done();
        b2.edge(on, off).on("toggle2").done();
        b2.initial(off, None);
        let lamp = b2.build().unwrap();

        let el = elaborate_parallel(&host, &[("Fall-Back", &vent), ("Risky", &lamp)]).unwrap();
        let a = &el.automaton;
        assert_eq!(a.dimension(), 3);
        // Every location projects to one of the two original locations.
        for (i, _) in a.locations.iter().enumerate() {
            let p = el.projection[i];
            assert!(p == fb || p == rk);
        }
        let on_id = a.loc_by_name("On").unwrap();
        assert_eq!(el.projection[on_id.0], rk);
        assert!(a.is_risky(on_id));
        assert!(validate(a).is_clean(), "{}", validate(a));
    }

    #[test]
    fn duplicate_parallel_target_rejected() {
        let host = fig6_host();
        let vent = fig2_vent();
        let err = elaborate_parallel(&host, &[("Fall-Back", &vent), ("Fall-Back", &vent)]);
        assert!(matches!(err, Err(ElaborationError::DuplicateTarget(_))));
    }

    #[test]
    fn dependent_children_rejected() {
        let mut b = HybridAutomaton::builder("host3");
        let fb = b.location("A");
        let rk = b.location("B");
        b.edge(fb, rk).on("go").done();
        b.initial(fb, None);
        let host = b.build().unwrap();
        let vent1 = fig2_vent();
        let vent2 = fig2_vent(); // same names => dependent on each other
        let err = elaborate_parallel(&host, &[("A", &vent1), ("B", &vent2)]);
        assert!(matches!(
            err,
            Err(ElaborationError::ChildrenNotIndependent(_))
        ));
    }

    #[test]
    fn initial_at_elaborated_location_moves_to_child_initials() {
        let host = fig6_host();
        let vent = fig2_vent();
        let fb = host.loc_by_name("Fall-Back").unwrap();
        let el = elaborate(&host, fb, &vent).unwrap();
        let inits = el.automaton.initial_locations();
        assert_eq!(inits.len(), 1);
        assert_eq!(
            el.automaton.loc_name(inits[0]),
            "PumpOut",
            "child initial location becomes the elaborated initial"
        );
    }
}
