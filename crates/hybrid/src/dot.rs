//! Graphviz (DOT) export of hybrid automata.
//!
//! Used by the figure regenerators (`pte-bench`) to reproduce the paper's
//! automata diagrams: Fig. 2 (stand-alone ventilator), Fig. 3 (Supervisor
//! pattern), Fig. 5 (Initializer/Participant patterns) and Fig. 6
//! (elaboration example). Risky locations are drawn with double borders and
//! shaded; initial locations receive an entry arrow.

use crate::automaton::HybridAutomaton;
use crate::pred::Pred;
use std::fmt::Write as _;

/// Options controlling the DOT rendering.
#[derive(Clone, Debug)]
pub struct DotOptions {
    /// Include invariants in location labels.
    pub show_invariants: bool,
    /// Include flow equations in location labels.
    pub show_flows: bool,
    /// Include guards on edge labels.
    pub show_guards: bool,
    /// Include resets on edge labels.
    pub show_resets: bool,
}

impl Default for DotOptions {
    fn default() -> Self {
        DotOptions {
            show_invariants: true,
            show_flows: true,
            show_guards: true,
            show_resets: true,
        }
    }
}

/// Renders an automaton as a DOT digraph with default options.
pub fn to_dot(a: &HybridAutomaton) -> String {
    to_dot_with(a, &DotOptions::default())
}

/// Renders an automaton as a DOT digraph.
pub fn to_dot_with(a: &HybridAutomaton, opts: &DotOptions) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", escape(&a.name));
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(out, "  node [shape=ellipse, fontname=\"Helvetica\"];");
    let _ = writeln!(out, "  edge [fontname=\"Helvetica\", fontsize=10];");

    let initials = a.initial_locations();

    for (i, loc) in a.locations.iter().enumerate() {
        let mut label = loc.name.clone();
        if opts.show_invariants && !loc.invariant.is_trivially_true() {
            let _ = write!(label, "\\ninv: {}", render_pred(&loc.invariant, a));
        }
        if opts.show_flows {
            for (v, e) in &loc.flows {
                let name = a.vars.get(v.0).map(|d| d.name.as_str()).unwrap_or("?");
                let _ = write!(label, "\\nd{name}/dt = {}", render_expr(e, a));
            }
        }
        let style = if loc.risky {
            "shape=doubleoctagon, style=filled, fillcolor=\"#ffdddd\""
        } else {
            "shape=ellipse"
        };
        let _ = writeln!(out, "  n{i} [label=\"{}\", {}];", escape(&label), style);
    }

    // Entry arrows for initial locations.
    for (k, init) in initials.iter().enumerate() {
        let _ = writeln!(out, "  init{k} [shape=point, width=0.08];");
        let _ = writeln!(out, "  init{k} -> n{};", init.0);
    }

    for e in &a.edges {
        let mut label = String::new();
        if let Some(t) = &e.trigger {
            let _ = write!(label, "{}", t.label());
        }
        if opts.show_guards && e.guard != Pred::True {
            if !label.is_empty() {
                label.push_str("\\n");
            }
            let _ = write!(label, "[{}]", render_pred(&e.guard, a));
        }
        for r in &e.emits {
            if !label.is_empty() {
                label.push_str("\\n");
            }
            let _ = write!(label, "!{r}");
        }
        if opts.show_resets {
            for (v, expr) in &e.resets {
                if !label.is_empty() {
                    label.push_str("\\n");
                }
                let name = a.vars.get(v.0).map(|d| d.name.as_str()).unwrap_or("?");
                let _ = write!(label, "{name} := {}", render_expr(expr, a));
            }
        }
        let style = if e.urgent { ", style=bold" } else { "" };
        let _ = writeln!(
            out,
            "  n{} -> n{} [label=\"{}\"{}];",
            e.src.0,
            e.dst.0,
            escape(&label),
            style
        );
    }

    out.push_str("}\n");
    out
}

/// Renders an expression with variable *names* instead of indices.
fn render_expr(e: &crate::expr::Expr, a: &HybridAutomaton) -> String {
    use crate::expr::Expr;
    match e {
        Expr::Const(c) => format!("{c}"),
        Expr::Var(v) => a
            .vars
            .get(v.0)
            .map(|d| d.name.clone())
            .unwrap_or_else(|| format!("x{}", v.0)),
        Expr::Neg(inner) => format!("-({})", render_expr(inner, a)),
        Expr::Abs(inner) => format!("|{}|", render_expr(inner, a)),
        Expr::Add(x, y) => format!("({} + {})", render_expr(x, a), render_expr(y, a)),
        Expr::Sub(x, y) => format!("({} - {})", render_expr(x, a), render_expr(y, a)),
        Expr::Mul(x, y) => format!("({} * {})", render_expr(x, a), render_expr(y, a)),
        Expr::Div(x, y) => format!("({} / {})", render_expr(x, a), render_expr(y, a)),
        Expr::Min(x, y) => format!("min({}, {})", render_expr(x, a), render_expr(y, a)),
        Expr::Max(x, y) => format!("max({}, {})", render_expr(x, a), render_expr(y, a)),
    }
}

/// Renders a predicate with variable names.
fn render_pred(p: &Pred, a: &HybridAutomaton) -> String {
    match p {
        Pred::True => "true".into(),
        Pred::False => "false".into(),
        Pred::Cmp(l, op, r) => format!(
            "{} {} {}",
            render_expr(l, a),
            op.symbol(),
            render_expr(r, a)
        ),
        Pred::And(ps) => ps
            .iter()
            .map(|q| render_pred(q, a))
            .collect::<Vec<_>>()
            .join(" && "),
        Pred::Or(ps) => ps
            .iter()
            .map(|q| render_pred(q, a))
            .collect::<Vec<_>>()
            .join(" || "),
        Pred::Not(q) => format!("!({})", render_pred(q, a)),
    }
}

fn escape(s: &str) -> String {
    s.replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::{HybridAutomaton, VarKind};
    use crate::expr::Expr;
    use crate::pred::Pred;

    fn vent() -> HybridAutomaton {
        let mut b = HybridAutomaton::builder("ventilator");
        let h = b.var("Hvent", VarKind::Continuous, 0.0);
        let out = b.location("PumpOut");
        let inn = b.risky_location("PumpIn");
        b.invariant(
            out,
            Pred::ge(Expr::var(h), Expr::c(0.0)).and(Pred::le(Expr::var(h), Expr::c(0.3))),
        );
        b.flow(out, h, Expr::c(-0.1));
        b.flow(inn, h, Expr::c(0.1));
        b.edge(out, inn)
            .guard(Pred::le(Expr::var(h), Expr::c(0.0)))
            .urgent()
            .emit("evtVPumpIn")
            .done();
        b.edge(inn, out)
            .on_lossy("evtBack")
            .reset(h, Expr::c(0.0))
            .done();
        b.initial(out, None);
        b.build().unwrap()
    }

    #[test]
    fn dot_contains_locations_and_edges() {
        let dot = to_dot(&vent());
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("PumpOut"));
        assert!(dot.contains("PumpIn"));
        assert!(dot.contains("!evtVPumpIn"));
        assert!(dot.contains("??evtBack"));
        assert!(dot.contains("doubleoctagon"), "risky location styled");
        assert!(dot.contains("init0 ->"), "initial arrow present");
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn dot_renders_variable_names() {
        let dot = to_dot(&vent());
        assert!(dot.contains("dHvent/dt = -0.1"), "{dot}");
        assert!(dot.contains("Hvent := 0"));
        assert!(dot.contains("Hvent >= 0"));
    }

    #[test]
    fn options_suppress_detail() {
        let opts = DotOptions {
            show_invariants: false,
            show_flows: false,
            show_guards: false,
            show_resets: false,
        };
        let dot = to_dot_with(&vent(), &opts);
        assert!(!dot.contains("inv:"));
        assert!(!dot.contains("dHvent/dt"));
        assert!(!dot.contains(":="));
    }

    #[test]
    fn quotes_escaped() {
        let mut b = HybridAutomaton::builder("q\"uote");
        let l = b.location("L\"1");
        b.initial(l, None);
        let a = b.build().unwrap();
        let dot = to_dot(&a);
        assert!(dot.contains("q\\\"uote"));
        assert!(dot.contains("L\\\"1"));
    }
}
