//! Predicates over data state variables.
//!
//! Invariant sets `inv(v)`, guard sets `g(e)`, and the application-dependent
//! propositions of the design pattern (`ApprovalCondition`,
//! `ParticipationCondition`) are all predicates over the data state
//! variables vector. As with [`crate::expr`], a small AST keeps the model
//! serializable, comparable and printable.

use crate::expr::{EvalCtx, Expr, VarId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Comparison operators for atomic predicates.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Cmp {
    /// Strictly less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Strictly greater than.
    Gt,
    /// Greater than or equal.
    Ge,
    /// Equal within [`Pred::EQ_TOLERANCE`].
    Eq,
    /// Not equal (beyond [`Pred::EQ_TOLERANCE`]).
    Ne,
}

impl Cmp {
    /// Applies the comparison to two floats.
    pub fn apply(self, lhs: f64, rhs: f64) -> bool {
        match self {
            Cmp::Lt => lhs < rhs,
            Cmp::Le => lhs <= rhs,
            Cmp::Gt => lhs > rhs,
            Cmp::Ge => lhs >= rhs,
            Cmp::Eq => (lhs - rhs).abs() <= Pred::EQ_TOLERANCE,
            Cmp::Ne => (lhs - rhs).abs() > Pred::EQ_TOLERANCE,
        }
    }

    /// Symbol used by [`fmt::Display`].
    pub fn symbol(self) -> &'static str {
        match self {
            Cmp::Lt => "<",
            Cmp::Le => "<=",
            Cmp::Gt => ">",
            Cmp::Ge => ">=",
            Cmp::Eq => "==",
            Cmp::Ne => "!=",
        }
    }
}

/// A boolean predicate over the data state variables vector.
#[derive(Clone, PartialEq, Serialize, Deserialize, Default)]
pub enum Pred {
    /// Always true (the trivial invariant `R^n`).
    #[default]
    True,
    /// Always false (the empty set).
    False,
    /// Atomic comparison between two expressions.
    Cmp(Expr, Cmp, Expr),
    /// Conjunction of sub-predicates (empty conjunction is true).
    And(Vec<Pred>),
    /// Disjunction of sub-predicates (empty disjunction is false).
    Or(Vec<Pred>),
    /// Negation.
    Not(Box<Pred>),
}

impl Pred {
    /// Tolerance used by [`Cmp::Eq`] / [`Cmp::Ne`] on continuous states.
    pub const EQ_TOLERANCE: f64 = 1e-9;

    /// Atomic comparison constructor.
    pub fn cmp(lhs: impl Into<Expr>, op: Cmp, rhs: impl Into<Expr>) -> Pred {
        Pred::Cmp(lhs.into(), op, rhs.into())
    }

    /// `lhs < rhs`.
    pub fn lt(lhs: impl Into<Expr>, rhs: impl Into<Expr>) -> Pred {
        Pred::cmp(lhs, Cmp::Lt, rhs)
    }

    /// `lhs <= rhs`.
    pub fn le(lhs: impl Into<Expr>, rhs: impl Into<Expr>) -> Pred {
        Pred::cmp(lhs, Cmp::Le, rhs)
    }

    /// `lhs > rhs`.
    pub fn gt(lhs: impl Into<Expr>, rhs: impl Into<Expr>) -> Pred {
        Pred::cmp(lhs, Cmp::Gt, rhs)
    }

    /// `lhs >= rhs`.
    pub fn ge(lhs: impl Into<Expr>, rhs: impl Into<Expr>) -> Pred {
        Pred::cmp(lhs, Cmp::Ge, rhs)
    }

    /// `lhs == rhs` (within tolerance).
    pub fn eq(lhs: impl Into<Expr>, rhs: impl Into<Expr>) -> Pred {
        Pred::cmp(lhs, Cmp::Eq, rhs)
    }

    /// Conjunction of `self` and `other`, flattening nested conjunctions.
    pub fn and(self, other: Pred) -> Pred {
        match (self, other) {
            (Pred::True, p) | (p, Pred::True) => p,
            (Pred::And(mut a), Pred::And(b)) => {
                a.extend(b);
                Pred::And(a)
            }
            (Pred::And(mut a), p) => {
                a.push(p);
                Pred::And(a)
            }
            (p, Pred::And(mut b)) => {
                b.insert(0, p);
                Pred::And(b)
            }
            (a, b) => Pred::And(vec![a, b]),
        }
    }

    /// Disjunction of `self` and `other`, flattening nested disjunctions.
    pub fn or(self, other: Pred) -> Pred {
        match (self, other) {
            (Pred::False, p) | (p, Pred::False) => p,
            (Pred::Or(mut a), Pred::Or(b)) => {
                a.extend(b);
                Pred::Or(a)
            }
            (Pred::Or(mut a), p) => {
                a.push(p);
                Pred::Or(a)
            }
            (p, Pred::Or(mut b)) => {
                b.insert(0, p);
                Pred::Or(b)
            }
            (a, b) => Pred::Or(vec![a, b]),
        }
    }

    /// Logical negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Pred {
        match self {
            Pred::True => Pred::False,
            Pred::False => Pred::True,
            Pred::Not(inner) => *inner,
            p => Pred::Not(Box::new(p)),
        }
    }

    /// Evaluates the predicate against a variable valuation.
    pub fn eval(&self, ctx: &EvalCtx<'_>) -> bool {
        match self {
            Pred::True => true,
            Pred::False => false,
            Pred::Cmp(lhs, op, rhs) => op.apply(lhs.eval(ctx), rhs.eval(ctx)),
            Pred::And(ps) => ps.iter().all(|p| p.eval(ctx)),
            Pred::Or(ps) => ps.iter().any(|p| p.eval(ctx)),
            Pred::Not(p) => !p.eval(ctx),
        }
    }

    /// Convenience: evaluates against a raw slice valuation.
    pub fn holds(&self, vars: &[f64]) -> bool {
        self.eval(&EvalCtx::new(vars))
    }

    /// Evaluates with a numeric slack: comparisons are *relaxed* by
    /// `slack` (a state within `slack` of satisfying an atom counts as
    /// satisfying it). Negated sub-predicates are strengthened
    /// symmetrically, so `p.eval_slack(ctx, s)` is monotone in `s`.
    ///
    /// The executor uses this for invariant checks: boundary localization
    /// necessarily lands a hair past invariant boundaries (e.g.
    /// `Hvent = -1e-17` after the `Hvent ≤ 0` crossing), which must not
    /// count as a time-block.
    pub fn eval_slack(&self, ctx: &EvalCtx<'_>, slack: f64) -> bool {
        match self {
            Pred::True => true,
            Pred::False => false,
            Pred::Cmp(lhs, op, rhs) => {
                let l = lhs.eval(ctx);
                let r = rhs.eval(ctx);
                match op {
                    Cmp::Lt => l < r + slack,
                    Cmp::Le => l <= r + slack,
                    Cmp::Gt => l > r - slack,
                    Cmp::Ge => l >= r - slack,
                    Cmp::Eq => (l - r).abs() <= Pred::EQ_TOLERANCE + slack.max(0.0),
                    Cmp::Ne => (l - r).abs() > (Pred::EQ_TOLERANCE - slack).max(0.0),
                }
            }
            Pred::And(ps) => ps.iter().all(|p| p.eval_slack(ctx, slack)),
            Pred::Or(ps) => ps.iter().any(|p| p.eval_slack(ctx, slack)),
            Pred::Not(p) => !p.eval_slack(ctx, -slack),
        }
    }

    /// Convenience: [`Pred::eval_slack`] against a raw slice valuation.
    pub fn holds_with_slack(&self, vars: &[f64], slack: f64) -> bool {
        self.eval_slack(&EvalCtx::new(vars), slack)
    }

    /// Collects every variable referenced by the predicate into `out`.
    pub fn collect_vars(&self, out: &mut Vec<VarId>) {
        match self {
            Pred::True | Pred::False => {}
            Pred::Cmp(lhs, _, rhs) => {
                lhs.collect_vars(out);
                rhs.collect_vars(out);
            }
            Pred::And(ps) | Pred::Or(ps) => {
                for p in ps {
                    p.collect_vars(out);
                }
            }
            Pred::Not(p) => p.collect_vars(out),
        }
    }

    /// The set of variables referenced by the predicate.
    pub fn vars(&self) -> Vec<VarId> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out
    }

    /// Returns a copy with every variable index shifted by `offset`
    /// (elaboration support; see [`Expr::shift_vars`]).
    pub fn shift_vars(&self, offset: usize) -> Pred {
        match self {
            Pred::True => Pred::True,
            Pred::False => Pred::False,
            Pred::Cmp(lhs, op, rhs) => {
                Pred::Cmp(lhs.shift_vars(offset), *op, rhs.shift_vars(offset))
            }
            Pred::And(ps) => Pred::And(ps.iter().map(|p| p.shift_vars(offset)).collect()),
            Pred::Or(ps) => Pred::Or(ps.iter().map(|p| p.shift_vars(offset)).collect()),
            Pred::Not(p) => Pred::Not(Box::new(p.shift_vars(offset))),
        }
    }

    /// Best-effort syntactic check that this predicate is the trivial `True`.
    pub fn is_trivially_true(&self) -> bool {
        match self {
            Pred::True => true,
            Pred::And(ps) => ps.iter().all(|p| p.is_trivially_true()),
            _ => false,
        }
    }
}

impl fmt::Debug for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pred::True => write!(f, "true"),
            Pred::False => write!(f, "false"),
            Pred::Cmp(lhs, op, rhs) => write!(f, "{lhs} {} {rhs}", op.symbol()),
            Pred::And(ps) => {
                if ps.is_empty() {
                    return write!(f, "true");
                }
                let parts: Vec<String> = ps.iter().map(|p| format!("{p}")).collect();
                write!(f, "({})", parts.join(" && "))
            }
            Pred::Or(ps) => {
                if ps.is_empty() {
                    return write!(f, "false");
                }
                let parts: Vec<String> = ps.iter().map(|p| format!("{p}")).collect();
                write!(f, "({})", parts.join(" || "))
            }
            Pred::Not(p) => write!(f, "!({p})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_semantics() {
        assert!(Cmp::Lt.apply(1.0, 2.0));
        assert!(!Cmp::Lt.apply(2.0, 2.0));
        assert!(Cmp::Le.apply(2.0, 2.0));
        assert!(Cmp::Gt.apply(3.0, 2.0));
        assert!(Cmp::Ge.apply(2.0, 2.0));
        assert!(Cmp::Eq.apply(1.0, 1.0 + 1e-12));
        assert!(Cmp::Ne.apply(1.0, 1.1));
    }

    #[test]
    fn eval_compound() {
        let vars = vec![5.0, -1.0];
        let x0 = Expr::var(VarId(0));
        let x1 = Expr::var(VarId(1));
        let p = Pred::ge(x0.clone(), Expr::c(0.0)).and(Pred::lt(x1.clone(), Expr::c(0.0)));
        assert!(p.holds(&vars));
        let q = Pred::lt(x0, Expr::c(0.0)).or(Pred::lt(x1, Expr::c(0.0)));
        assert!(q.holds(&vars));
        assert!(!q.not().holds(&vars));
    }

    #[test]
    fn and_or_flatten_and_absorb_trivials() {
        let a = Pred::lt(Expr::c(0.0), Expr::c(1.0));
        assert_eq!(Pred::True.and(a.clone()), a);
        assert_eq!(a.clone().and(Pred::True), a);
        assert_eq!(Pred::False.or(a.clone()), a);
        let nested = a.clone().and(a.clone()).and(a.clone());
        if let Pred::And(ps) = &nested {
            assert_eq!(ps.len(), 3);
        } else {
            panic!("expected flattened And");
        }
    }

    #[test]
    fn double_negation_cancels() {
        let a = Pred::lt(Expr::c(0.0), Expr::c(1.0));
        assert_eq!(a.clone().not().not(), a);
        assert_eq!(Pred::True.not(), Pred::False);
        assert_eq!(Pred::False.not(), Pred::True);
    }

    #[test]
    fn vars_collected_across_structure() {
        let p = Pred::ge(Expr::var(VarId(3)), Expr::c(1.0))
            .and(Pred::lt(Expr::var(VarId(1)), Expr::var(VarId(3))));
        let vars = p.vars();
        assert_eq!(vars.len(), 2);
        assert!(vars.contains(&VarId(1)));
        assert!(vars.contains(&VarId(3)));
    }

    #[test]
    fn shift_vars_applies_recursively() {
        let p = Pred::ge(Expr::var(VarId(0)), Expr::c(1.0)).not();
        let shifted = p.shift_vars(5);
        assert!(shifted.vars().contains(&VarId(5)));
    }

    #[test]
    fn trivially_true_detection() {
        assert!(Pred::True.is_trivially_true());
        assert!(Pred::And(vec![Pred::True, Pred::True]).is_trivially_true());
        assert!(!Pred::lt(Expr::c(0.0), Expr::c(1.0)).is_trivially_true());
    }

    #[test]
    fn empty_connectives() {
        assert!(Pred::And(vec![]).holds(&[]));
        assert!(!Pred::Or(vec![]).holds(&[]));
    }

    #[test]
    fn eval_slack_relaxes_atoms() {
        let p = Pred::ge(Expr::var(VarId(0)), Expr::c(0.0));
        assert!(!p.holds(&[-1e-9]));
        assert!(p.holds_with_slack(&[-1e-9], 1e-7));
        assert!(!p.holds_with_slack(&[-1e-6], 1e-7));
        let q = Pred::le(Expr::var(VarId(0)), Expr::c(1.0));
        assert!(q.holds_with_slack(&[1.0 + 1e-9], 1e-7));
    }

    #[test]
    fn eval_slack_monotone_under_negation() {
        // Relaxing !(x >= 0) ≡ x < 0 widens it to x < slack: a point just
        // past the boundary is accepted, a clearly-inside point stays
        // accepted, and a clearly-outside point stays rejected.
        let p = Pred::ge(Expr::var(VarId(0)), Expr::c(0.0)).not();
        assert!(p.holds_with_slack(&[1e-9], 1e-7), "boundary point accepted");
        assert!(p.holds_with_slack(&[-1.0], 1e-7));
        assert!(!p.holds_with_slack(&[1.0], 1e-7));
    }

    #[test]
    fn display_round_trip_readable() {
        let p = Pred::ge(Expr::var(VarId(0)), Expr::c(1.0));
        assert_eq!(format!("{p}"), "x0 >= 1");
    }
}
