//! Hybrid automata independence and simplicity (Definitions 2 and 3).
//!
//! Elaboration (Section IV-C) may only substitute a child automaton `A′`
//! into a host `A` when the two are **independent** — disjoint variable
//! names, location names, and synchronization labels — and when `A′` is a
//! **simple hybrid automaton**: every location shares one invariant, the
//! initial set is the full cross product of initial locations with that
//! invariant, and the zero data state is initial. These conditions are what
//! isolate the child's (physical-world) dynamics from the host pattern's
//! PTE safety argument (Theorem 2).

use crate::automaton::HybridAutomaton;
use crate::expr::EvalCtx;
use std::collections::HashSet;
use std::fmt;

/// Why two automata fail to be independent.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DependenceReason {
    /// A variable name appears in both automata.
    SharedVariable(String),
    /// A location name appears in both automata.
    SharedLocation(String),
    /// A synchronization label (same prefix and root) appears in both.
    SharedLabel(String),
}

impl fmt::Display for DependenceReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DependenceReason::SharedVariable(n) => write!(f, "shared variable `{n}`"),
            DependenceReason::SharedLocation(n) => write!(f, "shared location `{n}`"),
            DependenceReason::SharedLabel(n) => write!(f, "shared label `{n}`"),
        }
    }
}

/// Checks Definition 2: returns every reason `a` and `b` are *not*
/// independent; an empty vector means they are independent.
pub fn dependence_reasons(a: &HybridAutomaton, b: &HybridAutomaton) -> Vec<DependenceReason> {
    let mut reasons = Vec::new();

    let a_vars: HashSet<&str> = a.vars.iter().map(|v| v.name.as_str()).collect();
    for v in &b.vars {
        if a_vars.contains(v.name.as_str()) {
            reasons.push(DependenceReason::SharedVariable(v.name.clone()));
        }
    }

    let a_locs: HashSet<&str> = a.locations.iter().map(|l| l.name.as_str()).collect();
    for l in &b.locations {
        if a_locs.contains(l.name.as_str()) {
            reasons.push(DependenceReason::SharedLocation(l.name.clone()));
        }
    }

    let a_labels: HashSet<String> = a.labels().iter().map(|l| format!("{l}")).collect();
    for l in b.labels() {
        let s = format!("{l}");
        if a_labels.contains(&s) {
            reasons.push(DependenceReason::SharedLabel(s));
        }
    }

    reasons
}

/// `true` iff `a` and `b` are independent (Definition 2).
pub fn are_independent(a: &HybridAutomaton, b: &HybridAutomaton) -> bool {
    dependence_reasons(a, b).is_empty()
}

/// `true` iff every pair in `autos` is independent (mutual independence).
pub fn mutually_independent(autos: &[&HybridAutomaton]) -> bool {
    for i in 0..autos.len() {
        for j in (i + 1)..autos.len() {
            if !are_independent(autos[i], autos[j]) {
                return false;
            }
        }
    }
    true
}

/// Why an automaton fails to be a simple hybrid automaton (Definition 3).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum NotSimpleReason {
    /// Two locations have structurally different invariants
    /// (Definition 3, clause 1: `inv(v1) = inv(v2)` for all locations).
    InvariantsDiffer {
        /// First location name.
        a: String,
        /// Second location name.
        b: String,
    },
    /// An initial location restricts its initial data beyond the invariant
    /// (clause 2: all of `inv(v)` must be initial for initial `v`). With our
    /// explicit-`Φ0` representation this means an initial state pinned a
    /// data vector other than the declared defaults.
    RestrictedInitialData {
        /// Offending location name.
        location: String,
    },
    /// The zero data state is not initial (clause 3: `(v, 0) ∈ Φ0`).
    ZeroNotInitial {
        /// Offending location name.
        location: String,
    },
}

impl fmt::Display for NotSimpleReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NotSimpleReason::InvariantsDiffer { a, b } => {
                write!(f, "invariants of `{a}` and `{b}` differ")
            }
            NotSimpleReason::RestrictedInitialData { location } => {
                write!(f, "initial data at `{location}` is restricted")
            }
            NotSimpleReason::ZeroNotInitial { location } => {
                write!(f, "zero data state not initial at `{location}`")
            }
        }
    }
}

/// Checks Definition 3 (simple hybrid automaton).
///
/// Clause 2 ("every data state in the invariant is initial") is interpreted
/// for our explicit representation as: initial states use the declared
/// default data (`data == None`), i.e. they do not pin a narrower set.
/// Clause 3 requires the zero vector to satisfy the (shared) invariant and
/// the declared defaults to be zero.
pub fn not_simple_reasons(a: &HybridAutomaton) -> Vec<NotSimpleReason> {
    let mut reasons = Vec::new();

    // Clause 1: all invariants structurally equal.
    for w in a.locations.windows(2) {
        if w[0].invariant != w[1].invariant {
            reasons.push(NotSimpleReason::InvariantsDiffer {
                a: w[0].name.clone(),
                b: w[1].name.clone(),
            });
        }
    }

    // Clause 2: initial data unrestricted.
    for init in &a.initial {
        if init.data.is_some() {
            reasons.push(NotSimpleReason::RestrictedInitialData {
                location: a.loc_name(init.loc).to_string(),
            });
        }
    }

    // Clause 3: zero data state initial — defaults are zero and satisfy the
    // invariant of each initial location.
    let zeros = vec![0.0; a.dimension()];
    for init in &a.initial {
        let defaults = a.initial_data(init);
        let zero_default = defaults.iter().all(|v| *v == 0.0);
        let inv_ok = a.locations[init.loc.0]
            .invariant
            .eval(&EvalCtx::new(&zeros));
        if !zero_default || !inv_ok {
            reasons.push(NotSimpleReason::ZeroNotInitial {
                location: a.loc_name(init.loc).to_string(),
            });
        }
    }

    reasons
}

/// `true` iff `a` is a simple hybrid automaton (Definition 3).
pub fn is_simple(a: &HybridAutomaton) -> bool {
    not_simple_reasons(a).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::{HybridAutomaton, VarKind};
    use crate::expr::Expr;
    use crate::pred::Pred;

    fn simple_vent(name: &str, var: &str, loc_prefix: &str, evt_prefix: &str) -> HybridAutomaton {
        let mut b = HybridAutomaton::builder(name);
        let h = b.var(var, VarKind::Continuous, 0.0);
        let inv = Pred::ge(Expr::var(h), Expr::c(0.0)).and(Pred::le(Expr::var(h), Expr::c(0.3)));
        let out = b.location(format!("{loc_prefix}Out"));
        let inn = b.location(format!("{loc_prefix}In"));
        b.invariant(out, inv.clone());
        b.invariant(inn, inv);
        b.flow(out, h, Expr::c(-0.1));
        b.flow(inn, h, Expr::c(0.1));
        b.edge(out, inn)
            .guard(Pred::le(Expr::var(h), Expr::c(0.0)))
            .urgent()
            .emit(format!("{evt_prefix}In"))
            .done();
        b.edge(inn, out)
            .guard(Pred::ge(Expr::var(h), Expr::c(0.3)))
            .urgent()
            .emit(format!("{evt_prefix}Out"))
            .done();
        b.initial(out, None);
        b.build().unwrap()
    }

    #[test]
    fn disjoint_automata_are_independent() {
        let a = simple_vent("v1", "H1", "P1", "e1");
        let b = simple_vent("v2", "H2", "P2", "e2");
        assert!(are_independent(&a, &b));
        assert!(mutually_independent(&[&a, &b]));
    }

    #[test]
    fn shared_variable_detected() {
        let a = simple_vent("v1", "H", "P1", "e1");
        let b = simple_vent("v2", "H", "P2", "e2");
        let reasons = dependence_reasons(&a, &b);
        assert!(reasons
            .iter()
            .any(|r| matches!(r, DependenceReason::SharedVariable(n) if n == "H")));
    }

    #[test]
    fn shared_location_detected() {
        let a = simple_vent("v1", "H1", "P", "e1");
        let b = simple_vent("v2", "H2", "P", "e2");
        let reasons = dependence_reasons(&a, &b);
        assert!(reasons
            .iter()
            .any(|r| matches!(r, DependenceReason::SharedLocation(_))));
    }

    #[test]
    fn shared_label_detected() {
        let a = simple_vent("v1", "H1", "P1", "e");
        let b = simple_vent("v2", "H2", "P2", "e");
        let reasons = dependence_reasons(&a, &b);
        assert!(reasons
            .iter()
            .any(|r| matches!(r, DependenceReason::SharedLabel(_))));
    }

    #[test]
    fn same_root_different_prefix_is_independent() {
        // `!l` in one automaton vs `??l` in another are different labels —
        // that is exactly how automata communicate.
        let mut b1 = HybridAutomaton::builder("sender");
        let s0 = b1.location("S0");
        let s1 = b1.location("S1");
        b1.edge(s0, s1).emit("l").done();
        b1.initial(s0, None);
        let sender = b1.build().unwrap();

        let mut b2 = HybridAutomaton::builder("receiver");
        let r0 = b2.location("R0");
        let r1 = b2.location("R1");
        b2.edge(r0, r1).on_lossy("l").done();
        b2.initial(r0, None);
        let receiver = b2.build().unwrap();

        assert!(are_independent(&sender, &receiver));
    }

    #[test]
    fn ventilator_is_simple() {
        let v = simple_vent("vent", "Hvent", "Pump", "evtV");
        assert!(is_simple(&v), "{:?}", not_simple_reasons(&v));
    }

    #[test]
    fn differing_invariants_not_simple() {
        let mut b = HybridAutomaton::builder("ns");
        let x = b.var("x", VarKind::Continuous, 0.0);
        let l0 = b.location("A");
        let l1 = b.location("B");
        b.invariant(l0, Pred::ge(Expr::var(x), Expr::c(0.0)));
        b.invariant(l1, Pred::le(Expr::var(x), Expr::c(1.0)));
        b.initial(l0, None);
        let a = b.build().unwrap();
        assert!(!is_simple(&a));
        assert!(matches!(
            not_simple_reasons(&a)[0],
            NotSimpleReason::InvariantsDiffer { .. }
        ));
    }

    #[test]
    fn pinned_initial_data_not_simple() {
        let mut b = HybridAutomaton::builder("pin");
        let _x = b.var("x", VarKind::Continuous, 0.0);
        let l0 = b.location("A");
        b.initial(l0, Some(vec![0.5]));
        let a = b.build().unwrap();
        assert!(not_simple_reasons(&a)
            .iter()
            .any(|r| matches!(r, NotSimpleReason::RestrictedInitialData { .. })));
    }

    #[test]
    fn nonzero_default_not_simple() {
        let mut b = HybridAutomaton::builder("nz");
        let _x = b.var("x", VarKind::Continuous, 0.7);
        let l0 = b.location("A");
        b.initial(l0, None);
        let a = b.build().unwrap();
        assert!(not_simple_reasons(&a)
            .iter()
            .any(|r| matches!(r, NotSimpleReason::ZeroNotInitial { .. })));
    }

    #[test]
    fn zero_violating_invariant_not_simple() {
        let mut b = HybridAutomaton::builder("zi");
        let x = b.var("x", VarKind::Continuous, 0.0);
        let l0 = b.location("A");
        b.invariant(l0, Pred::gt(Expr::var(x), Expr::c(0.5)));
        b.initial(l0, None);
        let a = b.build().unwrap();
        assert!(not_simple_reasons(&a)
            .iter()
            .any(|r| matches!(r, NotSimpleReason::ZeroNotInitial { .. })));
    }
}
