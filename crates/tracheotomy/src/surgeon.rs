//! The surgeon: exponential `Ton`/`Toff` timers (the paper's own
//! emulation of "human will", Section V *Emulation Setup*).
//!
//! * Whenever the laser scalpel enters **Fall-Back**, a timer
//!   `Ton ~ Exp(mean_on)` is armed; when it fires (and the laser is still
//!   in Fall-Back) the surgeon injects `cmd_request`. The timer is
//!   destroyed when the laser leaves Fall-Back.
//! * Whenever the laser is **emitting** (Risky Core), a timer
//!   `Toff ~ Exp(mean_off)` is armed; when it fires the surgeon injects
//!   `cmd_cancel`. The timer is destroyed when the laser leaves Risky
//!   Core.

use pte_hybrid::{Root, Time};
use pte_sim::driver::{Driver, SystemView};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The surgeon driver.
#[derive(Debug)]
pub struct Surgeon {
    /// Name of the laser automaton to watch.
    laser_name: String,
    /// Mean of `Ton` (time from idle to the next request).
    pub mean_on: Time,
    /// Mean of `Toff` (emission time until the surgeon cancels); `None`
    /// models the "surgeon forgets to cancel" scenario.
    pub mean_off: Option<Time>,
    rng: StdRng,
    laser_idx: Option<usize>,
    prev_location: Option<String>,
    on_timer: Option<Time>,
    off_timer: Option<Time>,
    /// Count of requests issued.
    pub requests: u64,
    /// Count of cancels issued.
    pub cancels: u64,
}

impl Surgeon {
    /// Creates a surgeon for the laser automaton with the given timer
    /// means and RNG seed.
    pub fn new(
        laser_name: impl Into<String>,
        mean_on: Time,
        mean_off: Option<Time>,
        seed: u64,
    ) -> Surgeon {
        Surgeon {
            laser_name: laser_name.into(),
            mean_on,
            mean_off,
            rng: StdRng::seed_from_u64(seed),
            laser_idx: None,
            prev_location: None,
            on_timer: None,
            off_timer: None,
            requests: 0,
            cancels: 0,
        }
    }

    fn sample_exp(&mut self, mean: Time) -> Time {
        let u: f64 = self.rng.random();
        Time::seconds(-mean.as_secs_f64() * (1.0 - u).ln())
    }
}

impl Driver for Surgeon {
    fn poll(&mut self, view: &SystemView<'_>, out: &mut Vec<Root>) {
        let idx = match self.laser_idx {
            Some(i) => i,
            None => {
                let Some(i) = view.index_of(&self.laser_name) else {
                    return;
                };
                self.laser_idx = Some(i);
                i
            }
        };
        let loc = view.location_name(idx).to_string();
        let now = view.now();

        // Location-change bookkeeping: arm/destroy timers.
        if self.prev_location.as_deref() != Some(loc.as_str()) {
            if loc == "Fall-Back" {
                let ton = self.sample_exp(self.mean_on);
                self.on_timer = Some(now + ton);
            } else {
                self.on_timer = None;
            }
            if loc == "Risky Core" {
                if let Some(mean_off) = self.mean_off {
                    let toff = self.sample_exp(mean_off);
                    self.off_timer = Some(now + toff);
                }
            } else {
                self.off_timer = None;
            }
            self.prev_location = Some(loc.clone());
        }

        if let Some(t) = self.on_timer {
            if now >= t && loc == "Fall-Back" {
                out.push(Root::new("cmd_request"));
                self.requests += 1;
                self.on_timer = None;
            }
        }
        if let Some(t) = self.off_timer {
            if now >= t && loc == "Risky Core" {
                out.push(Root::new("cmd_cancel"));
                self.cancels += 1;
                self.off_timer = None;
            }
        }
    }

    fn name(&self) -> &str {
        "surgeon"
    }

    fn next_wakeup(&self, _now: Time) -> Option<Time> {
        match (self.on_timer, self.off_timer) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (Some(a), None) => Some(a),
            (None, Some(b)) => Some(b),
            (None, None) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pte_core::pattern::LeaseConfig;
    use pte_sim::executor::{Executor, ExecutorConfig};

    #[test]
    fn surgeon_requests_repeatedly() {
        // Laser alone (no supervisor): each request times out after
        // T_req = 5 s and the laser falls back, so the surgeon keeps
        // requesting.
        let laser = crate::laser::laser_scalpel(&LeaseConfig::case_study()).unwrap();
        let mut exec = Executor::new(vec![laser], ExecutorConfig::default()).unwrap();
        exec.add_driver(Box::new(Surgeon::new(
            "laser-scalpel",
            Time::seconds(10.0),
            Some(Time::seconds(18.0)),
            7,
        )));
        let trace = exec.run_until(Time::seconds(300.0)).unwrap();
        let reqs = trace.events_with_root("evt_xi2_to_xi0_req").len();
        // ~300 / (10 + 5) = 20 expected; allow a broad band.
        assert!(reqs >= 8, "requests {reqs}");
        assert!(reqs <= 40, "requests {reqs}");
    }

    #[test]
    fn surgeon_cancels_emission() {
        // Feed the laser an approval so it actually emits; the surgeon
        // must eventually cancel (mean_off = 2 s << lease).
        use pte_hybrid::{Expr, Pred};
        let mut b = pte_hybrid::HybridAutomaton::builder("approver");
        let c = b.clock("c");
        let s0 = b.location("S0");
        let s1 = b.location("S1");
        b.also_invariant(s0, Pred::le(Expr::var(c), Expr::c(0.5)));
        b.edge(s0, s1)
            .on_lossy("evt_xi2_to_xi0_req")
            .emit("evt_xi0_to_xi2_approve")
            .done();
        // Timeout alternative: give up silently.
        b.edge(s0, s1)
            .guard(Pred::ge(Expr::var(c), Expr::c(0.5)))
            .urgent()
            .done();
        b.initial(s0, None);
        let approver = b.build().unwrap();

        let laser = crate::laser::laser_scalpel(&LeaseConfig::case_study()).unwrap();
        let mut exec = Executor::new(vec![laser, approver], ExecutorConfig::default()).unwrap();
        exec.add_driver(Box::new(Surgeon::new(
            "laser-scalpel",
            Time::seconds(0.2),
            Some(Time::seconds(2.0)),
            11,
        )));
        let trace = exec.run_until(Time::seconds(60.0)).unwrap();
        let risky = trace.risky_intervals(0);
        assert!(!risky.is_empty(), "laser emitted");
        // Cancelled well before the 20 s lease (2 s mean + 1.5 s exit).
        assert!(risky[0].duration() < Time::seconds(15.0));
        assert!(!trace.events_with_root("evt_xi2_to_xi0_cancel").is_empty());
    }

    #[test]
    fn forgetful_surgeon_never_cancels() {
        let laser = crate::laser::laser_scalpel(&LeaseConfig::case_study()).unwrap();
        let mut exec = Executor::new(vec![laser], ExecutorConfig::default()).unwrap();
        exec.add_driver(Box::new(Surgeon::new(
            "laser-scalpel",
            Time::seconds(5.0),
            None,
            3,
        )));
        let trace = exec.run_until(Time::seconds(100.0)).unwrap();
        assert!(trace.events_with_root("evt_xi2_to_xi0_cancel").is_empty());
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed: u64| {
            let laser = crate::laser::laser_scalpel(&LeaseConfig::case_study()).unwrap();
            let mut exec = Executor::new(vec![laser], ExecutorConfig::default()).unwrap();
            exec.add_driver(Box::new(Surgeon::new(
                "laser-scalpel",
                Time::seconds(10.0),
                Some(Time::seconds(18.0)),
                seed,
            )));
            let trace = exec.run_until(Time::seconds(120.0)).unwrap();
            trace.events_with_root("evt_xi2_to_xi0_req").len()
        };
        assert_eq!(run(42), run(42));
    }
}
