//! The patient: a blood-oxygen (SpO2) physiological model.
//!
//! Substitutes the paper's human subject + Nonin 9843 oximeter (see
//! DESIGN.md). The model couples to the rest of the system exactly the
//! way the emulation did:
//!
//! * it *breathes with the ventilator*: each `evtVPumpIn`/`evtVPumpOut`
//!   broadcast by the ventilator plant resets a breath watchdog; if no
//!   pump event arrives within [`BREATH_WINDOW`] seconds the patient is
//!   holding breath and SpO2 decays;
//! * it *is wired to the supervisor*: crossing below
//!   [`crate::supervisor::SPO2_THRESHOLD`] emits the reliable
//!   `env_approval_bad`, and recovery above the hysteresis level
//!   [`RECOVERY_LEVEL`] emits `env_approval_ok` — the events the
//!   supervisor's `ApprovalCondition` consumes.
//!
//! Dynamics (first-order, rates from pulse-oximetry literature for a
//! healthy adult under brief apnea):
//!
//! * ventilated: `dSpO2/dt = K_RISE · (SPO2_CEILING − SpO2)`;
//! * breath-hold: `dSpO2/dt = −DESAT_RATE` (0.12 %/s — SpO2 stays above
//!   92 % for typical lease-bounded pauses, but crosses it on pathological
//!   ones, which is what arms the supervisor's abort path).

use pte_hybrid::automaton::VarKind;
use pte_hybrid::{Expr, HybridAutomaton, Pred};

/// Seconds without a pump event after which the patient desaturates.
pub const BREATH_WINDOW: f64 = 4.0;
/// Desaturation rate while holding breath (%/s).
pub const DESAT_RATE: f64 = 0.12;
/// Resaturation gain while ventilated (1/s toward the ceiling).
pub const K_RISE: f64 = 0.08;
/// Saturation ceiling (%).
pub const SPO2_CEILING: f64 = 98.5;
/// Initial SpO2 (%).
pub const SPO2_INITIAL: f64 = 97.0;
/// Hysteresis recovery level (%): `env_approval_ok` fires here.
pub const RECOVERY_LEVEL: f64 = 94.0;
/// Physiological floor (%): desaturation asymptotes here.
pub const SPO2_FLOOR: f64 = 60.0;
/// Maximum breath-hold (s): the emulation's *human subject* breathes with
/// the ventilator display up to a tolerable limit, then resumes breathing
/// on their own no matter what the display shows (the 60 s safety rule is
/// *judged* by the monitor; the subject's physical limit sits above it so
/// a violation is observable before the subject rescues themself).
/// Measured from the last pump event.
pub const HOLD_LIMIT: f64 = 75.0;

/// Builds the patient automaton.
///
/// Locations: `BreathingHigh` (ventilated, SpO2 adequate), `DesatHigh`
/// (holding breath, still above threshold), `DesatLow` / `BreathingLow`
/// (below threshold — supervisor alarm raised until recovery), and
/// `SelfBreathHigh` / `SelfBreathLow` (the human subject exceeded
/// [`HOLD_LIMIT`] and resumed breathing on their own, as the emulation's
/// human subject would).
pub fn patient(threshold: f64) -> HybridAutomaton {
    let mut b = HybridAutomaton::builder("patient");
    let spo2 = b.var("SpO2", VarKind::Continuous, SPO2_INITIAL);
    let breath = b.clock("breath");

    let breathing_high = b.location("BreathingHigh");
    let desat_high = b.location("DesatHigh");
    let desat_low = b.location("DesatLow");
    let breathing_low = b.location("BreathingLow");
    let self_breath_high = b.location("SelfBreathHigh");
    let self_breath_low = b.location("SelfBreathLow");

    let rise = Expr::c(K_RISE) * (Expr::c(SPO2_CEILING) - Expr::var(spo2));
    let fall = Expr::c(-DESAT_RATE);

    // Flows. DesatLow's decay is floored so SpO2 asymptotes to
    // SPO2_FLOOR instead of falling without bound during pathological
    // (no-lease) pauses: max(-rate, FLOOR - SpO2) → -rate while well above
    // the floor, → 0 at the floor.
    b.flow(breathing_high, spo2, rise.clone());
    b.flow(breathing_low, spo2, rise.clone());
    b.flow(self_breath_high, spo2, rise.clone());
    b.flow(self_breath_low, spo2, rise);
    b.flow(desat_high, spo2, fall.clone());
    b.flow(
        desat_low,
        spo2,
        fall.max(Expr::c(SPO2_FLOOR) - Expr::var(spo2)),
    );

    // Breath watchdog: ventilated locations must see a pump event within
    // the window.
    b.invariant(
        breathing_high,
        Pred::le(Expr::var(breath), Expr::c(BREATH_WINDOW)),
    );
    b.invariant(
        breathing_low,
        Pred::le(Expr::var(breath), Expr::c(BREATH_WINDOW)),
    );
    // Alarm boundaries and the breath-hold limit.
    b.also_invariant(
        desat_high,
        Pred::ge(Expr::var(spo2), Expr::c(threshold))
            .and(Pred::le(Expr::var(breath), Expr::c(HOLD_LIMIT))),
    );
    b.also_invariant(desat_low, Pred::le(Expr::var(breath), Expr::c(HOLD_LIMIT)));
    b.also_invariant(
        breathing_low,
        Pred::le(Expr::var(spo2), Expr::c(RECOVERY_LEVEL)),
    );
    b.also_invariant(
        self_breath_low,
        Pred::le(Expr::var(spo2), Expr::c(RECOVERY_LEVEL)),
    );

    // Pump events reset the watchdog (ventilation alive).
    for loc in [breathing_high, breathing_low] {
        for root in ["evtVPumpIn", "evtVPumpOut"] {
            b.edge(loc, loc).on(root).reset_clock(breath).done();
        }
    }
    // Pump events while desaturating or self-breathing: machine breathing
    // resumes.
    for (from, to) in [
        (desat_high, breathing_high),
        (desat_low, breathing_low),
        (self_breath_high, breathing_high),
        (self_breath_low, breathing_low),
    ] {
        for root in ["evtVPumpIn", "evtVPumpOut"] {
            b.edge(from, to).on(root).reset_clock(breath).done();
        }
    }

    // Watchdog expiry: holding breath.
    b.edge(breathing_high, desat_high)
        .guard(Pred::ge(Expr::var(breath), Expr::c(BREATH_WINDOW)))
        .urgent()
        .done();
    b.edge(breathing_low, desat_low)
        .guard(Pred::ge(Expr::var(breath), Expr::c(BREATH_WINDOW)))
        .urgent()
        .done();

    // Threshold crossing: alarm.
    b.edge(desat_high, desat_low)
        .guard(Pred::le(Expr::var(spo2), Expr::c(threshold)))
        .urgent()
        .emit("env_approval_bad")
        .done();
    // Recovery with hysteresis: all-clear (whether machine- or
    // self-ventilated).
    b.edge(breathing_low, breathing_high)
        .guard(Pred::ge(Expr::var(spo2), Expr::c(RECOVERY_LEVEL)))
        .urgent()
        .emit("env_approval_ok")
        .done();
    b.edge(self_breath_low, self_breath_high)
        .guard(Pred::ge(Expr::var(spo2), Expr::c(RECOVERY_LEVEL)))
        .urgent()
        .emit("env_approval_ok")
        .done();

    // The human subject gives up the hold at the safe limit and breathes
    // unassisted.
    b.edge(desat_high, self_breath_high)
        .guard(Pred::ge(Expr::var(breath), Expr::c(HOLD_LIMIT)))
        .urgent()
        .done();
    b.edge(desat_low, self_breath_low)
        .guard(Pred::ge(Expr::var(breath), Expr::c(HOLD_LIMIT)))
        .urgent()
        .done();

    b.initial(breathing_high, None);
    b.build().expect("patient model is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pte_hybrid::validate::validate;
    use pte_hybrid::Time;
    use pte_sim::executor::{Executor, ExecutorConfig};

    /// A fake ventilator plant that pumps until `pause_at`, then stops
    /// forever (simulating an unbounded pause).
    fn pump_until(pause_at: f64, period: f64) -> HybridAutomaton {
        let mut b = HybridAutomaton::builder("pump");
        let c = b.clock("c");
        let t = b.clock("t"); // global time, never reset
        let on = b.location("On");
        let off = b.location("Off");
        b.invariant(
            on,
            Pred::le(Expr::var(c), Expr::c(period)).and(Pred::le(Expr::var(t), Expr::c(pause_at))),
        );
        b.edge(on, on)
            .guard(Pred::ge(Expr::var(c), Expr::c(period)))
            .urgent()
            .reset_clock(c)
            .emit("evtVPumpIn")
            .done();
        b.edge(on, off)
            .guard(Pred::ge(Expr::var(t), Expr::c(pause_at)))
            .urgent()
            .done();
        b.initial(on, None);
        b.build().unwrap()
    }

    #[test]
    fn model_validates() {
        let p = patient(92.0);
        let report = validate(&p);
        assert!(report.is_clean(), "{report}");
        assert_eq!(p.locations.len(), 6);
    }

    #[test]
    fn ventilated_patient_stays_saturated() {
        let cfg = ExecutorConfig {
            sample_interval: Some(Time::seconds(1.0)),
            ..Default::default()
        };
        let exec = Executor::new(vec![patient(92.0), pump_until(1e6, 3.0)], cfg).unwrap();
        let trace = exec.run_until(Time::seconds(120.0)).unwrap();
        assert!(trace.events_with_root("env_approval_bad").is_empty());
        let series = trace.series(0, "SpO2");
        for (_, v) in &series {
            assert!(*v >= 92.0, "SpO2 {v} stayed above threshold");
        }
        // Rises toward the ceiling.
        assert!(series.last().unwrap().1 > 97.5);
    }

    #[test]
    fn long_pause_triggers_alarm_and_recovery() {
        // Pump stops at t=10. SpO2 decays from ~98 at 0.12 %/s; crossing
        // 92 happens ≈ (98-92)/0.12 ≈ 50 s after the watchdog fires.
        let cfg = ExecutorConfig {
            sample_interval: Some(Time::seconds(1.0)),
            ..Default::default()
        };
        let exec = Executor::new(vec![patient(92.0), pump_until(10.0, 3.0)], cfg).unwrap();
        let trace = exec.run_until(Time::seconds(120.0)).unwrap();
        let bad = trace.events_with_root("env_approval_bad");
        assert_eq!(bad.len(), 1, "alarm raised exactly once");
        let t_bad = bad[0].time();
        assert!(
            t_bad > Time::seconds(55.0) && t_bad < Time::seconds(85.0),
            "alarm at {t_bad}"
        );
        // The pump never resumes, but the human subject gives up the hold
        // at HOLD_LIMIT and self-recovers: exactly one all-clear, after
        // the alarm.
        let oks = trace.events_with_root("env_approval_ok");
        assert_eq!(oks.len(), 1, "self-breathing recovery announced once");
        assert!(oks[0].time() > t_bad);
        assert!(
            oks[0].time() > Time::seconds(HOLD_LIMIT),
            "recovery only after the hold limit"
        );
    }

    #[test]
    fn short_pause_stays_quiet() {
        // The lease-bounded worst case: 41 s pause from full saturation
        // drops ~6 % — stays above 92 %.
        let mut b = HybridAutomaton::builder("pump");
        let c = b.clock("c");
        let t = b.clock("t");
        let on = b.location("On");
        let paused = b.location("Paused");
        let resumed = b.location("Resumed");
        b.invariant(
            on,
            Pred::le(Expr::var(c), Expr::c(3.0)).and(Pred::le(Expr::var(t), Expr::c(60.0))),
        );
        b.edge(on, on)
            .guard(Pred::ge(Expr::var(c), Expr::c(3.0)))
            .urgent()
            .reset_clock(c)
            .emit("evtVPumpIn")
            .done();
        b.edge(on, paused)
            .guard(Pred::ge(Expr::var(t), Expr::c(60.0)))
            .urgent()
            .done();
        b.invariant(paused, Pred::le(Expr::var(t), Expr::c(101.0)));
        b.edge(paused, resumed)
            .guard(Pred::ge(Expr::var(t), Expr::c(101.0)))
            .urgent()
            .reset_clock(c)
            .emit("evtVPumpIn")
            .done();
        b.invariant(resumed, Pred::le(Expr::var(c), Expr::c(3.0)));
        b.edge(resumed, resumed)
            .guard(Pred::ge(Expr::var(c), Expr::c(3.0)))
            .urgent()
            .reset_clock(c)
            .emit("evtVPumpIn")
            .done();
        b.initial(on, None);
        let pump = b.build().unwrap();

        let exec = Executor::new(vec![patient(92.0), pump], ExecutorConfig::default()).unwrap();
        let trace = exec.run_until(Time::seconds(160.0)).unwrap();
        assert!(
            trace.events_with_root("env_approval_bad").is_empty(),
            "a 41 s pause must not cross the threshold"
        );
    }

    #[test]
    fn recovery_emits_ok_with_hysteresis() {
        // Pause at t=10 for 70 s (long enough to alarm), then resume.
        let mut b = HybridAutomaton::builder("pump");
        let c = b.clock("c");
        let t = b.clock("t");
        let on = b.location("On");
        let paused = b.location("Paused");
        let resumed = b.location("Resumed");
        b.invariant(
            on,
            Pred::le(Expr::var(c), Expr::c(3.0)).and(Pred::le(Expr::var(t), Expr::c(10.0))),
        );
        b.edge(on, on)
            .guard(Pred::ge(Expr::var(c), Expr::c(3.0)))
            .urgent()
            .reset_clock(c)
            .emit("evtVPumpIn")
            .done();
        b.edge(on, paused)
            .guard(Pred::ge(Expr::var(t), Expr::c(10.0)))
            .urgent()
            .done();
        b.invariant(paused, Pred::le(Expr::var(t), Expr::c(110.0)));
        b.edge(paused, resumed)
            .guard(Pred::ge(Expr::var(t), Expr::c(110.0)))
            .urgent()
            .reset_clock(c)
            .emit("evtVPumpIn")
            .done();
        b.invariant(resumed, Pred::le(Expr::var(c), Expr::c(3.0)));
        b.edge(resumed, resumed)
            .guard(Pred::ge(Expr::var(c), Expr::c(3.0)))
            .urgent()
            .reset_clock(c)
            .emit("evtVPumpIn")
            .done();
        b.initial(on, None);
        let pump = b.build().unwrap();

        let exec = Executor::new(vec![patient(92.0), pump], ExecutorConfig::default()).unwrap();
        let trace = exec.run_until(Time::seconds(300.0)).unwrap();
        assert_eq!(trace.events_with_root("env_approval_bad").len(), 1);
        let oks = trace.events_with_root("env_approval_ok");
        assert_eq!(oks.len(), 1, "recovery announced once (hysteresis)");
        let t_bad = trace.events_with_root("env_approval_bad")[0].time();
        assert!(oks[0].time() > t_bad);
    }
}
