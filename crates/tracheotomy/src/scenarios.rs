//! The three failure narratives of Section V, as runnable scenarios.
//!
//! 1. **Forgetful surgeon** — `Toff` is effectively infinite; only the
//!    lease (or, when unlucky with packets, nothing) stops the laser.
//! 2. **Lost cancel** — the surgeon cancels, the laser stops locally, but
//!    the `evtξ2Toξ0Cancel` uplink report is lost; without a lease the
//!    ventilator keeps pausing far too long.
//! 3. **Misconfiguration** — `T^max_enter,2 = T^max_enter,1` violates
//!    condition c5: the laser can start emitting without the required 3 s
//!    enter-risky safeguard after the ventilator's pause.

use crate::emulation::{build_case_study, emulation_spec, score_trace, TrialResult};
use pte_core::monitor::check_pte;
use pte_core::pattern::{check_conditions, ConditionReport, LeaseConfig};
use pte_hybrid::{Root, Time};
use pte_sim::driver::ScriptedDriver;
use pte_sim::executor::{ExecError, Executor, ExecutorConfig};
use pte_sim::network::{Channel, Delivery, DropReason, Message, NetworkBridge};

/// Outcome of a scenario run (both arms where applicable).
#[derive(Clone, Debug)]
pub struct ScenarioOutcome {
    /// Human-readable scenario name.
    pub name: String,
    /// Result with leases armed.
    pub with_lease: TrialResult,
    /// Result without leases (None for the misconfiguration scenario,
    /// which is about c5, not about leases).
    pub without_lease: Option<TrialResult>,
}

/// A channel that drops every message whose root matches a predicate and
/// delivers everything else instantly.
struct SelectiveDrop {
    match_prefixes: Vec<String>,
}

impl Channel for SelectiveDrop {
    fn transmit(&mut self, msg: &Message, now: Time) -> Delivery {
        if self
            .match_prefixes
            .iter()
            .any(|p| msg.root.as_str().starts_with(p.as_str()))
        {
            Delivery::Dropped {
                reason: DropReason::Scripted,
            }
        } else {
            Delivery::Delivered { at: now }
        }
    }

    fn describe(&self) -> String {
        format!("drop({:?})", self.match_prefixes)
    }
}

fn run_scenario(
    cfg: &LeaseConfig,
    leased: bool,
    bridge: NetworkBridge,
    surgeon_script: Vec<(f64, &str)>,
    duration: f64,
) -> Result<TrialResult, ExecError> {
    let automata = build_case_study(cfg, leased).expect("case study builds");
    let mut exec = Executor::new(automata, ExecutorConfig::default())?;
    exec.set_bridge(bridge);
    exec.add_driver(Box::new(ScriptedDriver::new(
        "surgeon",
        surgeon_script
            .into_iter()
            .map(|(t, r)| (Time::seconds(t), Root::new(r)))
            .collect(),
    )));
    let trace = exec.run_until(Time::seconds(duration))?;
    Ok(score_trace(&trace))
}

/// Scenario 1: the surgeon requests at `t = 14 s` and never cancels
/// (`Toff → 1 hour` in the paper's telling), and the abort/cancel
/// downlink to the laser is disrupted — the paper's point that stopping
/// the laser then "requires a sequence of correct send/receive of events
/// through wireless" and losing any of them violates PTE.
///
/// With the lease, the laser stops itself at `T^max_run,2 = 20 s`;
/// without it, nothing ever stops the emission.
pub fn forgetful_surgeon() -> Result<ScenarioOutcome, ExecError> {
    let cfg = LeaseConfig::case_study();
    let script = vec![(14.0, "cmd_request")];
    let make_bridge = || {
        let mut bridge = NetworkBridge::perfect();
        // Downlink to the laser (automaton 2): stop commands lost.
        bridge.set_link(
            0,
            2,
            Box::new(SelectiveDrop {
                match_prefixes: vec![
                    "evt_xi0_to_xi2_abort".to_string(),
                    "evt_xi0_to_xi2_cancel".to_string(),
                ],
            }),
        );
        bridge
    };
    let with_lease = run_scenario(&cfg, true, make_bridge(), script.clone(), 240.0)?;
    let without_lease = run_scenario(&cfg, false, make_bridge(), script, 240.0)?;
    Ok(ScenarioOutcome {
        name: "forgetful surgeon (Toff -> 1h) with laser stop commands lost".to_string(),
        with_lease,
        without_lease: Some(without_lease),
    })
}

/// Scenario 2: the surgeon cancels mid-emission — the laser stops locally
/// — but the `evtξ2Toξ0Cancel`/`Exit` uplink reports are lost *and* the
/// ventilator's own stop commands on its downlink are lost (the event
/// chain the paper enumerates: `evtξ0Toξ2Abort` → `evtξ2Toξ0Exit` →
/// `evtξ0Toξ1Abort`, any loss breaks it). With the lease, the ventilator
/// resumes within `T^max_run,1 = 35 s` regardless; without it, "no one
/// can terminate the ventilator's pause".
pub fn lost_cancel() -> Result<ScenarioOutcome, ExecError> {
    let cfg = LeaseConfig::case_study();
    // The laser enters Risky Core at 14 + T_enter,2 = 24 s with perfect
    // grant messages; the cancel at 40 s is safely inside the emission.
    let script = vec![(14.0, "cmd_request"), (40.0, "cmd_cancel")];
    let make_bridge = || {
        let mut bridge = NetworkBridge::perfect();
        // Laser uplink reports lost.
        bridge.set_link(
            2,
            0,
            Box::new(SelectiveDrop {
                match_prefixes: vec![
                    "evt_xi2_to_xi0_cancel".to_string(),
                    "evt_xi2_to_xi0_exit".to_string(),
                ],
            }),
        );
        // Ventilator downlink stop commands lost.
        bridge.set_link(
            0,
            1,
            Box::new(SelectiveDrop {
                match_prefixes: vec![
                    "evt_xi0_to_xi1_cancel".to_string(),
                    "evt_xi0_to_xi1_abort".to_string(),
                ],
            }),
        );
        bridge
    };
    let with_lease = run_scenario(&cfg, true, make_bridge(), script.clone(), 300.0)?;
    let without_lease = run_scenario(&cfg, false, make_bridge(), script, 300.0)?;
    Ok(ScenarioOutcome {
        name: "cancel/exit reports and ventilator stop commands lost".to_string(),
        with_lease,
        without_lease: Some(without_lease),
    })
}

/// Scenario 3: misconfiguration — `T^max_enter,2 := T^max_enter,1`
/// violates condition c5. Returns both the (failing) condition report and
/// the observed PTE violation on a perfect-link run.
pub fn misconfigured_c5() -> Result<(ConditionReport, TrialResult), ExecError> {
    let mut cfg = LeaseConfig::case_study();
    cfg.t_enter[1] = cfg.t_enter[0]; // 3 s = 3 s: c5 violated (3 + 3 > 3)
    let conditions = check_conditions(&cfg);

    let automata = build_case_study(&cfg, true).expect("case study builds");
    let mut exec = Executor::new(automata, ExecutorConfig::default())?;
    exec.add_driver(Box::new(ScriptedDriver::new(
        "surgeon",
        vec![(Time::seconds(14.0), Root::new("cmd_request"))],
    )));
    let trace = exec.run_until(Time::seconds(120.0))?;
    let spec = emulation_spec();
    let report = check_pte(&trace, &spec);
    let laser_idx = trace.index_of("laser-scalpel").unwrap();
    let result = TrialResult {
        emissions: trace.risky_intervals(laser_idx).len(),
        failures: report.failure_count(),
        evt_to_stop: trace.events_with_root("evt_to_stop_xi2").len(),
        vent_lease_stops: trace.events_with_root("evt_to_stop_xi1").len(),
        packets_dropped: trace.drop_count() as u64,
        packets_sent: 0,
        report,
    };
    Ok((conditions, result))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pte_core::monitor::Violation;

    #[test]
    fn scenario1_lease_rescues_forgetful_surgeon() {
        let out = forgetful_surgeon().unwrap();
        // With lease: one emission, stopped by the lease, no failures.
        assert_eq!(out.with_lease.failures, 0, "{}", out.with_lease.report);
        assert_eq!(out.with_lease.emissions, 1);
        assert_eq!(out.with_lease.evt_to_stop, 1, "lease stopped the laser");
        // Without lease: dwelling bound violations (laser emits > 60 s,
        // ventilator pauses > 60 s).
        let wo = out.without_lease.unwrap();
        assert!(wo.failures > 0, "{}", wo.report);
        assert!(wo
            .report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::Rule1 { .. })));
    }

    #[test]
    fn scenario2_lease_rescues_lost_cancel() {
        let out = lost_cancel().unwrap();
        // With lease: the ventilator resumes via its own lease; safe.
        assert_eq!(out.with_lease.failures, 0, "{}", out.with_lease.report);
        assert!(
            out.with_lease.vent_lease_stops >= 1,
            "ventilator lease did the rescue"
        );
        // Without lease: ventilator pauses past the 1 minute bound.
        let wo = out.without_lease.unwrap();
        assert!(wo.failures > 0, "{}", wo.report);
        let vent_rule1 = wo
            .report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::Rule1 { entity, .. } if entity == "ventilator"));
        assert!(vent_rule1, "{}", wo.report);
    }

    #[test]
    fn scenario3_c5_violation_breaks_enter_safeguard() {
        let (conditions, result) = misconfigured_c5().unwrap();
        assert!(!conditions.is_satisfied());
        assert!(conditions
            .violations()
            .iter()
            .any(|c| matches!(c.condition, pte_core::pattern::Condition::C5)));
        // The run violates the enter-risky safeguard.
        assert!(result.failures > 0, "{}", result.report);
        assert!(
            result
                .report
                .violations
                .iter()
                .any(|v| matches!(v, Violation::EnterMargin { .. })),
            "{}",
            result.report
        );
    }
}
