//! The ventilator: `A′vent` (Fig. 2) and its elaboration into the
//! Participant pattern (Section V's "revise the ventilator design by
//! elaborating `A_ptcpnt,1` at Fall-Back with `A′vent`").

use pte_core::pattern::{build_participant, LeaseConfig};
use pte_hybrid::automaton::VarKind;
use pte_hybrid::elaboration::elaborate_parallel;
use pte_hybrid::{BuildError, Expr, HybridAutomaton, Pred};

/// Builds the stand-alone ventilator `A′vent` of Fig. 2.
///
/// One continuous variable `Hvent(t)` (cylinder height, metres) moving
/// between 0 and 0.3 m at ±0.1 m/s; the turnaround transitions broadcast
/// `evtVPumpIn` / `evtVPumpOut`, which the patient model listens to.
///
/// `A′vent` is a *simple hybrid automaton* (Definition 3): both locations
/// share the invariant `0 ≤ Hvent ≤ 0.3` and the initial data state is the
/// zero vector (cylinder at the bottom).
pub fn standalone_ventilator() -> HybridAutomaton {
    let mut b = HybridAutomaton::builder("vent-plant");
    let h = b.var("Hvent", VarKind::Continuous, 0.0);
    let inv = Pred::ge(Expr::var(h), Expr::c(0.0)).and(Pred::le(Expr::var(h), Expr::c(0.3)));
    let pump_out = b.location("PumpOut");
    let pump_in = b.location("PumpIn");
    b.invariant(pump_out, inv.clone());
    b.invariant(pump_in, inv);
    b.flow(pump_out, h, Expr::c(-0.1));
    b.flow(pump_in, h, Expr::c(0.1));
    b.edge(pump_out, pump_in)
        .guard(Pred::le(Expr::var(h), Expr::c(0.0)))
        .urgent()
        .emit("evtVPumpIn")
        .done();
    b.edge(pump_in, pump_out)
        .guard(Pred::ge(Expr::var(h), Expr::c(0.3)))
        .urgent()
        .emit("evtVPumpOut")
        .done();
    b.initial(pump_out, None);
    b.build().expect("A'vent is well-formed")
}

/// Builds the case-study ventilator: the Participant `ξ1` pattern
/// automaton elaborated at Fall-Back with [`standalone_ventilator`].
///
/// The resulting automaton pumps (and broadcasts pump events) while in
/// Fall-Back; everywhere else the cylinder is frozen — i.e. the ventilator
/// pauses through Entering, Risky Core and Exiting, and its **risky**
/// locations (Risky Core, Exiting 1) carry the lease guarantee of
/// Theorem 2.
pub fn ventilator(cfg: &LeaseConfig) -> Result<HybridAutomaton, BuildError> {
    let pattern = build_participant(cfg, 1, Pred::True)?;
    let plant = standalone_ventilator();
    let elaborated = elaborate_parallel(&pattern, &[("Fall-Back", &plant)])
        .expect("pattern and A'vent are independent, A'vent is simple");
    let mut automaton = elaborated.automaton;
    automaton.name = "ventilator".to_string();
    Ok(automaton)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pte_hybrid::independence::{are_independent, is_simple};
    use pte_hybrid::validate::validate;
    use pte_hybrid::Time;
    use pte_sim::executor::{Executor, ExecutorConfig};

    fn stimulus(events: Vec<(f64, String)>) -> HybridAutomaton {
        let mut b = HybridAutomaton::builder("stimulus");
        let c = b.clock("c");
        let mut prev = b.location("S0");
        b.initial(prev, None);
        for (k, (t, root)) in events.iter().enumerate() {
            let next = b.location(format!("S{}", k + 1));
            b.also_invariant(prev, Pred::le(Expr::var(c), Expr::c(*t)));
            b.edge(prev, next)
                .guard(Pred::ge(Expr::var(c), Expr::c(*t)))
                .urgent()
                .emit(root.clone())
                .done();
            prev = next;
        }
        b.build().unwrap()
    }

    #[test]
    fn plant_is_simple_and_independent_of_pattern() {
        let plant = standalone_ventilator();
        assert!(is_simple(&plant));
        let pattern = build_participant(&LeaseConfig::case_study(), 1, Pred::True).unwrap();
        assert!(are_independent(&pattern, &plant));
    }

    #[test]
    fn plant_triangle_wave() {
        let exec = Executor::new(vec![standalone_ventilator()], ExecutorConfig::default()).unwrap();
        let trace = exec.run_until(Time::seconds(12.0)).unwrap();
        // Starts at H=0 (PumpOut with guard satisfied): flips to PumpIn at
        // t=0, tops out at t=3, bottom at 6, ... 4 transitions by t=12.
        assert!(trace.transition_count(0) >= 4);
        let ins = trace.events_with_root("evtVPumpIn");
        let outs = trace.events_with_root("evtVPumpOut");
        assert!(!ins.is_empty() && !outs.is_empty());
    }

    #[test]
    fn elaborated_ventilator_structure() {
        let v = ventilator(&LeaseConfig::case_study()).unwrap();
        assert_eq!(v.name, "ventilator");
        // Fall-Back replaced by PumpOut/PumpIn; 5 pattern locations remain.
        assert!(v.loc_by_name("Fall-Back").is_none());
        assert!(v.loc_by_name("PumpOut").is_some());
        assert!(v.loc_by_name("PumpIn").is_some());
        assert!(v.loc_by_name("Risky Core").is_some());
        assert_eq!(v.locations.len(), 7);
        assert_eq!(v.dimension(), 2, "clock + Hvent");
        // Risky partition preserved by elaboration.
        assert!(v.is_risky(v.loc_by_name("Risky Core").unwrap()));
        assert!(!v.is_risky(v.loc_by_name("PumpOut").unwrap()));
        let report = validate(&v);
        for f in &report.findings {
            // The dead deny edge (participation condition is `true`) is
            // the only acceptable finding.
            assert!(format!("{f}").contains("guard"), "{f}");
        }
    }

    #[test]
    fn ventilator_pumps_in_fall_back_and_pauses_when_leased() {
        let v = ventilator(&LeaseConfig::case_study()).unwrap();
        let stim = stimulus(vec![(7.0, "evt_xi0_to_xi1_lease_req".to_string())]);
        let cfg = ExecutorConfig {
            sample_interval: Some(Time::seconds(0.25)),
            ..Default::default()
        };
        let exec = Executor::new(vec![v, stim], cfg).unwrap();
        let trace = exec.run_until(Time::seconds(30.0)).unwrap();

        // Pump events before the lease, none while paused.
        let pump_events: Vec<_> = trace
            .events
            .iter()
            .filter_map(|e| match e {
                pte_sim::trace::TraceEvent::Sent { t, root, .. }
                    if root.as_str().starts_with("evtVPump") =>
                {
                    Some(*t)
                }
                _ => None,
            })
            .collect();
        assert!(pump_events.iter().any(|t| *t < Time::seconds(7.0)));
        assert!(
            pump_events.iter().all(|t| *t <= Time::seconds(7.0 + 1e-6)),
            "no pump activity while leased: {pump_events:?}"
        );

        // Hvent frozen during the pause: series constant after t=7.
        let series = trace.series(0, "Hvent");
        let after: Vec<f64> = series
            .iter()
            .filter(|(t, _)| *t > Time::seconds(7.5) && *t < Time::seconds(29.0))
            .map(|(_, v)| *v)
            .collect();
        assert!(after.len() > 10);
        let spread = after.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - after.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(spread < 1e-9, "Hvent frozen while paused, spread {spread}");
    }

    #[test]
    fn leased_ventilator_resumes_pumping_after_lease_expiry() {
        let v = ventilator(&LeaseConfig::case_study()).unwrap();
        let stim = stimulus(vec![(7.0, "evt_xi0_to_xi1_lease_req".to_string())]);
        let exec = Executor::new(vec![v, stim], ExecutorConfig::default()).unwrap();
        // Lease span: 7 + 3 + 35 + 6 = 51; run to 60.
        let trace = exec.run_until(Time::seconds(60.0)).unwrap();
        let risky = trace.risky_intervals(0);
        assert_eq!(risky.len(), 1);
        assert!(risky[0]
            .end
            .approx_eq(Time::seconds(51.0), Time::seconds(1e-4)));
        // Pump events resume after 51.
        let late_pumps = trace
            .events
            .iter()
            .filter(|e| match e {
                pte_sim::trace::TraceEvent::Sent { t, root, .. } => {
                    root.as_str().starts_with("evtVPump") && *t > Time::seconds(51.0)
                }
                _ => false,
            })
            .count();
        assert!(late_pumps > 0, "ventilation resumed");
    }

    #[test]
    fn pump_phase_preserved_across_pause() {
        // The cylinder height is frozen during the pause and resumes from
        // the same value (elaboration intuition 5).
        let v = ventilator(&LeaseConfig::case_study()).unwrap();
        let stim = stimulus(vec![
            (7.0, "evt_xi0_to_xi1_lease_req".to_string()),
            (12.0, "evt_xi0_to_xi1_cancel".to_string()),
        ]);
        let cfg = ExecutorConfig {
            sample_interval: Some(Time::seconds(0.1)),
            ..Default::default()
        };
        let exec = Executor::new(vec![v, stim], cfg).unwrap();
        let trace = exec.run_until(Time::seconds(25.0)).unwrap();
        let series = trace.series(0, "Hvent");
        let at = |t: f64| -> f64 {
            series
                .iter()
                .min_by(|a, b| {
                    (a.0 - Time::seconds(t))
                        .abs()
                        .cmp(&(b.0 - Time::seconds(t)).abs())
                })
                .unwrap()
                .1
        };
        // Paused from 7 to 12 + 6 (Exiting 2) = 18.
        let during_a = at(8.0);
        let during_b = at(17.5);
        assert!((during_a - during_b).abs() < 1e-9, "frozen during pause");
    }
}
