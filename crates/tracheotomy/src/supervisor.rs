//! The laser tracheotomy supervisor: the Supervisor `ξ0`.
//!
//! Used directly from the pattern ("the Supervisor hybrid automaton
//! `A_supvsr` … can be directly used"); its `ApprovalCondition` —
//! `SpO2(t) > Θ_SpO2` with `Θ = 92 %` — is realized through the reliable
//! `env_approval_ok` / `env_approval_bad` threshold events produced by the
//! wired oximeter in the [`crate::patient`] model.

use pte_core::pattern::{build_supervisor, LeaseConfig};
use pte_hybrid::{BuildError, HybridAutomaton};

/// The SpO2 threshold `Θ_SpO2` used in the emulation (percent).
pub const SPO2_THRESHOLD: f64 = 92.0;

/// Builds the tracheotomy supervisor automaton.
pub fn tracheotomy_supervisor(cfg: &LeaseConfig) -> Result<HybridAutomaton, BuildError> {
    build_supervisor(cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn supervisor_listens_to_oximeter() {
        let s = tracheotomy_supervisor(&LeaseConfig::case_study()).unwrap();
        let roots: Vec<String> = s
            .receive_roots()
            .iter()
            .map(|(r, _)| r.as_str().to_string())
            .collect();
        assert!(roots.contains(&"env_approval_ok".to_string()));
        assert!(roots.contains(&"env_approval_bad".to_string()));
        // Oximeter events are wired (reliable).
        for (root, lossy) in s.receive_roots() {
            if root.as_str().starts_with("env_") {
                assert!(!lossy, "oximeter is wired to the supervisor");
            }
        }
    }
}
