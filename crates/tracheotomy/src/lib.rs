//! # pte-tracheotomy
//!
//! The laser tracheotomy wireless CPS case study (Section V).
//!
//! Entities (`N = 2`):
//!
//! * `ξ0` — the tracheotomy **supervisor** (base station) with the SpO2
//!   oximeter wired to it;
//! * `ξ1` — the **ventilator** (Participant): the design-pattern automaton
//!   elaborated at Fall-Back with the stand-alone ventilator `A′vent` of
//!   Fig. 2 (Section IV-C methodology applied verbatim);
//! * `ξ2` — the surgeon-operated **laser scalpel** (Initializer).
//!
//! Supporting physical-world models (the paper's human subject and
//! surgeon, substituted per DESIGN.md):
//!
//! * [`patient`] — a blood-oxygen (SpO2) ODE driven by the ventilator's
//!   pump events, emitting the reliable `env_approval_ok`/`bad` threshold
//!   events the supervisor's `ApprovalCondition` consumes;
//! * [`surgeon`] — the paper's own emulation of the surgeon: exponential
//!   `Ton`/`Toff` timers injecting `cmd_request`/`cmd_cancel`;
//! * [`emulation`] — 30-minute trials under WiFi-interferer loss with and
//!   without leases, producing the rows of **Table I**;
//! * [`scenarios`] — the three failure narratives of Section V;
//! * [`registry`] — the named scenario set (case study, `chain-2` …
//!   `chain-6` N-device lease chains, a lossy stress variant) that the
//!   analytic, exhaustive, and symbolic backends all consume.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod emulation;
pub mod laser;
pub mod patient;
pub mod registry;
pub mod scenarios;
pub mod supervisor;
pub mod surgeon;
pub mod ventilator;

pub use emulation::{run_trial, TrialConfig, TrialResult};
pub use registry::{by_name as scenario_by_name, registry as scenario_registry, Scenario};
pub use ventilator::{standalone_ventilator, ventilator};
