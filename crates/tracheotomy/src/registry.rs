//! The scenario registry: named lease-pattern configurations every
//! verification backend consumes.
//!
//! Until PR 4 each backend, bench, and campaign cell was hard-wired to
//! the single 2-device laser-tracheotomy instance. The registry turns
//! "which system are we verifying?" into data: a [`Scenario`] is a
//! named [`LeaseConfig`] (the analytic c1–c7 check, the bounded
//! exhaustive explorer, and the symbolic zone engine all start from
//! one), and the standard set spans
//!
//! * `case-study` — the paper's Section V laser-tracheotomy constants;
//! * `chain-2` … `chain-8` — N-device interlocking lease chains
//!   ([`LeaseConfig::chain`]): one supervisor, `N` leased devices, a
//!   c5/c6 nesting ladder with slack exactly 1 at every rung;
//! * `factory-cell` — a second domain: the industrial welding-robot
//!   cell of `examples/factory_cell.rs` (exhaust fan ⊃ light curtain ⊃
//!   part clamp ⊃ welding arc), with its timing **synthesized** from
//!   the safeguard requirements via [`pte_core::synthesis::synthesize`]
//!   rather than hand-written — so the registry also exercises the
//!   synthesis path end-to-end;
//! * `chain-12` / `chain-16` / `chain-20` — compositional-scale
//!   fleets: their recommended budget (40 000 states) is deliberately
//!   *below* the monolithic zone graph (chain-12 already exceeds
//!   66 000 settled states), so only the assume-guarantee backend
//!   (`--backend compositional`, whose largest abstract pair search is
//!   three orders of magnitude smaller) can close them within budget;
//! * `stress-lossy` — the case-study wiring with the outermost lease
//!   stretched to its c4 boundary (`T^max_run,1 = 47`,
//!   `T^max_enter,2 = 10`), which maximizes the window in which lossy
//!   messages race the lease timers and is the largest 2-device zone
//!   graph in the set.
//!
//! Every scenario in the registry satisfies c1–c7, so Theorem 1 says
//! its leased arm is PTE-safe and the symbolic backend must prove it
//! (and falsify the lease-stripped baseline) — the cross-backend
//! agreement gate `campaign` enforces.

use pte_core::pattern::LeaseConfig;
use pte_core::rules::PairSpec;
use pte_core::synthesis::{synthesize, SynthesisRequest};
use pte_hybrid::Time;
use serde::{Deserialize, Serialize};

/// A named verification scenario. Serializable as-is, so a service
/// layer (`pte-verifyd`'s `ListScenarios` frame) can ship the whole
/// catalogue — configs and recommended budgets included — over the
/// wire instead of re-encoding a parallel listing type.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Registry name (stable; used by `--scenario` selectors).
    pub name: String,
    /// One-line description.
    pub description: String,
    /// Number of leased entities `N`.
    pub n: usize,
    /// The timing configuration (satisfies c1–c7).
    pub config: LeaseConfig,
    /// Symbolic state budget that concludes this scenario with ample
    /// headroom over its measured explored set — the single source
    /// every `--scenario` consumer (campaign, zprobe) scales its
    /// default budget from, so a future shift in the engine's search
    /// cannot silently turn one tool's default inconclusive. The
    /// budgets deliberately keep the *pre-reduction* headroom (PR 2
    /// measured `chain-6` ≈ 477k settled states; the static clock
    /// reduction and activity masks of PR 7 cut that to ≈ 8k, with
    /// `chain-7` ≈ 13k and `chain-8` ≈ 20k) because a falsification
    /// re-derives its witness on the unreduced network under the same
    /// budget.
    pub recommended_budget: usize,
}

/// The ≥ 2×-headroom budget for an `N`-entity scenario (see
/// [`Scenario::recommended_budget`]).
fn recommended_budget(n: usize) -> usize {
    match n {
        0..=3 => 60_000,
        4 => 120_000,
        5 => 350_000,
        _ => 1_000_000,
    }
}

/// The `factory-cell` configuration: the welding-robot requirements of
/// `examples/factory_cell.rs` run through the timing synthesizer. The
/// request is infallible by construction (the same constants the
/// example asserts feasible), so the registry stays a pure catalogue.
fn factory_cell() -> LeaseConfig {
    let request = SynthesisRequest {
        n: 4,
        safeguards: vec![
            PairSpec::new(Time::seconds(3.0), Time::seconds(2.0)),
            PairSpec::new(Time::seconds(2.0), Time::seconds(1.0)),
            PairSpec::new(Time::seconds(1.0), Time::seconds(0.5)),
        ],
        rule1_bound: Time::seconds(600.0),
        min_run_initializer: Time::seconds(20.0),
        t_wait: Time::seconds(2.0),
        margin: Time::seconds(0.5),
    };
    synthesize(&request).expect("the factory-cell timing requirements are feasible")
}

/// The standard scenario set, in registry order (`case-study` first,
/// chains by `N`, stress variant last).
pub fn registry() -> Vec<Scenario> {
    let mut scenarios = vec![Scenario {
        name: "case-study".to_string(),
        description: "Section V laser tracheotomy (ventilator < laser scalpel)".to_string(),
        n: 2,
        config: LeaseConfig::case_study(),
        recommended_budget: recommended_budget(2),
    }];
    for n in 2..=8 {
        scenarios.push(Scenario {
            name: format!("chain-{n}"),
            description: format!("{n}-device interlocking lease chain"),
            n,
            config: LeaseConfig::chain(n),
            recommended_budget: recommended_budget(n),
        });
    }
    scenarios.push(Scenario {
        name: "factory-cell".to_string(),
        description: "welding-robot cell (fan ⊃ curtain ⊃ clamp ⊃ arc), synthesized timing"
            .to_string(),
        n: 4,
        config: factory_cell(),
        recommended_budget: recommended_budget(4),
    });
    // Compositional-scale fleets: the 40k budget is deliberately below
    // the monolithic zone graph (chain-12 ≈ 66.8k settled states) but
    // far above any single abstract pair search of the compositional
    // backend (chain-20's largest is well under 4k), so these close
    // only through `--backend compositional` — that scale gap is the
    // scenario's point.
    for n in [12usize, 16, 20] {
        scenarios.push(Scenario {
            name: format!("chain-{n}"),
            description: format!("{n}-device fleet (compositional-scale: monolithic trips 40k)"),
            n,
            config: LeaseConfig::chain(n),
            recommended_budget: 40_000,
        });
    }
    let mut stress = LeaseConfig::case_study();
    stress.t_run[0] = Time::seconds(47.0);
    stress.t_enter[1] = Time::seconds(10.0);
    scenarios.push(Scenario {
        name: "stress-lossy".to_string(),
        description: "case study with T^max_run,1 at the c4 boundary (largest loss-race window)"
            .to_string(),
        n: 2,
        config: stress,
        recommended_budget: recommended_budget(2),
    });
    scenarios
}

/// Looks a scenario up by name.
pub fn by_name(name: &str) -> Option<Scenario> {
    registry().into_iter().find(|s| s.name == name)
}

/// The registry's scenario names, in registry order.
pub fn names() -> Vec<String> {
    registry().into_iter().map(|s| s.name).collect()
}

/// One-line-per-scenario listing for `--scenario` error messages.
pub fn listing() -> String {
    registry()
        .iter()
        .map(|s| format!("  {:<12} (N={}) — {}", s.name, s.n, s.description))
        .collect::<Vec<_>>()
        .join("\n")
}

/// Case-insensitive Levenshtein edit distance, the basis of the
/// nearest-name suggestion in [`unknown_scenario_diagnostic`]. Small
/// inputs only (scenario names), so the O(|a|·|b|) two-row form is
/// plenty.
fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().flat_map(char::to_lowercase).collect();
    let b: Vec<char> = b.chars().flat_map(char::to_lowercase).collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let subst = prev[j] + usize::from(ca != cb);
            cur[j + 1] = subst.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// The candidate closest to `name`, when it is close enough to be a
/// plausible typo (edit distance ≤ 2, or ≤ a third of the name's
/// length for long names) — the generic "did you mean" engine behind
/// [`nearest_name`], reused by every other name-resolving surface
/// (e.g. `pte-verify`'s contract-profile selector) so suggestion
/// behaviour cannot drift between them.
pub fn nearest_of<I, S>(name: &str, candidates: I) -> Option<String>
where
    I: IntoIterator<Item = S>,
    S: AsRef<str>,
{
    let (best, dist) = candidates
        .into_iter()
        .map(|n| {
            let d = edit_distance(name, n.as_ref());
            (n.as_ref().to_string(), d)
        })
        .min_by_key(|(n, d)| (*d, n.clone()))?;
    let threshold = 2.max(name.chars().count() / 3);
    (dist <= threshold).then_some(best)
}

/// The registry name closest to `name` ([`nearest_of`] over the
/// scenario names) — the "did you mean" candidate.
pub fn nearest_name(name: &str) -> Option<String> {
    nearest_of(name, names())
}

/// The canonical unknown-scenario diagnostic, shared by every surface
/// that reports one (the CLI resolver here and
/// `pte_verify::api::ApiError`), so the wording cannot drift between
/// them. When the failed name is a near-miss of a registry name the
/// first line carries a "did you mean" suggestion. `listing` is the
/// catalogue to embed — pass [`listing`]'s output unless replaying a
/// captured one.
pub fn unknown_scenario_diagnostic(name: &str, listing: &str) -> String {
    let suggestion = nearest_name(name)
        .map(|n| format!("; did you mean `{n}`?"))
        .unwrap_or_default();
    format!("unknown scenario `{name}`{suggestion}; available scenarios:\n{listing}")
}

/// Resolves a `--scenario` CLI value: `Ok` for a registry name, `Err`
/// with the ready-to-print diagnostic (unknown name + [`listing`])
/// otherwise.
pub fn resolve(name: &str) -> Result<Scenario, String> {
    by_name(name).ok_or_else(|| unknown_scenario_diagnostic(name, &listing()))
}

/// The shared CLI front door for `--scenario` (used by `campaign` and
/// `zprobe`): resolves the name, or prints the diagnostic — listing
/// included — to **stderr** and exits with status `2`. (`--list`
/// output goes to stdout with status `0`; only the error path lands on
/// stderr.)
pub fn resolve_cli(name: &str) -> Scenario {
    resolve(name).unwrap_or_else(|msg| {
        eprintln!("{msg}");
        std::process::exit(2);
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pte_core::pattern::check_conditions;

    #[test]
    fn registry_names_are_unique_and_resolvable() {
        let names = names();
        for (i, n) in names.iter().enumerate() {
            assert!(!names[..i].contains(n), "duplicate scenario `{n}`");
            assert_eq!(by_name(n).unwrap().name, *n);
        }
        assert!(by_name("no-such-scenario").is_none());
        assert!(listing().contains("case-study"));
    }

    /// The CLI resolver returns the scenario for known names and a
    /// diagnostic that embeds the listing for unknown ones.
    #[test]
    fn resolve_embeds_listing_on_unknown_names() {
        assert_eq!(resolve("chain-3").unwrap().name, "chain-3");
        let err = resolve("no-such-scenario").unwrap_err();
        assert!(err.contains("unknown scenario `no-such-scenario`"), "{err}");
        assert!(err.contains("case-study"), "{err}");
        assert!(err.contains("stress-lossy"), "{err}");
    }

    /// Near-miss names get a "did you mean" line; distant ones do not.
    #[test]
    fn unknown_name_suggests_the_nearest_scenario() {
        let err = resolve("chain4").unwrap_err();
        assert!(err.contains("did you mean `chain-4`?"), "{err}");
        let err = resolve("CASE-STUDY ").unwrap_err();
        assert!(err.contains("did you mean `case-study`?"), "{err}");
        let err = resolve("stress_lossy").unwrap_err();
        assert!(err.contains("did you mean `stress-lossy`?"), "{err}");
        // A name nothing like any scenario stays suggestion-free but
        // still embeds the listing.
        let err = resolve("ventilator-only-fleet").unwrap_err();
        assert!(!err.contains("did you mean"), "{err}");
        assert!(err.contains("available scenarios:"), "{err}");
        assert_eq!(nearest_name("chain-44").as_deref(), Some("chain-4"));
        assert_eq!(nearest_name("zzzzzzzzzz"), None);
    }

    /// Scenarios ship over the wire unchanged: the whole registry
    /// round-trips through serde, configs and budgets included.
    #[test]
    fn scenarios_round_trip_through_serde() {
        use serde::{Deserialize as _, Serialize as _};
        for s in registry() {
            let back = Scenario::from_value(&s.to_value()).unwrap();
            assert_eq!(back, s, "{}", s.name);
        }
    }

    #[test]
    fn every_scenario_satisfies_theorem_1_conditions() {
        for s in registry() {
            let report = check_conditions(&s.config);
            assert!(report.is_satisfied(), "{}:\n{report}", s.name);
            assert_eq!(s.config.n, s.n, "{}", s.name);
        }
    }

    #[test]
    fn every_scenario_builds_both_arms() {
        for s in registry() {
            for leased in [true, false] {
                pte_core::pattern::build_pattern_system(&s.config, leased)
                    .unwrap_or_else(|e| panic!("{} (leased={leased}): {e:?}", s.name));
            }
        }
    }
}
