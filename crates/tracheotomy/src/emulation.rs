//! Trial runner: the Table I emulation.
//!
//! One trial assembles the full case-study hybrid system — supervisor,
//! elaborated ventilator, laser scalpel, patient — wires the wireless star
//! with an interference-driven loss process, drives the surgeon's
//! exponential timers, runs for the trial duration, and scores the trace:
//!
//! * **# of Laser Emissions** — maximal risky dwellings of the laser;
//! * **# of Failures** — PTE rule violations found by the monitor
//!   (Rule 1 bound of 1 minute; safeguards 3 s / 1.5 s — exactly the
//!   emulation's safety rules);
//! * **# of evtToStop** — lease expirations that forced the laser to stop
//!   emitting.

use crate::laser::laser_scalpel;
use crate::patient::patient;
use crate::supervisor::{tracheotomy_supervisor, SPO2_THRESHOLD};
use crate::surgeon::Surgeon;
use crate::ventilator::ventilator;
use pte_core::monitor::{check_pte, PteReport};
use pte_core::pattern::{strip_leases, LeaseConfig};
use pte_core::rules::PteSpec;
use pte_hybrid::Time;
use pte_sim::executor::{ExecError, Executor, ExecutorConfig};
use pte_sim::trace::Trace;
use pte_wireless::loss::{BernoulliLoss, Interferer, LossModel};
use pte_wireless::topology::StarTopology;

/// The loss environment of a trial.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LossEnvironment {
    /// No loss (debug/verification baseline).
    Perfect,
    /// I.i.d. loss with the given probability on every wireless link.
    Bernoulli(f64),
    /// The paper's constant WiFi interference next to the supervisor.
    WifiInterference,
}

/// Configuration of one emulation trial.
#[derive(Clone, Debug)]
pub struct TrialConfig {
    /// Trial duration (the paper: 30 minutes).
    pub duration: Time,
    /// Mean of the surgeon's `Ton` (the paper: 30 s).
    pub mean_on: Time,
    /// Mean of the surgeon's `Toff` (the paper: 18 s and 6 s); `None`
    /// models a surgeon who never cancels.
    pub mean_off: Option<Time>,
    /// Whether lease timers are armed ("with Lease" vs "without Lease").
    pub leased: bool,
    /// The wireless loss environment.
    pub loss: LossEnvironment,
    /// Trial RNG seed (drives the surgeon and every channel).
    pub seed: u64,
}

impl TrialConfig {
    /// The paper's trial settings for a given `E(Toff)` and arm.
    pub fn paper_trial(mean_off_secs: f64, leased: bool, seed: u64) -> TrialConfig {
        TrialConfig {
            duration: Time::seconds(1800.0),
            mean_on: Time::seconds(30.0),
            mean_off: Some(Time::seconds(mean_off_secs)),
            leased,
            loss: LossEnvironment::WifiInterference,
            seed,
        }
    }
}

/// The scored outcome of one trial (one row of Table I).
#[derive(Clone, Debug)]
pub struct TrialResult {
    /// Laser emission episodes.
    pub emissions: usize,
    /// PTE safety rule violations.
    pub failures: usize,
    /// Lease expirations that stopped the laser (`evtToStop`).
    pub evt_to_stop: usize,
    /// Lease expirations that resumed the ventilator (not a Table I
    /// column, reported for analysis).
    pub vent_lease_stops: usize,
    /// Wireless packets dropped during the trial.
    pub packets_dropped: u64,
    /// Wireless packets sent during the trial.
    pub packets_sent: u64,
    /// The monitor's full report.
    pub report: PteReport,
}

impl TrialResult {
    /// Empirical wireless loss rate during the trial.
    pub fn loss_rate(&self) -> f64 {
        if self.packets_sent == 0 {
            0.0
        } else {
            self.packets_dropped as f64 / self.packets_sent as f64
        }
    }
}

/// The PTE safety rules enforced during the emulation (Section V): 1 min
/// dwelling bound; safeguards `T^min_risky:1→2 = 3 s`,
/// `T^min_safe:2→1 = 1.5 s`.
pub fn emulation_spec() -> PteSpec {
    PteSpec::uniform(
        vec!["ventilator".to_string(), "laser-scalpel".to_string()],
        Time::seconds(60.0),
        vec![pte_core::rules::PairSpec::new(
            Time::seconds(3.0),
            Time::seconds(1.5),
        )],
    )
}

/// Builds the case-study hybrid system (supervisor, ventilator, laser,
/// patient) for an arm.
pub fn build_case_study(
    cfg: &LeaseConfig,
    leased: bool,
) -> Result<Vec<pte_hybrid::HybridAutomaton>, pte_hybrid::BuildError> {
    build_case_study_partial(cfg, leased, leased)
}

/// Builds the case study with *per-entity* lease arming — the
/// partial-lease ablation (which lease protects which entity?).
pub fn build_case_study_partial(
    cfg: &LeaseConfig,
    vent_leased: bool,
    laser_leased: bool,
) -> Result<Vec<pte_hybrid::HybridAutomaton>, pte_hybrid::BuildError> {
    let supervisor = tracheotomy_supervisor(cfg)?;
    let mut vent = ventilator(cfg)?;
    let mut laser = laser_scalpel(cfg)?;
    if !vent_leased {
        vent = strip_leases(&vent);
    }
    if !laser_leased {
        laser = strip_leases(&laser);
    }
    let pat = patient(SPO2_THRESHOLD);
    Ok(vec![supervisor, vent, laser, pat])
}

/// Runs one trial with per-entity lease arming (partial-lease ablation).
pub fn run_trial_partial(
    trial: &TrialConfig,
    vent_leased: bool,
    laser_leased: bool,
) -> Result<TrialResult, ExecError> {
    let cfg = LeaseConfig::case_study();
    let automata =
        build_case_study_partial(&cfg, vent_leased, laser_leased).expect("case study builds");
    run_prepared(trial, automata)
}

/// Runs one trial and scores it.
pub fn run_trial(trial: &TrialConfig) -> Result<TrialResult, ExecError> {
    let cfg = LeaseConfig::case_study();
    let automata = build_case_study(&cfg, trial.leased).expect("case study builds");
    run_prepared(trial, automata)
}

/// Shared trial body: wires the star, attaches the surgeon, runs, scores.
fn run_prepared(
    trial: &TrialConfig,
    automata: Vec<pte_hybrid::HybridAutomaton>,
) -> Result<TrialResult, ExecError> {
    // Channel events are retained in the trace: the scoring counts drops.
    let exec_cfg = ExecutorConfig {
        record_channel_events: true,
        ..Default::default()
    };
    let mut exec = Executor::new(automata, exec_cfg)?;

    // Wireless star: supervisor is automaton 0; ventilator 1, laser 2.
    // The patient (3) communicates only via reliable (wired/acoustic)
    // events and never touches the bridge.
    let topo = StarTopology::new(0, vec![1, 2]);
    let bridge = topo.wire(trial.seed, |_, _, seed| -> Box<dyn LossModel> {
        match trial.loss {
            LossEnvironment::Perfect => Box::new(BernoulliLoss::new(0.0, seed)),
            LossEnvironment::Bernoulli(p) => Box::new(BernoulliLoss::new(p, seed)),
            LossEnvironment::WifiInterference => Box::new(Interferer::paper_conditions(seed)),
        }
    });
    exec.set_bridge(bridge);

    exec.add_driver(Box::new(Surgeon::new(
        "laser-scalpel",
        trial.mean_on,
        trial.mean_off,
        trial.seed.wrapping_add(0xA5A5),
    )));

    let trace = exec.run_until(trial.duration)?;
    Ok(score_trace(&trace))
}

/// Scores an already-recorded trace against the emulation rules.
pub fn score_trace(trace: &Trace) -> TrialResult {
    let spec = emulation_spec();
    let report = check_pte(trace, &spec);
    let laser_idx = trace.index_of("laser-scalpel").expect("laser in trace");
    let emissions = trace.risky_intervals(laser_idx).len();
    let evt_to_stop = trace.events_with_root("evt_to_stop_xi2").len();
    let vent_lease_stops = trace.events_with_root("evt_to_stop_xi1").len();
    let packets_dropped = trace.drop_count() as u64;
    let packets_sent = trace
        .events
        .iter()
        .filter(|e| {
            matches!(e, pte_sim::trace::TraceEvent::Sent { root, .. }
                if root.as_str().starts_with("evt_xi"))
        })
        .count() as u64;
    TrialResult {
        emissions,
        failures: report.failure_count(),
        evt_to_stop,
        vent_lease_stops,
        packets_dropped,
        packets_sent,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_links_with_lease_short_trial() {
        let trial = TrialConfig {
            duration: Time::seconds(300.0),
            mean_on: Time::seconds(20.0),
            mean_off: Some(Time::seconds(10.0)),
            leased: true,
            loss: LossEnvironment::Perfect,
            seed: 1,
        };
        let result = run_trial(&trial).unwrap();
        assert!(result.emissions >= 1, "at least one emission in 5 min");
        assert_eq!(result.failures, 0, "{}", result.report);
    }

    #[test]
    fn interference_with_lease_never_fails() {
        let trial = TrialConfig {
            duration: Time::seconds(400.0),
            mean_on: Time::seconds(20.0),
            mean_off: Some(Time::seconds(10.0)),
            leased: true,
            loss: LossEnvironment::WifiInterference,
            seed: 7,
        };
        let result = run_trial(&trial).unwrap();
        assert_eq!(result.failures, 0, "{}", result.report);
        assert!(result.packets_dropped > 0, "interference active");
    }

    #[test]
    fn heavy_loss_without_lease_fails() {
        // Aggressive loss + long stuck windows: the no-lease arm must
        // violate the 60 s dwelling bound.
        let trial = TrialConfig {
            duration: Time::seconds(900.0),
            mean_on: Time::seconds(20.0),
            mean_off: Some(Time::seconds(10.0)),
            leased: false,
            loss: LossEnvironment::Bernoulli(0.5),
            seed: 3,
        };
        let result = run_trial(&trial).unwrap();
        assert!(
            result.failures > 0,
            "expected failures without leases: {:?}",
            result.report
        );
    }

    #[test]
    fn scoring_counts_match_trace() {
        let trial = TrialConfig {
            duration: Time::seconds(300.0),
            mean_on: Time::seconds(15.0),
            mean_off: Some(Time::seconds(5.0)),
            leased: true,
            loss: LossEnvironment::Perfect,
            seed: 5,
        };
        let result = run_trial(&trial).unwrap();
        // With a 5 s mean cancel time and a 20 s lease, most emissions are
        // cancelled by the surgeon; evtToStop must not exceed emissions.
        assert!(result.evt_to_stop <= result.emissions);
        assert_eq!(result.loss_rate(), 0.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let trial = TrialConfig {
            duration: Time::seconds(200.0),
            mean_on: Time::seconds(15.0),
            mean_off: Some(Time::seconds(8.0)),
            leased: true,
            loss: LossEnvironment::WifiInterference,
            seed: 99,
        };
        let a = run_trial(&trial).unwrap();
        let b = run_trial(&trial).unwrap();
        assert_eq!(a.emissions, b.emissions);
        assert_eq!(a.failures, b.failures);
        assert_eq!(a.evt_to_stop, b.evt_to_stop);
        assert_eq!(a.packets_dropped, b.packets_dropped);
    }
}
