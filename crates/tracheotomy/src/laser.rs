//! The surgeon-operated laser scalpel: the Initializer `ξ2`.
//!
//! The paper uses the Initializer design-pattern automaton directly ("the
//! Initializer hybrid automaton `A_initzr` … can be directly used to
//! describe the behavior of laser-scalpel"); we only rename it for the
//! case study. Risky Core is laser emission; `cmd_request`/`cmd_cancel`
//! are the surgeon's (reliable, local) controls.

use pte_core::pattern::{build_initializer, LeaseConfig};
use pte_hybrid::{BuildError, HybridAutomaton};

/// Builds the laser scalpel automaton (the Initializer, renamed).
pub fn laser_scalpel(cfg: &LeaseConfig) -> Result<HybridAutomaton, BuildError> {
    let mut a = build_initializer(cfg)?;
    a.name = "laser-scalpel".to_string();
    Ok(a)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renamed_initializer() {
        let l = laser_scalpel(&LeaseConfig::case_study()).unwrap();
        assert_eq!(l.name, "laser-scalpel");
        assert!(l.loc_by_name("Risky Core").is_some());
        assert!(l.is_risky(l.loc_by_name("Risky Core").unwrap()));
        // Emits the paper's request/cancel/exit events for ξ2.
        let emits: Vec<String> = l
            .emit_roots()
            .iter()
            .map(|r| r.as_str().to_string())
            .collect();
        assert!(emits.contains(&"evt_xi2_to_xi0_req".to_string()));
        assert!(emits.contains(&"evt_xi2_to_xi0_cancel".to_string()));
        assert!(emits.contains(&"evt_xi2_to_xi0_exit".to_string()));
    }
}
