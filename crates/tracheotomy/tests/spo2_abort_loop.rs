//! End-to-end test of the sensing loop behind the paper's
//! `ApprovalCondition`: patient SpO2 → wired oximeter threshold events →
//! supervisor abort chain → wireless abort commands → entities exit risky
//! → ventilation resumes → patient recovers.
//!
//! The case-study constants are deliberately chosen so that a
//! lease-bounded pause *cannot* desaturate the patient (that is the point
//! of the 60 s rule), so to exercise the abort path we use a
//! longer-procedure configuration — still satisfying c1–c7 — in which the
//! surgeon forgets to cancel and the patient's desaturation is what stops
//! the laser, well before any lease expires.

use pte_core::monitor::check_pte;
use pte_core::pattern::{check_conditions, LeaseConfig};
use pte_core::rules::PairSpec;
use pte_hybrid::{Root, Time};
use pte_sim::driver::ScriptedDriver;
use pte_sim::executor::{Executor, ExecutorConfig};
use pte_tracheotomy::emulation::build_case_study;

/// A long-procedure configuration (2-minute leases) satisfying c1–c7.
fn long_cfg() -> LeaseConfig {
    let cfg = LeaseConfig {
        n: 2,
        t_fb0_min: Time::seconds(13.0),
        t_wait_max: Time::seconds(3.0),
        t_req_max: Time::seconds(5.0),
        t_enter: vec![Time::seconds(3.0), Time::seconds(10.0)],
        t_run: vec![Time::seconds(120.0), Time::seconds(80.0)],
        t_exit: vec![Time::seconds(6.0), Time::seconds(1.5)],
        safeguards: vec![PairSpec::new(Time::seconds(3.0), Time::seconds(1.5))],
    };
    assert!(check_conditions(&cfg).is_satisfied());
    cfg
}

#[test]
fn oximeter_alarm_aborts_procedure_before_any_lease_expires() {
    let cfg = long_cfg();
    let automata = build_case_study(&cfg, true).expect("builds");
    let mut exec = Executor::new(automata, ExecutorConfig::default()).expect("executor");
    exec.add_driver(Box::new(ScriptedDriver::new(
        "surgeon",
        vec![(Time::seconds(14.0), Root::new("cmd_request"))],
    )));
    let trace = exec.run_until(Time::seconds(300.0)).expect("runs");

    // Ventilation pauses at ~14 s; SpO2 crosses the 92% threshold about
    // (98-92)/0.12 ≈ 50 s after the breath watchdog fires.
    let bad = trace.events_with_root("env_approval_bad");
    assert_eq!(bad.len(), 1, "oximeter alarm raised once");
    let t_bad = bad[0].time();
    assert!(
        t_bad > Time::seconds(55.0) && t_bad < Time::seconds(85.0),
        "alarm at {t_bad}"
    );

    // The supervisor reacts with the abort chain, reverse PTE order.
    let abort2 = trace.events_with_root("evt_xi0_to_xi2_abort");
    let abort1 = trace.events_with_root("evt_xi0_to_xi1_abort");
    assert!(!abort2.is_empty(), "laser abort sent");
    assert!(!abort1.is_empty(), "ventilator abort sent");
    assert!(abort2[0].time() <= abort1[0].time(), "reverse PTE order");
    assert!(abort2[0].time() >= t_bad, "abort caused by the alarm");

    // The laser was stopped by the ABORT, not by its (80 s) lease.
    let laser = trace.index_of("laser-scalpel").unwrap();
    let laser_iv = trace.risky_intervals(laser);
    assert_eq!(laser_iv.len(), 1);
    assert!(!laser_iv[0].truncated);
    assert!(
        laser_iv[0]
            .end
            .approx_eq(t_bad + Time::seconds(1.5), Time::seconds(0.1)),
        "laser stopped right after the alarm: {:?} vs alarm {t_bad}",
        laser_iv[0]
    );
    assert!(
        trace.events_with_root("evt_to_stop_xi2").is_empty(),
        "no lease rescue needed — the sensing loop acted first"
    );

    // Ventilation resumed and the patient recovered (all-clear fired).
    let vent = trace.index_of("ventilator").unwrap();
    let vent_iv = trace.risky_intervals(vent);
    assert_eq!(vent_iv.len(), 1);
    assert!(!vent_iv[0].truncated, "ventilator resumed");
    let ok = trace.events_with_root("env_approval_ok");
    assert_eq!(ok.len(), 1, "recovery announced");
    assert!(ok[0].time() > t_bad);

    // And the whole episode respected the PTE rules for this config
    // (case-study entity names, this config's dwelling bound).
    let mut spec = pte_tracheotomy::emulation::emulation_spec();
    spec.rule1_bounds = vec![cfg.max_risky_dwelling(); 2];
    let report = check_pte(&trace, &spec);
    assert!(report.is_safe(), "{report}");
}

#[test]
fn alarm_blocks_regrant_until_recovery() {
    // Drive the supervisor's ApprovalCondition directly (a scripted
    // oximeter): a request arriving while the condition is false must be
    // ignored; after the all-clear, the same request goes through.
    let cfg = LeaseConfig::case_study();
    let automata = build_case_study(&cfg, true).expect("builds");
    let mut exec = Executor::new(automata, ExecutorConfig::default()).expect("executor");
    exec.add_driver(Box::new(ScriptedDriver::new(
        "test-oximeter",
        vec![
            (Time::seconds(1.0), Root::new("env_approval_bad")),
            (Time::seconds(40.0), Root::new("env_approval_ok")),
        ],
    )));
    exec.add_driver(Box::new(ScriptedDriver::new(
        "surgeon",
        vec![
            (Time::seconds(20.0), Root::new("cmd_request")), // blocked
            (Time::seconds(50.0), Root::new("cmd_request")), // granted
        ],
    )));
    let trace = exec.run_until(Time::seconds(130.0)).expect("runs");
    let laser = trace.index_of("laser-scalpel").unwrap();
    let iv = trace.risky_intervals(laser);
    assert_eq!(iv.len(), 1, "only the post-recovery request ran: {iv:?}");
    assert!(
        iv[0].start > Time::seconds(50.0),
        "emission follows the second request: {:?}",
        iv[0]
    );
}
