//! Offline stand-in for `proptest`.
//!
//! Implements the subset of proptest this workspace uses: the
//! [`strategy::Strategy`] trait with `prop_map` / `prop_recursive` / `boxed`,
//! strategies for numeric ranges, tuples, `Just`, simple regex-like
//! string patterns, `collection::vec`, the `prop_oneof!` /
//! `proptest!` / `prop_assert*!` / `prop_assume!` macros, and
//! `ProptestConfig::with_cases`.
//!
//! Differences from upstream: generation is driven by a deterministic
//! per-test RNG (seeded from the test name, overridable via the
//! `PROPTEST_SEED` environment variable) and there is **no shrinking** —
//! a failing case reports the generated inputs as-is via the assertion
//! message. For CI that is a fine trade; for interactive minimization
//! use the real crate.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Runner-side types: RNG, config, case-level errors.

    /// Deterministic 64-bit RNG (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds directly.
        pub fn new(seed: u64) -> TestRng {
            TestRng { state: seed }
        }

        /// Seeds from a test name (FNV-1a), honoring `PROPTEST_SEED`.
        pub fn deterministic(name: &str) -> TestRng {
            if let Ok(seed) = std::env::var("PROPTEST_SEED") {
                if let Ok(seed) = seed.parse::<u64>() {
                    return TestRng::new(seed);
                }
            }
            let mut h: u64 = 0xcbf29ce484222325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            TestRng::new(h)
        }

        /// Next raw 64 bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            self.next_u64() % bound
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// The case was vetoed by `prop_assume!` — try another.
        Reject(String),
        /// The property failed.
        Fail(String),
    }

    impl TestCaseError {
        /// Builds a failure.
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(msg.into())
        }

        /// Builds a rejection.
        pub fn reject(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Reject(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Reject(m) => write!(f, "case rejected: {m}"),
                TestCaseError::Fail(m) => write!(f, "case failed: {m}"),
            }
        }
    }

    /// Per-block configuration (`#![proptest_config(...)]`).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of passing cases required.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256 }
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Recursive strategies: `recurse` receives a strategy for the
        /// smaller sub-terms and builds one level on top; `depth` bounds
        /// nesting. The `desired_size`/`expected_branch` hints of the
        /// real crate are accepted and ignored.
        fn prop_recursive<S, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            S: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S,
        {
            let base = self.boxed();
            let mut cur = base.clone();
            for _ in 0..depth {
                let rec = recurse(cur).boxed();
                let leaf = base.clone();
                cur = BoxedStrategy(Rc::new(move |rng: &mut TestRng| {
                    // Mix leaves back in so sizes vary below the cap.
                    if rng.unit_f64() < 0.25 {
                        leaf.gen_value(rng)
                    } else {
                        rec.gen_value(rng)
                    }
                }));
            }
            cur
        }

        /// Type-erases the strategy (cheaply cloneable).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            let this = self;
            BoxedStrategy(Rc::new(move |rng: &mut TestRng| this.gen_value(rng)))
        }
    }

    /// A type-erased, cheaply cloneable strategy.
    pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// `prop_map` adapter.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn gen_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.gen_value(rng))
        }
    }

    /// Always generates a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn gen_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between type-erased alternatives (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds from the already-boxed alternatives.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].gen_value(rng)
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn gen_value(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn gen_value(&self, rng: &mut TestRng) -> f32 {
            self.start + (rng.unit_f64() as f32) * (self.end - self.start)
        }
    }

    macro_rules! impl_uint_range {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    let span = (self.end - self.start) as u64;
                    assert!(span > 0, "empty range strategy");
                    self.start + rng.below(span) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    let span = (*self.end() - *self.start()) as u64 + 1;
                    *self.start() + rng.below(span) as $t
                }
            }
        )*};
    }
    impl_uint_range!(u8, u16, u32, u64, usize);

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    let span = (self.end as i64 - self.start as i64) as u64;
                    assert!(span > 0, "empty range strategy");
                    (self.start as i64 + rng.below(span) as i64) as $t
                }
            }
        )*};
    }
    impl_int_range!(i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($n:tt $t:ident),+))*) => {$(
            impl<$($t: Strategy),+> Strategy for ($($t,)+) {
                type Value = ($($t::Value,)+);
                fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.gen_value(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (0 A, 1 B)
        (0 A, 1 B, 2 C)
        (0 A, 1 B, 2 C, 3 D)
        (0 A, 1 B, 2 C, 3 D, 4 E)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
    }

    /// String strategy from a pattern of the restricted shape
    /// `[class]{m,n}` (a char class with optional `a-z` ranges and an
    /// optional repetition; literal characters outside classes pass
    /// through). This covers the patterns used in this workspace;
    /// anything fancier panics loudly.
    impl Strategy for &str {
        type Value = String;
        fn gen_value(&self, rng: &mut TestRng) -> String {
            generate_pattern(self, rng)
        }
    }

    fn generate_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            let (alphabet, after_atom): (Vec<char>, usize) = match chars[i] {
                '[' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == ']')
                        .unwrap_or_else(|| panic!("unclosed `[` in pattern {pattern:?}"))
                        + i;
                    let mut set = Vec::new();
                    let mut j = i + 1;
                    while j < close {
                        if j + 2 < close && chars[j + 1] == '-' {
                            let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                            assert!(lo <= hi, "bad range in pattern {pattern:?}");
                            for c in lo..=hi {
                                set.push(char::from_u32(c).unwrap());
                            }
                            j += 3;
                        } else {
                            set.push(chars[j]);
                            j += 1;
                        }
                    }
                    (set, close + 1)
                }
                '.' | '*' | '+' | '?' | '(' | ')' | '|' | '\\' => {
                    panic!("pattern {pattern:?} uses regex features the proptest stand-in lacks")
                }
                c => (vec![c], i + 1),
            };
            // Optional repetition {m} / {m,n}.
            let (lo, hi, next) = if chars.get(after_atom) == Some(&'{') {
                let close = chars[after_atom..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("unclosed `{{` in pattern {pattern:?}"))
                    + after_atom;
                let spec: String = chars[after_atom + 1..close].iter().collect();
                let (lo, hi) = match spec.split_once(',') {
                    Some((a, b)) => (
                        a.trim().parse::<usize>().expect("bad repeat lower bound"),
                        b.trim().parse::<usize>().expect("bad repeat upper bound"),
                    ),
                    None => {
                        let n = spec.trim().parse::<usize>().expect("bad repeat count");
                        (n, n)
                    }
                };
                (lo, hi, close + 1)
            } else {
                (1, 1, after_atom)
            };
            assert!(!alphabet.is_empty(), "empty char class in {pattern:?}");
            let count = lo + rng.below((hi - lo + 1) as u64) as usize;
            for _ in 0..count {
                out.push(alphabet[rng.below(alphabet.len() as u64) as usize]);
            }
            i = next;
        }
        out
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Size specification for [`vec()`]: an exact count or a range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.end > r.start, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    /// Strategy producing `Vec`s of `element` with a size drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo + 1) as u64;
            let n = self.size.lo + rng.below(span) as usize;
            (0..n).map(|_| self.element.gen_value(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The usual glob import.

    pub use crate::strategy::{BoxedStrategy, Just, Map, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Runs each contained `#[test]` function over many generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!($crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

/// Internal expansion of [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            let mut __passed: u32 = 0;
            let mut __rejected: u32 = 0;
            while __passed < __cfg.cases {
                $(let $arg = $crate::strategy::Strategy::gen_value(&$strat, &mut __rng);)+
                let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match __result {
                    ::std::result::Result::Ok(()) => {
                        __passed += 1;
                    }
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(__m)) => {
                        __rejected += 1;
                        if __rejected > __cfg.cases.saturating_mul(16) + 1024 {
                            panic!(
                                "proptest {}: too many rejected cases (last: {})",
                                stringify!($name), __m
                            );
                        }
                    }
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(__m)) => {
                        panic!(
                            "proptest {} failed after {} passing case(s): {}",
                            stringify!($name), __passed, __m
                        );
                    }
                }
            }
        }
    )*};
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current case unless the two values compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = $left;
        let __r = $right;
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: `{}` == `{}` ({:?} vs {:?})",
            stringify!($left), stringify!($right), __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let __l = $left;
        let __r = $right;
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("{:?} != {:?}: {}", __l, __r, format!($($fmt)+)),
            ));
        }
    }};
}

/// Fails the current case if the two values compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = $left;
        let __r = $right;
        $crate::prop_assert!(
            __l != __r,
            "assertion failed: `{}` != `{}` (both {:?})",
            stringify!($left),
            stringify!($right),
            __l
        );
    }};
}

/// Rejects the current case (not counted as passing) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..1000 {
            let f = (1.5f64..2.5).gen_value(&mut rng);
            assert!((1.5..2.5).contains(&f));
            let u = (3usize..9).gen_value(&mut rng);
            assert!((3..9).contains(&u));
            let i = (-5i32..5).gen_value(&mut rng);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn patterns_generate_matching_strings() {
        let mut rng = TestRng::new(2);
        for _ in 0..200 {
            let s = "[a-c]{2,4}".gen_value(&mut rng);
            assert!((2..=4).contains(&s.len()), "{s}");
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)), "{s}");
            let t = "x[0-9]{3}".gen_value(&mut rng);
            assert_eq!(t.len(), 4);
            assert!(t.starts_with('x'));
        }
    }

    #[test]
    fn oneof_uses_every_arm() {
        let strat = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut rng = TestRng::new(3);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[strat.gen_value(&mut rng) as usize] = true;
        }
        assert_eq!(&seen[1..], &[true, true, true]);
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone)]
        enum Tree {
            #[allow(dead_code)]
            Leaf(u8),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let strat = (0u8..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(4, 16, 2, |inner| {
                (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
            });
        let mut rng = TestRng::new(4);
        let mut max_depth = 0;
        for _ in 0..300 {
            max_depth = max_depth.max(depth(&strat.gen_value(&mut rng)));
        }
        assert!(max_depth >= 1, "recursion never fired");
        assert!(max_depth <= 4, "depth cap exceeded: {max_depth}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The macro pipeline itself: args bind, assume rejects, asserts
        /// pass.
        #[test]
        fn macro_roundtrip(a in 0u32..100, v in crate::collection::vec(0u8..10, 2..5)) {
            prop_assume!(a != 13);
            prop_assert!(a < 100);
            prop_assert_eq!(v.len(), v.len());
            prop_assert_ne!(v.len(), 99usize);
        }
    }
}
