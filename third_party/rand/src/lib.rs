//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to a crates registry, so the
//! workspace vendors minimal implementations of the external crates it
//! depends on. This one covers exactly the surface the PTE workspace
//! uses: `StdRng`, `SeedableRng::seed_from_u64`, and `Rng::random` for
//! the primitive types. The generator is a PCG-XSH-RR 64/32 pair folded
//! to 64 bits — statistically solid for simulation workloads, seeded
//! deterministically (runs are reproducible, which the test-suite relies
//! on), but of course not the upstream `StdRng` stream.

#![forbid(unsafe_code)]

/// Core trait: a source of random `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Types that can be sampled uniformly by [`Rng::random`].
pub trait Standard: Sized {
    /// Draws one value from the standard distribution of `Self`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The user-facing sampling trait (`rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples a boolean that is `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }

    /// Samples uniformly from `[low, high)`.
    fn random_range(&mut self, range: std::ops::Range<u64>) -> u64 {
        let span = range.end - range.start;
        debug_assert!(span > 0, "empty range");
        // Rejection-free modulo is fine for our non-cryptographic uses.
        range.start + self.next_u64() % span
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction of RNGs (`rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds an RNG whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    const MUL: u64 = 6364136223846793005;

    /// Deterministic PCG-based generator (stand-in for `rand::rngs::StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
        inc: u64,
    }

    impl StdRng {
        fn step(&mut self) -> u32 {
            let old = self.state;
            self.state = old.wrapping_mul(MUL).wrapping_add(self.inc);
            let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
            let rot = (old >> 59) as u32;
            xorshifted.rotate_right(rot)
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            ((self.step() as u64) << 32) | self.step() as u64
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix the seed into state/increment so nearby seeds give
            // unrelated streams.
            let mut z = seed.wrapping_add(0x9E3779B97F4A7C15);
            let mut mix = || {
                z = z.wrapping_add(0x9E3779B97F4A7C15);
                let mut x = z;
                x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
                x ^ (x >> 31)
            };
            let state = mix();
            let inc = mix() | 1; // must be odd
            let mut rng = StdRng { state, inc };
            // Warm up so the first output already depends on all seed bits.
            let _ = rng.step();
            rng
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let u: f64 = r.random();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn f64_mean_is_centered() {
        let mut r = StdRng::seed_from_u64(2);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.random::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
