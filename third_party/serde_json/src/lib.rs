//! Offline stand-in for `serde_json`.
//!
//! Prints and parses the stand-in [`serde::Value`] tree as JSON. One
//! deliberate deviation: non-finite floats are written as the bare
//! tokens `inf` / `-inf` (real JSON has no spelling for them and real
//! serde_json writes `null`); only this parser ever reads them back, so
//! round-trips through `Time::INFINITY` and friends stay exact.

#![forbid(unsafe_code)]

use serde::{Deserialize, Number, Serialize, Value};
use std::fmt::Write as _;

pub use serde::Error;

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value());
    Ok(out)
}

/// Parses JSON text into any deserializable type.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing input at byte {}", p.pos)));
    }
    T::from_value(&v)
}

/// Parses JSON text into a raw [`Value`].
pub fn from_str_value(text: &str) -> Result<Value, Error> {
    from_str::<ValueWrapper>(text).map(|w| w.0)
}

/// Helper so [`from_str_value`] can reuse `from_str`'s driver.
struct ValueWrapper(Value);
impl Deserialize for ValueWrapper {
    fn from_value(v: &Value) -> Result<ValueWrapper, Error> {
        Ok(ValueWrapper(v.clone()))
    }
}

// ---------------------------------------------------------------------------
// Printer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(Number::U(u)) => {
            let _ = write!(out, "{u}");
        }
        Value::Num(Number::I(i)) => {
            let _ = write!(out, "{i}");
        }
        Value::Num(Number::F(f)) => {
            if f.is_finite() {
                // Rust's float Display is shortest-round-trip, so parsing
                // recovers the exact bits. (`1.0` prints as "1" and comes
                // back as an integer Number; the numeric Deserialize impls
                // absorb that.)
                let _ = write!(out, "{f}");
            } else if *f > 0.0 {
                out.push_str("inf");
            } else {
                out.push_str("-inf");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Obj(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, k);
                out.push(':');
                write_value(out, val);
            }
            out.push('}');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'i') if self.eat_keyword("inf") => Ok(Value::Num(Number::F(f64::INFINITY))),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Arr(items));
                        }
                        _ => return Err(Error::msg("expected `,` or `]` in array")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Obj(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.parse_value()?;
                    entries.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Obj(entries));
                        }
                        _ => return Err(Error::msg("expected `,` or `}` in object")),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::msg(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error::msg("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error::msg("dangling escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::msg("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::msg("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::msg("bad \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(Error::msg(format!("unknown escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Re-decode UTF-8 from this byte.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| Error::msg("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
            if self.eat_keyword("inf") {
                return Ok(Value::Num(Number::F(f64::NEG_INFINITY)));
            }
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Num(Number::U(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Num(Number::I(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Num(Number::F(f)))
            .map_err(|_| Error::msg(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(from_str::<u32>(" 42 ").unwrap(), 42);
        assert!(!from_str::<bool>("false").unwrap());
    }

    #[test]
    fn float_display_round_trips_exactly() {
        for f in [0.1, 1.0 / 3.0, 1e-300, 123456.789, -0.0, 35.0] {
            let s = to_string(&f).unwrap();
            assert_eq!(from_str::<f64>(&s).unwrap(), f, "{s}");
        }
    }

    #[test]
    fn non_finite_floats_round_trip() {
        let s = to_string(&f64::INFINITY).unwrap();
        assert_eq!(s, "inf");
        assert_eq!(from_str::<f64>(&s).unwrap(), f64::INFINITY);
        assert_eq!(from_str::<f64>("-inf").unwrap(), f64::NEG_INFINITY);
    }

    #[test]
    fn strings_escape() {
        let s = "a\"b\\c\nd\tẞ";
        let json = to_string(&s.to_string()).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
        assert_eq!(from_str::<String>("\"\\u0041\"").unwrap(), "A");
    }

    #[test]
    fn containers_round_trip() {
        let v: Vec<Option<f64>> = vec![Some(1.0), None, Some(-2.5)];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,null,-2.5]");
        assert_eq!(from_str::<Vec<Option<f64>>>(&json).unwrap(), v);
    }

    #[test]
    fn nested_value_parses() {
        let v = from_str_value(r#"{"a":[1,{"b":null}],"c":"x"}"#).unwrap();
        match v {
            serde::Value::Obj(entries) => assert_eq!(entries.len(), 2),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn errors_are_reported() {
        assert!(from_str::<bool>("tru").is_err());
        assert!(from_str::<Vec<u8>>("[1,2").is_err());
        assert!(from_str::<u8>("300").is_err());
        assert!(from_str::<bool>("true false").is_err());
    }
}
