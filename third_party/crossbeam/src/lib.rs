//! Offline stand-in for `crossbeam`, covering `crossbeam::thread::scope`.
//!
//! Since Rust 1.63 the standard library has scoped threads, so this shim
//! adapts `std::thread::scope` to crossbeam's calling convention: the
//! spawn closure receives the scope again (for nested spawns) and
//! `scope(..)` returns a `Result` (always `Ok` here — a panicking worker
//! propagates through `std::thread::scope` instead of being captured).

#![forbid(unsafe_code)]

pub mod thread {
    //! Scoped threads in crossbeam's API shape.

    /// Wrapper handing crossbeam's `&Scope` argument to spawned closures.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped worker; the closure receives the scope so it
        /// can spawn further workers, crossbeam-style.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a scope in which borrowed-data threads can be
    /// spawned; returns once every spawned thread has finished.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use super::thread;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn workers_share_borrowed_state() {
        let counter = AtomicUsize::new(0);
        thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|_| counter.fetch_add(1, Ordering::SeqCst));
            }
        })
        .expect("scope");
        assert_eq!(counter.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn nested_spawn_through_scope_argument() {
        let counter = AtomicUsize::new(0);
        thread::scope(|scope| {
            scope.spawn(|inner| {
                inner.spawn(|_| counter.fetch_add(1, Ordering::SeqCst));
            });
        })
        .expect("scope");
        assert_eq!(counter.load(Ordering::SeqCst), 1);
    }
}
