//! Offline stand-in for `criterion`.
//!
//! A minimal wall-clock benchmarking harness exposing the API shape the
//! workspace's benches use (`Criterion`, `benchmark_group`, `Bencher::iter`,
//! `BenchmarkId`, `Throughput`, `criterion_group!`/`criterion_main!`).
//! There is no statistical machinery: each benchmark is warmed up briefly,
//! then timed over an adaptive number of iterations, and a single
//! mean-per-iteration line is printed. Good enough to compare orders of
//! magnitude and to keep `cargo bench` working without the registry.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for a parameterized benchmark.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Identifier carrying only a parameter (group name provides context).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { label: s.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { label: s }
    }
}

/// Throughput annotation attached to a group (printed alongside timings).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Per-iteration timing loop handed to benchmark closures.
pub struct Bencher {
    measured: Duration,
    iters: u64,
}

impl Bencher {
    /// Calls `routine` repeatedly and records mean wall-clock time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until ~20 ms have elapsed to fault in caches.
        let warm_start = Instant::now();
        while warm_start.elapsed() < Duration::from_millis(20) {
            black_box(routine());
        }
        // Calibrate an iteration count targeting ~200 ms of measurement.
        let probe_start = Instant::now();
        black_box(routine());
        let probe = probe_start.elapsed().max(Duration::from_nanos(50));
        let target = Duration::from_millis(200);
        let iters = (target.as_nanos() / probe.as_nanos()).clamp(1, 100_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.measured = start.elapsed();
        self.iters = iters;
    }
}

fn human(d: Duration) -> String {
    let ns = d.as_nanos() as f64;
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn run_one(label: &str, throughput: Option<Throughput>, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        measured: Duration::ZERO,
        iters: 1,
    };
    f(&mut b);
    let per_iter = b.measured.checked_div(b.iters as u32).unwrap_or_default();
    let mut line = format!("bench: {label:<48} {:>12}/iter", human(per_iter));
    if let Some(tp) = throughput {
        let secs = per_iter.as_secs_f64().max(1e-12);
        match tp {
            Throughput::Elements(n) => {
                line.push_str(&format!("  ({:.0} elem/s)", n as f64 / secs));
            }
            Throughput::Bytes(n) => {
                line.push_str(&format!(
                    "  ({:.1} MiB/s)",
                    n as f64 / secs / (1 << 20) as f64
                ));
            }
        }
    }
    println!("{line}");
}

/// Top-level benchmark driver (stand-in for `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        run_one(&id.into().label, None, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _c: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, tp: Throughput) -> &mut Self {
        self.throughput = Some(tp);
        self
    }

    /// Runs a named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().label);
        run_one(&label, self.throughput, &mut f);
        self
    }

    /// Runs a named benchmark with an explicit input value.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().label);
        run_one(&label, self.throughput, &mut |b| f(b, input));
        self
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench entry point running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grp");
        g.throughput(Throughput::Elements(4));
        g.bench_with_input(BenchmarkId::from_parameter(4), &4u64, |b, n| {
            b.iter(|| (0..*n).sum::<u64>())
        });
        g.finish();
    }
}
