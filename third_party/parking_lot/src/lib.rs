//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Exposes the `parking_lot` calling convention (infallible `lock()`,
//! `into_inner()` without poison handling) over `std::sync::Mutex` /
//! `RwLock`. Poisoned locks are recovered rather than propagated, which
//! matches `parking_lot`'s no-poisoning semantics closely enough for the
//! verification workers here.

#![forbid(unsafe_code)]

use std::sync::{self, PoisonError};

/// Mutual exclusion with `parking_lot`'s infallible API.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wraps `value`.
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Reader/writer lock with `parking_lot`'s infallible API.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: sync::RwLock<T>,
}

/// Shared guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Wraps `value`.
    pub fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
        assert_eq!(l.into_inner(), vec![1, 2]);
    }
}
