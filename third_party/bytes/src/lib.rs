//! Offline stand-in for the `bytes` crate.
//!
//! Covers the surface the wireless packet codec uses: [`Bytes`] (cheaply
//! cloneable immutable buffer), [`BytesMut`] (growable builder) and the
//! big-endian `put_*` writers from [`BufMut`]. Backed by `Arc<[u8]>` /
//! `Vec<u8>` rather than the upstream vtable machinery.

#![forbid(unsafe_code)]

use std::ops::Deref;
use std::sync::Arc;

/// Immutable, cheaply cloneable byte buffer.
#[derive(Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes { data: data.into() }
    }

    /// Copies the contents into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for b in self.iter() {
            write!(f, "\\x{b:02x}")?;
        }
        write!(f, "\"")
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes { data: v.into() }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

/// Growable byte buffer used to assemble frames.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty builder.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// An empty builder with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts the accumulated contents into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Big-endian writers (subset of `bytes::BufMut`).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_builders() {
        let mut b = BytesMut::with_capacity(8);
        b.put_u16(0xBEEF);
        b.put_u32(0x01020304);
        b.put_slice(&[9, 9]);
        let frozen = b.freeze();
        assert_eq!(&frozen[..], &[0xBE, 0xEF, 1, 2, 3, 4, 9, 9]);
        assert_eq!(frozen.len(), 8);
        assert_eq!(frozen.to_vec(), frozen.clone().to_vec());
    }

    #[test]
    fn copy_from_slice_is_independent() {
        let src = vec![1u8, 2, 3];
        let b = Bytes::copy_from_slice(&src);
        drop(src);
        assert_eq!(&b[..], &[1, 2, 3]);
        assert_eq!(b, Bytes::from(vec![1, 2, 3]));
    }
}
