//! Offline stand-in for `serde`.
//!
//! The real serde streams through `Serializer`/`Deserializer` visitors;
//! this stand-in goes through an owned [`Value`] tree instead, which is
//! all the workspace needs (its only format is JSON, via the sibling
//! `serde_json` stand-in). The public contract is the same shape:
//! `#[derive(Serialize, Deserialize)]` on plain structs and enums, and
//! `serde_json::{to_string, from_str}` round-trips.
//!
//! Encoding conventions (mirroring serde's externally-tagged defaults):
//! named structs → objects; newtype structs → their inner value; tuple
//! structs → arrays; unit enum variants → `"Variant"`; data-carrying
//! variants → `{"Variant": payload}`.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// A dynamically-typed serialized value (the data model).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number.
    Num(Number),
    /// JSON string.
    Str(String),
    /// JSON array.
    Arr(Vec<Value>),
    /// JSON object (insertion-ordered).
    Obj(Vec<(String, Value)>),
}

/// A number, kept in its widest exact representation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Number {
    /// Unsigned integer.
    U(u64),
    /// Signed integer.
    I(i64),
    /// Floating point (non-finite values allowed; the JSON layer encodes
    /// them as `inf` / `-inf` tokens that only it reads back).
    F(f64),
}

impl Number {
    /// Widens to `f64` (lossy above 2^53, like serde_json's `as_f64`).
    pub fn as_f64(self) -> f64 {
        match self {
            Number::U(u) => u as f64,
            Number::I(i) => i as f64,
            Number::F(f) => f,
        }
    }
}

/// Deserialization failure: a message plus nothing else — call sites in
/// this workspace only `expect`/`unwrap` these.
#[derive(Clone, Debug)]
pub struct Error(pub String);

impl Error {
    /// Builds an error from any displayable message.
    pub fn msg(m: impl fmt::Display) -> Error {
        Error(m.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serialization into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Deserialization from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

pub mod value {
    //! Helpers used by the derive-generated code.

    use super::{Error, Value};

    static NULL: Value = Value::Null;

    /// Looks up a struct field; a missing field reads as `null` (so
    /// `Option` fields tolerate elision).
    pub fn field<'v>(v: &'v Value, name: &str) -> Result<&'v Value, Error> {
        match v {
            Value::Obj(entries) => Ok(entries
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .unwrap_or(&NULL)),
            other => Err(Error::msg(format!(
                "expected object with field `{name}`, got {other:?}"
            ))),
        }
    }

    /// Indexes a tuple encoded as an array.
    pub fn index(v: &Value, i: usize) -> Result<&Value, Error> {
        match v {
            Value::Arr(items) => items
                .get(i)
                .ok_or_else(|| Error::msg(format!("tuple index {i} out of range"))),
            other => Err(Error::msg(format!("expected array, got {other:?}"))),
        }
    }

    /// Wraps an enum payload in its externally-tagged representation.
    pub fn variant(name: &str, payload: Value) -> Value {
        Value::Obj(vec![(name.to_string(), payload)])
    }

    /// Splits an externally-tagged enum value into `(variant, payload)`.
    pub fn enum_repr(v: &Value) -> Result<(&str, Option<&Value>), Error> {
        match v {
            Value::Str(s) => Ok((s, None)),
            Value::Obj(entries) if entries.len() == 1 => Ok((&entries[0].0, Some(&entries[0].1))),
            other => Err(Error::msg(format!("expected enum encoding, got {other:?}"))),
        }
    }
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

// `Value` round-trips through itself, mirroring real serde_json's
// `Serialize`/`Deserialize` impls for its `Value` — callers can build a
// tree by hand and serialize it with the same machinery derived types use.
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Value, Error> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<bool, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::msg(format!("expected bool, got {other:?}"))),
        }
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Num(Number::U(*self as u64)) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, Error> {
                let wide: u64 = match v {
                    Value::Num(Number::U(u)) => *u,
                    Value::Num(Number::I(i)) if *i >= 0 => *i as u64,
                    Value::Num(Number::F(f)) if f.fract() == 0.0 && *f >= 0.0 => *f as u64,
                    other => return Err(Error::msg(format!("expected unsigned int, got {other:?}"))),
                };
                <$t>::try_from(wide).map_err(|_| Error::msg("unsigned int out of range"))
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Num(Number::I(*self as i64)) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, Error> {
                let wide: i64 = match v {
                    Value::Num(Number::I(i)) => *i,
                    Value::Num(Number::U(u)) => i64::try_from(*u)
                        .map_err(|_| Error::msg("signed int out of range"))?,
                    Value::Num(Number::F(f)) if f.fract() == 0.0 => *f as i64,
                    other => return Err(Error::msg(format!("expected int, got {other:?}"))),
                };
                <$t>::try_from(wide).map_err(|_| Error::msg("signed int out of range"))
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Num(Number::F(*self))
    }
}
impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<f64, Error> {
        match v {
            Value::Num(n) => Ok(n.as_f64()),
            other => Err(Error::msg(format!("expected number, got {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Num(Number::F(f64::from(*self)))
    }
}
impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<f32, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<String, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::msg(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Deserialize for char {
    fn from_value(v: &Value) -> Result<char, Error> {
        let s = String::from_value(v)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::msg("expected single-char string")),
        }
    }
}

// ---------------------------------------------------------------------------
// Containers
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Box<T>, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Option<T>, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Vec<T>, Error> {
        match v {
            Value::Arr(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::msg(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_serde_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                Ok(($($t::from_value(value::index(v, $n)?)?,)+))
            }
        }
    )*};
}
impl_serde_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![(1u32, Some(2.0f64)), (3, None)];
        let back: Vec<(u32, Option<f64>)> = Deserialize::from_value(&v.to_value()).unwrap();
        assert_eq!(back, v);
        let b: Box<u8> = Deserialize::from_value(&Box::new(9u8).to_value()).unwrap();
        assert_eq!(*b, 9);
    }

    #[test]
    fn cross_width_numbers_tolerated() {
        // An integer-valued float deserializes into ints (the JSON layer
        // prints 1.0 as "1").
        assert_eq!(u8::from_value(&Value::Num(Number::F(3.0))).unwrap(), 3);
        assert_eq!(i32::from_value(&Value::Num(Number::U(5))).unwrap(), 5);
    }

    #[test]
    fn missing_field_reads_as_null() {
        let obj = Value::Obj(vec![("a".into(), Value::Bool(true))]);
        assert_eq!(value::field(&obj, "b").unwrap(), &Value::Null);
        let opt: Option<u8> = Deserialize::from_value(value::field(&obj, "b").unwrap()).unwrap();
        assert_eq!(opt, None);
    }
}
