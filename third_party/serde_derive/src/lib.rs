//! Offline stand-in for `serde_derive`.
//!
//! Generates impls of the stand-in `serde::Serialize` / `serde::Deserialize`
//! traits (value-tree based, see the sibling `serde` crate) for plain
//! structs and enums. Implemented directly over `proc_macro::TokenStream`
//! — no `syn`/`quote` available offline — so it supports exactly the item
//! shapes this workspace uses: non-generic structs (named, tuple, unit)
//! and enums whose variants are unit, tuple, or struct-like. Attributes
//! (`#[serde(...)]` included) are ignored.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of a struct body or an enum variant's payload.
enum Fields {
    Unit,
    /// Tuple fields; the count is all we need (access is by index).
    Tuple(usize),
    Named(Vec<String>),
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Splits a token slice on top-level commas, treating `<...>` spans as
/// nested (commas inside generic arguments do not split).
fn split_commas(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    let mut angle_depth = 0i32;
    for t in tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                angle_depth += 1;
                cur.push(t.clone());
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth -= 1;
                cur.push(t.clone());
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                out.push(std::mem::take(&mut cur));
            }
            _ => cur.push(t.clone()),
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Strips leading outer attributes (`#[...]`) and visibility (`pub`,
/// `pub(...)`) from a token slice.
fn skip_attrs_and_vis(tokens: &[TokenTree]) -> &[TokenTree] {
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                // `#` then `[...]` — skip both.
                i += 2;
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }
    &tokens[i..]
}

/// Parses the fields of a named-fields body (`{ a: T, b: U }`).
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    split_commas(&tokens)
        .into_iter()
        .filter_map(|chunk| {
            let chunk = skip_attrs_and_vis(&chunk);
            match chunk.first() {
                Some(TokenTree::Ident(id)) => Some(id.to_string()),
                _ => None,
            }
        })
        .collect()
}

/// Counts the fields of a tuple body (`(T, U)`).
fn count_tuple_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    split_commas(&tokens).len()
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let tokens = skip_attrs_and_vis(&tokens);
    let mut it = tokens.iter();
    let kind = loop {
        match it.next() {
            Some(TokenTree::Ident(id)) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    break s;
                }
            }
            Some(_) => continue,
            None => panic!("derive(Serialize/Deserialize): expected struct or enum"),
        }
    };
    let name = match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("derive: expected item name, got {other:?}"),
    };
    let next = it.next();
    if let Some(TokenTree::Punct(p)) = next {
        if p.as_char() == '<' {
            panic!("derive stand-in does not support generic type `{name}`");
        }
    }
    if kind == "struct" {
        let fields = match next {
            None => Fields::Unit,
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Fields::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            other => panic!("derive: unsupported struct body {other:?}"),
        };
        Item::Struct { name, fields }
    } else {
        let body = match next {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
            other => panic!("derive: expected enum body, got {other:?}"),
        };
        let tokens: Vec<TokenTree> = body.into_iter().collect();
        let variants = split_commas(&tokens)
            .into_iter()
            .filter_map(|chunk| {
                let chunk = skip_attrs_and_vis(&chunk);
                let mut it = chunk.iter();
                let name = match it.next() {
                    Some(TokenTree::Ident(id)) => id.to_string(),
                    _ => return None,
                };
                let fields = match it.next() {
                    None => Fields::Unit,
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        Fields::Tuple(count_tuple_fields(g.stream()))
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        Fields::Named(parse_named_fields(g.stream()))
                    }
                    other => panic!("derive: unsupported variant shape {other:?}"),
                };
                Some(Variant { name, fields })
            })
            .collect();
        Item::Enum { name, variants }
    }
}

// ---------------------------------------------------------------------------
// Code generation (string-built, then parsed into a TokenStream)
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => "serde::Value::Null".to_string(),
                Fields::Tuple(1) => "serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("serde::Value::Arr(vec![{}])", items.join(", "))
                }
                Fields::Named(names) => {
                    let entries: Vec<String> = names
                        .iter()
                        .map(|f| {
                            format!("(\"{f}\".to_string(), serde::Serialize::to_value(&self.{f}))")
                        })
                        .collect();
                    format!("serde::Value::Obj(vec![{}])", entries.join(", "))
                }
            };
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => {
                            format!("{name}::{vn} => serde::Value::Str(\"{vn}\".to_string()),")
                        }
                        Fields::Tuple(1) => format!(
                            "{name}::{vn}(ref __f0) => serde::value::variant(\"{vn}\", \
                             serde::Serialize::to_value(__f0)),"
                        ),
                        Fields::Tuple(n) => {
                            let binds: Vec<String> =
                                (0..*n).map(|i| format!("ref __f{i}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("serde::Serialize::to_value(__f{i})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => serde::value::variant(\"{vn}\", \
                                 serde::Value::Arr(vec![{}])),",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        Fields::Named(fields) => {
                            let binds: Vec<String> =
                                fields.iter().map(|f| format!("ref {f}")).collect();
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(\"{f}\".to_string(), serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {} }} => serde::value::variant(\"{vn}\", \
                                 serde::Value::Obj(vec![{}])),",
                                binds.join(", "),
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::Value {{\n\
                         match *self {{ {} }}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => format!("Ok({name})"),
                Fields::Tuple(1) => {
                    format!("Ok({name}(serde::Deserialize::from_value(__v)?))")
                }
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| {
                            format!(
                                "serde::Deserialize::from_value(serde::value::index(__v, {i})?)?"
                            )
                        })
                        .collect();
                    format!("Ok({name}({}))", items.join(", "))
                }
                Fields::Named(names) => {
                    let inits: Vec<String> = names
                        .iter()
                        .map(|f| {
                            format!(
                                "{f}: serde::Deserialize::from_value(\
                                 serde::value::field(__v, \"{f}\")?)?"
                            )
                        })
                        .collect();
                    format!("Ok({name} {{ {} }})", inits.join(", "))
                }
            };
            format!(
                "impl serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &serde::Value) -> Result<Self, serde::Error> {{\n\
                         {body}\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => {
                            format!("(\"{vn}\", _) => Ok({name}::{vn}),")
                        }
                        Fields::Tuple(1) => format!(
                            "(\"{vn}\", Some(__p)) => \
                             Ok({name}::{vn}(serde::Deserialize::from_value(__p)?)),"
                        ),
                        Fields::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!(
                                        "serde::Deserialize::from_value(\
                                         serde::value::index(__p, {i})?)?"
                                    )
                                })
                                .collect();
                            format!(
                                "(\"{vn}\", Some(__p)) => Ok({name}::{vn}({})),",
                                items.join(", ")
                            )
                        }
                        Fields::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: serde::Deserialize::from_value(\
                                         serde::value::field(__p, \"{f}\")?)?"
                                    )
                                })
                                .collect();
                            format!(
                                "(\"{vn}\", Some(__p)) => Ok({name}::{vn} {{ {} }}),",
                                inits.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &serde::Value) -> Result<Self, serde::Error> {{\n\
                         match serde::value::enum_repr(__v)? {{\n\
                             {}\n\
                             (__other, _) => Err(serde::Error::msg(format!(\
                                 \"unknown variant `{{__other}}` of {name}\"))),\n\
                         }}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    }
}

/// Derives the stand-in `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derives the stand-in `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}
